#include "tools/cli.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "adversary/adversary.h"
#include "anonymize/anonymizer.h"
#include "belief/belief_io.h"
#include "belief/builders.h"
#include "core/graph_oestimate.h"
#include "estimator/estimators.h"
#include "estimator/planner.h"
#include "core/per_item_risk.h"
#include "core/recipe.h"
#include "defense/group_merge.h"
#include "defense/optimizer.h"
#include "defense/scheme.h"
#include "defense/suppression.h"
#include "exec/exec.h"
#include "core/risk_report.h"
#include "core/similarity.h"
#include "data/fimi_io.h"
#include "data/frequency.h"
#include "mining/miner.h"
#include "mining/rules.h"
#include "datagen/benchmark_profiles.h"
#include "graph/simd_kernels.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "util/cpu.h"
#include "util/csv_writer.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace anonsafe {
namespace {

Status RequirePositional(const CliInvocation& cli, size_t count) {
  if (cli.positional.size() != count) {
    return Status::InvalidArgument(
        "'" + cli.command + "' expects " + std::to_string(count) +
        " argument(s), got " + std::to_string(cli.positional.size()) +
        "\n" + CliUsage());
  }
  return Status::OK();
}

/// Applies `--adversary=name[:k=v,...]` to recipe options; absent flag
/// leaves the default (interval) untouched.
Status ApplyAdversaryFlag(const CliInvocation& cli, RecipeOptions* options) {
  auto it = cli.flags.find("adversary");
  if (it == cli.flags.end()) return Status::OK();
  ANONSAFE_ASSIGN_OR_RETURN(adversary::AdversarySpec spec,
                            adversary::ParseAdversarySpec(it->second));
  options->adversary = std::move(spec.name);
  options->adversary_params = std::move(spec.params);
  return Status::OK();
}

Status RunStats(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 1));
  ANONSAFE_ASSIGN_OR_RETURN(LabeledDatabase data,
                            ReadFimiFile(cli.positional[0]));
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyTable table,
                            FrequencyTable::Compute(data.database));
  FrequencyGroups groups = FrequencyGroups::Build(table);
  Summary gaps = groups.GapSummary();

  TablePrinter t({"statistic", "value"});
  t.AddRow({"items", TablePrinter::Fmt(data.database.num_items())});
  t.AddRow({"transactions",
            TablePrinter::Fmt(data.database.num_transactions())});
  t.AddRow({"occurrences", TablePrinter::Fmt(data.database.TotalSize())});
  t.AddRow({"frequency groups", TablePrinter::Fmt(groups.num_groups())});
  t.AddRow({"singleton groups",
            TablePrinter::Fmt(groups.num_singleton_groups())});
  t.AddRow({"mean gap", TablePrinter::FmtG(gaps.mean)});
  t.AddRow({"median gap (delta_med)", TablePrinter::FmtG(gaps.median)});
  t.AddRow({"min gap", TablePrinter::FmtG(gaps.min)});
  t.AddRow({"max gap", TablePrinter::FmtG(gaps.max)});
  t.Print(out);
  return Status::OK();
}

Status RunAssess(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 1));
  ANONSAFE_ASSIGN_OR_RETURN(double tolerance,
                            FlagAsDouble(cli, "tolerance", 0.1));
  ANONSAFE_ASSIGN_OR_RETURN(uint64_t seed, FlagAsUint64(cli, "seed", 7));
  ANONSAFE_ASSIGN_OR_RETURN(uint64_t threads, FlagAsUint64(cli, "threads", 1));
  ANONSAFE_ASSIGN_OR_RETURN(LabeledDatabase data,
                            ReadFimiFile(cli.positional[0]));
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyTable table,
                            FrequencyTable::Compute(data.database));
  RecipeOptions options;
  options.tolerance = tolerance;
  options.exec.seed = seed;
  options.exec.threads = static_cast<size_t>(threads);
  if (auto it = cli.flags.find("estimator"); it != cli.flags.end()) {
    ANONSAFE_ASSIGN_OR_RETURN(options.estimator,
                              ParseEstimatorKind(it->second));
  }
  ANONSAFE_RETURN_IF_ERROR(ApplyAdversaryFlag(cli, &options));
  ANONSAFE_ASSIGN_OR_RETURN(RecipeResult result, AssessRisk(table, options));
  out << "decision: " << ToString(result.decision) << "\n"
      << result.Summary() << "\n";
  if (result.adversary != "interval" ||
      !result.adversary_params.values.empty()) {
    out << "adversary: " << result.adversary;
    if (!result.adversary_params.values.empty()) {
      out << ":" << result.adversary_params.ToString();
    }
    out << "\n";
  }
  if (options.estimator != EstimatorKind::kOe &&
      result.decision != RecipeDecision::kDiscloseAtPointValued) {
    out << "interval estimator: " << EstimatorKindName(result.estimator)
        << (result.interval_exact ? " (exact)" : " (approximate)");
    if (!result.interval_blocks.empty()) {
      out << ", " << result.interval_blocks.size() << " block(s)";
    }
    out << "\n";
  }
  return Status::OK();
}

Status RunPlan(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 1));
  ANONSAFE_ASSIGN_OR_RETURN(LabeledDatabase data,
                            ReadFimiFile(cli.positional[0]));
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyTable table,
                            FrequencyTable::Compute(data.database));
  FrequencyGroups groups = FrequencyGroups::Build(table);
  ANONSAFE_ASSIGN_OR_RETURN(
      double delta, FlagAsDouble(cli, "delta", groups.MedianGap()));
  PlannerOptions options;
  ANONSAFE_ASSIGN_OR_RETURN(
      uint64_t cutoff,
      FlagAsUint64(cli, "ryser-cutoff", options.ryser_cutoff));
  options.ryser_cutoff = static_cast<size_t>(cutoff);
  options.prefer_sampler = cli.flags.count("prefer-sampler") > 0;

  adversary::AdversarySpec spec;
  if (auto it = cli.flags.find("adversary"); it != cli.flags.end()) {
    ANONSAFE_ASSIGN_OR_RETURN(spec,
                              adversary::ParseAdversarySpec(it->second));
  }
  const adversary::Adversary& adv = *adversary::Adversary::Find(spec.name);
  if (adv.Describe().weighted) {
    return Status::Unimplemented(
        "adversary '" + spec.name +
        "' produces weighted models, which the planner does not support; "
        "assess it with --estimator=oe instead");
  }
  // The default interval adversary binds exactly the historical
  // MakeCompliantIntervalBelief(table, delta) call.
  ANONSAFE_ASSIGN_OR_RETURN(adversary::AdversaryModel model,
                            adv.Bind(table, groups, delta, spec.params));
  ANONSAFE_ASSIGN_OR_RETURN(
      BipartiteGraph graph,
      BipartiteGraph::Build(groups, model.belief, options.max_edges));
  ANONSAFE_ASSIGN_OR_RETURN(BlockPlan plan,
                            PlanBlocks(graph, groups, options));

  // Inspect the plan without evaluating anything heavy: the whole point
  // of the verb is to preview what `--estimator=auto` would run.
  TablePrinter t({"block", "size", "edges", "method", "exact", "cost"});
  double total_cost = 0.0;
  size_t exact_blocks = 0;
  for (size_t b = 0; b < plan.blocks.size(); ++b) {
    const PlannedBlock& block = plan.blocks[b];
    t.AddRow({TablePrinter::Fmt(b), TablePrinter::Fmt(block.items.size()),
              TablePrinter::Fmt(block.num_edges),
              BlockMethodName(block.method), block.exact ? "yes" : "no",
              TablePrinter::FmtG(block.cost)});
    total_cost += block.cost;
    if (block.exact) ++exact_blocks;
  }
  t.Print(out);
  out << "blocks: " << plan.blocks.size() << " (" << exact_blocks
      << " exact), pruned edges: " << plan.pruned_edges
      << ", delta: " << TablePrinter::FmtG(delta)
      << ", total cost: " << TablePrinter::FmtG(total_cost) << "\n";
  return Status::OK();
}

Status RunReport(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 1));
  ANONSAFE_ASSIGN_OR_RETURN(double tolerance,
                            FlagAsDouble(cli, "tolerance", 0.1));
  ANONSAFE_ASSIGN_OR_RETURN(uint64_t threads, FlagAsUint64(cli, "threads", 1));
  ANONSAFE_ASSIGN_OR_RETURN(LabeledDatabase data,
                            ReadFimiFile(cli.positional[0]));
  RiskReportOptions options;
  options.recipe.tolerance = tolerance;
  options.recipe.exec.threads = static_cast<size_t>(threads);
  if (auto it = cli.flags.find("estimator"); it != cli.flags.end()) {
    ANONSAFE_ASSIGN_OR_RETURN(options.recipe.estimator,
                              ParseEstimatorKind(it->second));
  }
  ANONSAFE_RETURN_IF_ERROR(ApplyAdversaryFlag(cli, &options.recipe));
  ANONSAFE_ASSIGN_OR_RETURN(RiskReport report,
                            BuildRiskReport(data.database, options));
  if (cli.flags.count("json") > 0) {
    // The same document the serve `assess_risk` verb embeds — one emitter,
    // so CLI and server output are bit-identical (see docs/SERVER.md).
    out << report.ToJson().Dump() << "\n";
  } else {
    out << report.ToText();
  }
  return Status::OK();
}

Status RunServe(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 0));
  serve::ServerOptions options;
  ANONSAFE_ASSIGN_OR_RETURN(
      uint64_t workers, FlagAsUint64(cli, "workers", options.workers));
  ANONSAFE_ASSIGN_OR_RETURN(
      uint64_t queue_capacity,
      FlagAsUint64(cli, "queue-capacity", options.queue_capacity));
  ANONSAFE_ASSIGN_OR_RETURN(
      uint64_t max_line_bytes,
      FlagAsUint64(cli, "max-line-bytes", options.max_line_bytes));
  ANONSAFE_ASSIGN_OR_RETURN(
      uint64_t cache_capacity,
      FlagAsUint64(cli, "cache-capacity", options.dataset_cache_capacity));
  ANONSAFE_ASSIGN_OR_RETURN(
      uint64_t deadline_ms,
      FlagAsUint64(cli, "deadline-ms", options.default_deadline_ms));
  ANONSAFE_ASSIGN_OR_RETURN(
      uint64_t slow_ms, FlagAsUint64(cli, "slow-ms", options.slow_request_ms));
  ANONSAFE_ASSIGN_OR_RETURN(
      uint64_t flight_recorder,
      FlagAsUint64(cli, "flight-recorder", options.flight_recorder_capacity));
  ANONSAFE_ASSIGN_OR_RETURN(
      uint64_t max_batch_items,
      FlagAsUint64(cli, "max-batch-items", options.max_batch_items));
  ANONSAFE_ASSIGN_OR_RETURN(
      double tenant_rate,
      FlagAsDouble(cli, "tenant-rate", options.tenant_rate));
  ANONSAFE_ASSIGN_OR_RETURN(
      double tenant_burst,
      FlagAsDouble(cli, "tenant-burst", options.tenant_burst));
  if (tenant_rate < 0 || tenant_burst < 0) {
    return Status::InvalidArgument(
        "--tenant-rate/--tenant-burst must be non-negative");
  }
  options.workers = static_cast<size_t>(workers);
  options.queue_capacity = static_cast<size_t>(queue_capacity);
  options.max_line_bytes = static_cast<size_t>(max_line_bytes);
  options.dataset_cache_capacity = static_cast<size_t>(cache_capacity);
  options.default_deadline_ms = deadline_ms;
  options.slow_request_ms = slow_ms;
  options.flight_recorder_capacity = static_cast<size_t>(flight_recorder);
  options.max_batch_items = static_cast<size_t>(max_batch_items);
  options.tenant_rate = tenant_rate;
  options.tenant_burst = tenant_burst;

  // A server is the one place the access-log stream earns its keep: when
  // the operator set no level (flag or environment), raise the default
  // from warn to info so per-request lines flow.
  if (cli.flags.count("log-level") == 0 &&
      std::getenv("ANONSAFE_LOG_LEVEL") == nullptr) {
    obs::SetLogLevel(obs::LogLevel::kInfo);
  }

  // Resolve the SIMD dispatch once at startup and say which tier the
  // kernels will run on (honours ANONSAFE_FORCE_ISA); operators diffing
  // perf across hosts need this in the log.
  obs::Log(obs::LogLevel::kInfo, "serve.simd_dispatch",
           {{"isa", json::Value(internal::Kernels().name)},
            {"cpu_model", json::Value(cpu::CpuModelName())}});

  serve::Server server(options);
  if (cli.flags.count("port") == 0) {
    // Stdio mode: requests on stdin, responses on stdout. `out` is the
    // command's diagnostic stream here and must stay clear of responses.
    return serve::ServeStreams(server, std::cin, std::cout);
  }
  ANONSAFE_ASSIGN_OR_RETURN(uint64_t port, FlagAsUint64(cli, "port", 0));
  if (port > 65535) {
    return Status::InvalidArgument("--port must be in [0, 65535]");
  }
  serve::TcpServerOptions tcp;
  tcp.port = static_cast<uint16_t>(port);
  ANONSAFE_ASSIGN_OR_RETURN(
      uint64_t write_buffer,
      FlagAsUint64(cli, "write-buffer-bytes", tcp.write_buffer_bytes));
  if (write_buffer == 0) {
    return Status::InvalidArgument("--write-buffer-bytes must be positive");
  }
  tcp.write_buffer_bytes = static_cast<size_t>(write_buffer);
  tcp.on_listening = [&out](uint16_t bound) {
    out << "anonsafe serve: listening on 127.0.0.1:" << bound << "\n";
    out.flush();
  };
  return serve::ServeTcp(server, tcp);
}

Status RunSimilarity(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 1));
  ANONSAFE_ASSIGN_OR_RETURN(uint64_t seed, FlagAsUint64(cli, "seed", 11));
  ANONSAFE_ASSIGN_OR_RETURN(LabeledDatabase data,
                            ReadFimiFile(cli.positional[0]));
  SimilarityOptions options;
  options.exec.seed = seed;
  ANONSAFE_ASSIGN_OR_RETURN(std::vector<SimilarityPoint> curve,
                            SimilarityBySampling(data.database, options));
  TablePrinter t({"sample %", "mean alpha", "stddev", "delta'_med"});
  for (const SimilarityPoint& p : curve) {
    t.AddRow({TablePrinter::Fmt(p.sample_fraction * 100.0, 0),
              TablePrinter::Fmt(p.mean_alpha, 4),
              TablePrinter::Fmt(p.stddev_alpha, 4),
              TablePrinter::FmtG(p.mean_delta)});
  }
  t.Print(out);
  return Status::OK();
}

Status RunAnonymize(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 2));
  ANONSAFE_ASSIGN_OR_RETURN(uint64_t seed, FlagAsUint64(cli, "seed", 1));
  ANONSAFE_ASSIGN_OR_RETURN(LabeledDatabase data,
                            ReadFimiFile(cli.positional[0]));
  Rng rng(seed);
  Anonymizer mapping =
      Anonymizer::Random(data.database.num_items(), &rng);
  ANONSAFE_ASSIGN_OR_RETURN(Database anonymized,
                            mapping.AnonymizeDatabase(data.database));
  ANONSAFE_RETURN_IF_ERROR(WriteFimiFile(anonymized, cli.positional[1]));
  out << "wrote " << anonymized.num_transactions()
      << " anonymized transactions over " << anonymized.num_items()
      << " items to " << cli.positional[1] << "\n"
      << "(keep the seed secret: it reproduces the mapping)\n";
  return Status::OK();
}

Status RunGenerate(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 2));
  ANONSAFE_ASSIGN_OR_RETURN(double scale, FlagAsDouble(cli, "scale", 1.0));
  ANONSAFE_ASSIGN_OR_RETURN(uint64_t seed, FlagAsUint64(cli, "seed", 2005));
  ANONSAFE_ASSIGN_OR_RETURN(Benchmark benchmark,
                            BenchmarkByName(cli.positional[0]));
  Rng rng(seed);
  ANONSAFE_ASSIGN_OR_RETURN(Database db,
                            MakeBenchmarkDatabase(benchmark, &rng, scale));
  ANONSAFE_RETURN_IF_ERROR(WriteFimiFile(db, cli.positional[1]));
  out << "wrote synthetic " << GetBenchmarkSpec(benchmark).name
      << " stand-in (" << db.DebugString() << ") to " << cli.positional[1]
      << "\n";
  return Status::OK();
}

Status RunRisk(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 1));
  ANONSAFE_ASSIGN_OR_RETURN(uint64_t top, FlagAsUint64(cli, "top", 20));
  ANONSAFE_ASSIGN_OR_RETURN(LabeledDatabase data,
                            ReadFimiFile(cli.positional[0]));
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyTable table,
                            FrequencyTable::Compute(data.database));
  FrequencyGroups groups = FrequencyGroups::Build(table);
  ANONSAFE_ASSIGN_OR_RETURN(
      BeliefFunction belief,
      MakeCompliantIntervalBelief(table, groups.MedianGap()));
  ANONSAFE_ASSIGN_OR_RETURN(PerItemRiskReport report,
                            ComputePerItemRisk(groups, belief));
  out << "delta_med interval O-estimate: "
      << TablePrinter::Fmt(report.total_expected_cracks, 2)
      << " expected cracks of " << table.num_items() << " items\n";
  TablePrinter t({"rank", "item label", "crack prob.", "candidates",
                  "pinned"});
  for (size_t r = 0; r < report.ranked.size() && r < top; ++r) {
    const ItemRisk& risk = report.ranked[r];
    t.AddRow({TablePrinter::Fmt(r + 1),
              TablePrinter::Fmt(static_cast<int64_t>(
                  data.labels[risk.item])),
              TablePrinter::Fmt(risk.crack_probability, 4),
              TablePrinter::Fmt(risk.outdegree),
              risk.forced ? "yes" : ""});
  }
  t.Print(out);
  return Status::OK();
}

Status RunMine(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 1));
  ANONSAFE_ASSIGN_OR_RETURN(double min_support,
                            FlagAsDouble(cli, "min-support", 0.1));
  ANONSAFE_ASSIGN_OR_RETURN(double min_confidence,
                            FlagAsDouble(cli, "min-confidence", 0.0));
  ANONSAFE_ASSIGN_OR_RETURN(uint64_t top, FlagAsUint64(cli, "top", 20));
  std::string algorithm = "fpgrowth";
  if (auto it = cli.flags.find("algorithm"); it != cli.flags.end()) {
    algorithm = it->second;
  }
  ANONSAFE_ASSIGN_OR_RETURN(LabeledDatabase data,
                            ReadFimiFile(cli.positional[0]));
  MiningOptions options;
  options.min_support = min_support;

  Result<std::vector<FrequentItemset>> mined =
      Status::InvalidArgument("--algorithm must be apriori, fpgrowth or "
                              "eclat");
  if (algorithm == "apriori") mined = MineApriori(data.database, options);
  if (algorithm == "fpgrowth") mined = MineFPGrowth(data.database, options);
  if (algorithm == "eclat") mined = MineEclat(data.database, options);
  ANONSAFE_RETURN_IF_ERROR(mined.status());

  out << mined->size() << " frequent itemsets at min_support="
      << min_support << " (" << algorithm << ")\n";
  TablePrinter t({"itemset (original labels)", "support", "frequency"});
  size_t shown = 0;
  for (auto it = mined->rbegin(); it != mined->rend() && shown < top;
       ++it, ++shown) {
    Itemset relabeled;
    for (ItemId x : it->items) {
      relabeled.push_back(static_cast<ItemId>(data.labels[x]));
    }
    std::sort(relabeled.begin(), relabeled.end());
    t.AddRow({ItemsetToString(relabeled), TablePrinter::Fmt(it->support),
              TablePrinter::Fmt(
                  static_cast<double>(it->support) /
                      static_cast<double>(data.database.num_transactions()),
                  4)});
  }
  t.Print(out);

  if (min_confidence > 0.0) {
    RuleOptions rule_options;
    rule_options.min_confidence = min_confidence;
    ANONSAFE_ASSIGN_OR_RETURN(
        std::vector<AssociationRule> rules,
        GenerateRules(*mined, data.database.num_transactions(),
                      rule_options));
    out << "\n" << rules.size() << " association rules at min_confidence="
        << min_confidence << "; top " << std::min<size_t>(top, rules.size())
        << ":\n";
    auto relabel = [&](const Itemset& items) {
      Itemset labeled;
      for (ItemId x : items) {
        labeled.push_back(static_cast<ItemId>(data.labels[x]));
      }
      std::sort(labeled.begin(), labeled.end());
      return labeled;
    };
    for (size_t r = 0; r < rules.size() && r < top; ++r) {
      AssociationRule labeled = rules[r];
      labeled.antecedent = relabel(labeled.antecedent);
      labeled.consequent = relabel(labeled.consequent);
      out << "  " << ToString(labeled) << "\n";
    }
  }
  return Status::OK();
}

Status RunBelief(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 2));
  ANONSAFE_ASSIGN_OR_RETURN(LabeledDatabase data,
                            ReadFimiFile(cli.positional[0]));
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyTable table,
                            FrequencyTable::Compute(data.database));
  FrequencyGroups groups = FrequencyGroups::Build(table);
  ANONSAFE_ASSIGN_OR_RETURN(
      double delta, FlagAsDouble(cli, "delta", groups.MedianGap()));
  ANONSAFE_ASSIGN_OR_RETURN(BeliefFunction belief,
                            MakeCompliantIntervalBelief(table, delta));
  ANONSAFE_RETURN_IF_ERROR(
      WriteBeliefFunctionFile(belief, cli.positional[1]));
  out << "wrote compliant interval belief (half-width "
      << TablePrinter::FmtG(delta, 4) << ") for "
      << table.num_items() << " items to " << cli.positional[1] << "\n"
      << "Edit intervals to model a specific hacker, then run:\n"
      << "  anonsafe attack " << cli.positional[0] << " "
      << cli.positional[1] << "\n";
  return Status::OK();
}

Status RunAttack(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 2));
  ANONSAFE_ASSIGN_OR_RETURN(uint64_t top, FlagAsUint64(cli, "top", 10));
  ANONSAFE_ASSIGN_OR_RETURN(LabeledDatabase data,
                            ReadFimiFile(cli.positional[0]));
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyTable table,
                            FrequencyTable::Compute(data.database));
  FrequencyGroups groups = FrequencyGroups::Build(table);
  ANONSAFE_ASSIGN_OR_RETURN(
      BeliefFunction belief,
      ReadBeliefFunctionFile(cli.positional[1], table.num_items()));

  ANONSAFE_ASSIGN_OR_RETURN(double alpha,
                            belief.ComplianceFraction(table));
  ANONSAFE_ASSIGN_OR_RETURN(OEstimateResult oe,
                            ComputeOEstimate(groups, belief));
  out << "hacker model: " << cli.positional[1] << "\n"
      << "degree of compliancy alpha = " << TablePrinter::Fmt(alpha, 4)
      << "\n"
      << "O-estimate (Fig. 5 + Fig. 7): "
      << TablePrinter::Fmt(oe.expected_cracks, 2) << " expected cracks of "
      << table.num_items() << " items ("
      << TablePrinter::Fmt(oe.fraction * 100.0, 2) << "%)\n";
  if (oe.contradiction) {
    out << "note: the belief admits no perfect consistent mapping "
           "(non-compliant guesses detected structurally)\n";
  }
  auto refined = ComputeRefinedOEstimate(groups, belief,
                                         /*max_edges=*/4u * 1024 * 1024);
  if (refined.ok()) {
    out << "refined O-estimate (matching cover): "
        << TablePrinter::Fmt(refined->expected_cracks, 2) << "\n";
  }
  ANONSAFE_ASSIGN_OR_RETURN(PerItemRiskReport risk,
                            ComputePerItemRisk(groups, belief));
  TablePrinter t({"rank", "item label", "crack prob.", "candidates"});
  for (size_t r = 0; r < risk.ranked.size() && r < top; ++r) {
    const ItemRisk& item_risk = risk.ranked[r];
    t.AddRow({TablePrinter::Fmt(r + 1),
              TablePrinter::Fmt(static_cast<int64_t>(
                  data.labels[item_risk.item])),
              TablePrinter::Fmt(item_risk.crack_probability, 4),
              TablePrinter::Fmt(item_risk.outdegree)});
  }
  t.Print(out);
  return Status::OK();
}

Status RunDefend(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 2));
  ANONSAFE_ASSIGN_OR_RETURN(double tolerance,
                            FlagAsDouble(cli, "tolerance", 0.1));
  ANONSAFE_ASSIGN_OR_RETURN(uint64_t seed, FlagAsUint64(cli, "seed", 1));
  std::string mode = "merge";
  if (auto it = cli.flags.find("mode"); it != cli.flags.end()) {
    mode = it->second;
  }
  ANONSAFE_ASSIGN_OR_RETURN(LabeledDatabase data,
                            ReadFimiFile(cli.positional[0]));
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyTable table,
                            FrequencyTable::Compute(data.database));
  Rng rng(seed);

  if (mode == "merge") {
    const defense::DefenseScheme* scheme =
        defense::DefenseScheme::Find("group_merge");
    defense::DefenseParams params;
    params.Set("tolerance", tolerance);
    ANONSAFE_ASSIGN_OR_RETURN(defense::DefensePlan plan,
                              scheme->Plan(table, params));
    ANONSAFE_ASSIGN_OR_RETURN(Database defended,
                              scheme->Apply(data.database, plan, &rng));
    ANONSAFE_RETURN_IF_ERROR(WriteFimiFile(defended, cli.positional[1]));
    out << "merge defense: " << plan.groups_before << " -> "
        << plan.groups_after << " frequency groups, "
        << TablePrinter::Fmt(plan.relative_distortion * 100.0, 2)
        << "% of occurrences touched; wrote " << cli.positional[1] << "\n";
    return Status::OK();
  }
  if (mode == "suppress") {
    const defense::DefenseScheme* scheme =
        defense::DefenseScheme::Find("suppression");
    defense::DefenseParams params;
    params.Set("tolerance", tolerance);
    ANONSAFE_ASSIGN_OR_RETURN(defense::DefensePlan plan,
                              scheme->Plan(table, params));
    ANONSAFE_ASSIGN_OR_RETURN(Database defended,
                              scheme->Apply(data.database, plan, &rng));
    ANONSAFE_RETURN_IF_ERROR(WriteFimiFile(defended, cli.positional[1]));
    out << "suppression defense: dropped " << plan.suppressed.size()
        << " of " << plan.items_before << " items ("
        << TablePrinter::Fmt(plan.occurrence_loss * 100.0, 2)
        << "% of occurrences); O-estimate "
        << TablePrinter::Fmt(plan.oe_before, 1) << " -> "
        << TablePrinter::Fmt(plan.oe_after, 1) << "; wrote "
        << cli.positional[1] << "\n";
    return Status::OK();
  }
  return Status::InvalidArgument("--mode must be 'merge' or 'suppress'");
}

Status RunRecommendDefense(const CliInvocation& cli, std::ostream& out) {
  ANONSAFE_RETURN_IF_ERROR(RequirePositional(cli, 1));
  ANONSAFE_ASSIGN_OR_RETURN(uint64_t seed, FlagAsUint64(cli, "seed", 7));
  ANONSAFE_ASSIGN_OR_RETURN(uint64_t threads, FlagAsUint64(cli, "threads", 1));
  ANONSAFE_ASSIGN_OR_RETURN(LabeledDatabase data,
                            ReadFimiFile(cli.positional[0]));

  defense::OptimizerOptions options;
  ANONSAFE_ASSIGN_OR_RETURN(
      uint64_t cutoff,
      FlagAsUint64(cli, "ryser-cutoff", options.planner.ryser_cutoff));
  options.planner.ryser_cutoff = static_cast<size_t>(cutoff);
  if (cli.flags.count("prefer-sampler") > 0) {
    options.planner.prefer_sampler = true;
  }

  exec::ExecOptions exec_options;
  exec_options.seed = seed;
  exec_options.threads = static_cast<size_t>(threads);
  exec::ExecContext ctx(exec_options);
  ANONSAFE_ASSIGN_OR_RETURN(
      defense::DefenseFrontier frontier,
      defense::RecommendDefense(data.database, options, &ctx));

  if (cli.flags.count("json") > 0) {
    out << frontier.ToJson().Dump() << "\n";
    return Status::OK();
  }
  if (auto it = cli.flags.find("csv"); it != cli.flags.end()) {
    CsvWriter csv({"index", "scheme", "params", "feasible", "on_frontier",
                   "expected_cracks", "total_loss", "exact", "k_anonymity",
                   "reason"});
    for (const defense::CandidateScore& c : frontier.candidates) {
      csv.AddRow({std::to_string(c.index), c.scheme, c.params.ToString(),
                  c.feasible ? "1" : "0", c.on_frontier ? "1" : "0",
                  c.feasible ? json::NumberToString(c.expected_cracks) : "",
                  c.feasible ? json::NumberToString(c.utility.total_loss)
                             : "",
                  c.feasible ? (c.exact ? "1" : "0") : "",
                  c.feasible ? std::to_string(c.k_anonymity) : "",
                  c.reason});
    }
    if (it->second == "true") {
      out << csv.ToString();
    } else {
      ANONSAFE_RETURN_IF_ERROR(csv.WriteFile(it->second));
      out << "wrote " << frontier.candidates.size() << " candidates to "
          << it->second << "\n";
    }
    return Status::OK();
  }

  size_t feasible = 0;
  for (const defense::CandidateScore& c : frontier.candidates) {
    if (c.feasible) ++feasible;
  }
  out << "swept " << frontier.candidates.size() << " candidates ("
      << feasible << " feasible) across "
      << defense::DefenseScheme::All().size() << " schemes\n"
      << "baseline: " << TablePrinter::Fmt(frontier.baseline_cracks, 2)
      << " expected cracks of " << frontier.num_items << " items"
      << (frontier.baseline_exact ? " (exact)" : " (approximate)") << "\n"
      << "Pareto frontier (" << frontier.frontier.size() << " points):\n";
  TablePrinter t({"#", "scheme", "params", "E[cracks]", "total loss",
                  "exact"});
  for (size_t rank = 0; rank < frontier.frontier.size(); ++rank) {
    const defense::CandidateScore& c =
        frontier.candidates[frontier.frontier[rank]];
    t.AddRow({TablePrinter::Fmt(rank + 1), c.scheme, c.params.ToString(),
              TablePrinter::Fmt(c.expected_cracks, 2),
              TablePrinter::Fmt(c.utility.total_loss, 4),
              c.exact ? "yes" : "no"});
  }
  t.Print(out);
  out << "replay any point with DefenseScheme::Find(scheme)->Plan/Apply at "
         "seed "
      << frontier.seed << " (see docs/DEFENSE.md)\n";
  return Status::OK();
}

Status DispatchCommand(const CliInvocation& cli, std::ostream& out) {
  if (cli.command == "stats") return RunStats(cli, out);
  if (cli.command == "assess") return RunAssess(cli, out);
  if (cli.command == "plan") return RunPlan(cli, out);
  if (cli.command == "report") return RunReport(cli, out);
  if (cli.command == "serve") return RunServe(cli, out);
  if (cli.command == "similarity") return RunSimilarity(cli, out);
  if (cli.command == "anonymize") return RunAnonymize(cli, out);
  if (cli.command == "generate") return RunGenerate(cli, out);
  if (cli.command == "risk") return RunRisk(cli, out);
  if (cli.command == "defend") return RunDefend(cli, out);
  if (cli.command == "recommend-defense") {
    return RunRecommendDefense(cli, out);
  }
  if (cli.command == "belief") return RunBelief(cli, out);
  if (cli.command == "mine") return RunMine(cli, out);
  if (cli.command == "attack") return RunAttack(cli, out);
  if (cli.command == "help") {
    out << CliUsage();
    return Status::OK();
  }
  return Status::InvalidArgument("unknown subcommand '" + cli.command +
                                 "'\n" + CliUsage());
}

}  // namespace

Result<CliInvocation> ParseCli(const std::vector<std::string>& args) {
  CliInvocation cli;
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        cli.flags[arg.substr(2)] = "true";
      } else {
        cli.flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else if (cli.command.empty()) {
      cli.command = arg;
    } else {
      cli.positional.push_back(arg);
    }
  }
  if (cli.command.empty()) {
    return Status::InvalidArgument("no subcommand given\n" + CliUsage());
  }
  return cli;
}

Result<double> FlagAsDouble(const CliInvocation& cli, const std::string& key,
                            double default_value) {
  auto it = cli.flags.find(key);
  if (it == cli.flags.end()) return default_value;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + key +
                                   " expects a number, got '" + it->second +
                                   "'");
  }
  return v;
}

Result<uint64_t> FlagAsUint64(const CliInvocation& cli,
                              const std::string& key,
                              uint64_t default_value) {
  auto it = cli.flags.find(key);
  if (it == cli.flags.end()) return default_value;
  char* end = nullptr;
  unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + key +
                                   " expects an integer, got '" +
                                   it->second + "'");
  }
  return static_cast<uint64_t>(v);
}

Status RunCli(const CliInvocation& cli, std::ostream& out) {
  if (auto it = cli.flags.find("log-level"); it != cli.flags.end()) {
    ANONSAFE_ASSIGN_OR_RETURN(obs::LogLevel level,
                              obs::ParseLogLevel(it->second));
    obs::SetLogLevel(level);
  }
  if (auto it = cli.flags.find("log-file"); it != cli.flags.end()) {
    ANONSAFE_RETURN_IF_ERROR(obs::SetLogFile(it->second));
  }

  // `--trace-format`/`--trace-out` imply `--trace`.
  const auto trace_out_it = cli.flags.find("trace-out");
  std::string trace_format = "table";
  if (auto it = cli.flags.find("trace-format"); it != cli.flags.end()) {
    trace_format = it->second;
  }
  if (trace_format != "table" && trace_format != "json" &&
      trace_format != "chrome") {
    return Status::InvalidArgument(
        "--trace-format must be table, json or chrome; got '" +
        trace_format + "'");
  }
  const bool trace = cli.flags.count("trace") > 0 ||
                     cli.flags.count("trace-format") > 0 ||
                     trace_out_it != cli.flags.end();
  const auto metrics_it = cli.flags.find("metrics-out");
  const bool metrics = metrics_it != cli.flags.end();
  if (trace) {
    obs::SetTracingEnabled(true);
    obs::Tracer::ThreadLocal().Clear();
  }
  if (metrics) {
    obs::SetMetricsEnabled(true);
    obs::MetricsRegistry::Global().Reset();
  }

  Status status = DispatchCommand(cli, out);

  if (trace) {
    const obs::Tracer& tracer = obs::Tracer::ThreadLocal();
    std::string rendered;
    if (trace_format == "table") {
      rendered = "\ntrace (" + cli.command + "):\n" + tracer.RenderTable();
    } else if (trace_format == "json") {
      rendered = tracer.ToJson() + "\n";
    } else {
      rendered = obs::ExportChromeTrace(tracer, "cli-" + cli.command) + "\n";
    }
    if (trace_out_it != cli.flags.end()) {
      std::ofstream trace_file(trace_out_it->second);
      if (trace_file) trace_file << rendered;
      if (!trace_file) {
        if (status.ok()) {
          status = Status::IOError("cannot write trace to '" +
                                   trace_out_it->second + "'");
        }
      } else {
        out << "trace: " << trace_out_it->second << " (" << trace_format
            << ")\n";
      }
    } else {
      out << rendered;
    }
  }
  if (metrics) {
    Status written = obs::WriteMetricsFiles(obs::MetricsRegistry::Global(),
                                            metrics_it->second);
    if (written.ok()) {
      out << "metrics: " << metrics_it->second << " (JSON), "
          << obs::PrometheusPathFor(metrics_it->second)
          << " (Prometheus text)\n";
    } else if (status.ok()) {
      status = written;
    }
  }
  return status;
}

std::string CliUsage() {
  return
      "usage: anonsafe <command> [args] [--flags]\n"
      "\n"
      "  stats <file.dat>                      dataset statistics\n"
      "  assess <file.dat> [--tolerance=0.1] [--threads=1]\n"
      "         [--estimator=oe|auto|exact|sampler]\n"
      "         [--adversary=interval|probabilistic|exact_support[:k=v,..]]\n"
      "                                        Fig. 8 Assess-Risk recipe\n"
      "                                        (see docs/ADVERSARIES.md)\n"
      "  plan <file.dat> [--delta=] [--ryser-cutoff=20] [--prefer-sampler]\n"
      "       [--adversary=...]\n"
      "                                        preview the estimator plan:\n"
      "                                        per-block method and cost\n"
      "                                        (see docs/ESTIMATORS.md)\n"
      "  report <file.dat> [--tolerance=0.1] [--threads=1] [--json]\n"
      "         [--estimator=oe|auto|exact|sampler] [--adversary=...]\n"
      "                                        full risk report\n"
      "  serve [--port=N] [--workers=1] [--queue-capacity=16]\n"
      "        [--deadline-ms=0] [--cache-capacity=8] [--max-line-bytes=]\n"
      "        [--slow-ms=0] [--flight-recorder=64] [--max-batch-items=256]\n"
      "        [--tenant-rate=0] [--tenant-burst=8]\n"
      "        [--write-buffer-bytes=1048576]\n"
      "                                        long-running JSON service\n"
      "                                        (stdio without --port;\n"
      "                                        see docs/SERVER.md)\n"
      "  similarity <file.dat> [--seed=]       Fig. 13 sampling curve\n"
      "  risk <file.dat> [--top=20]             per-item crack ranking\n"
      "  belief <file.dat> <out.belief> [--delta=]  belief-file template\n"
      "  mine <file.dat> [--algorithm=fpgrowth|apriori|eclat]\n"
      "       [--min-support=0.1] [--min-confidence=0] [--top=20]\n"
      "  attack <file.dat> <belief-file> [--top=10] evaluate a hacker model\n"
      "  defend <in.dat> <out.dat> [--tolerance=0.1] [--mode=merge|suppress]\n"
      "  recommend-defense <file.dat> [--seed=7] [--threads=1] [--json]\n"
      "        [--csv[=path]] [--ryser-cutoff=22] [--prefer-sampler]\n"
      "                                        sweep every registered\n"
      "                                        defense scheme and print the\n"
      "                                        risk-utility Pareto frontier\n"
      "                                        (see docs/DEFENSE.md)\n"
      "  anonymize <in.dat> <out.dat> [--seed=]\n"
      "  generate <BENCHMARK> <out.dat> [--scale=1.0] [--seed=]\n"
      "        BENCHMARK: CONNECT PUMSB ACCIDENTS RETAIL MUSHROOM CHESS\n"
      "  help\n"
      "\n"
      "Global flags (any command):\n"
      "  --threads=N           worker threads for parallel phases (0 = all\n"
      "                        cores); results are identical for any N\n"
      "  --trace               print a per-phase timing tree after the run\n"
      "  --trace-format=<fmt>  trace output format: table (default), json,\n"
      "                        or chrome (Perfetto-loadable trace events);\n"
      "                        implies --trace\n"
      "  --trace-out=<path>    write the trace to a file instead of stdout;\n"
      "                        implies --trace\n"
      "  --metrics-out=<path>  write run metrics as JSON (plus a .prom\n"
      "                        sibling in Prometheus text format)\n"
      "  --log-level=<level>   structured-log threshold: error, warn\n"
      "                        (default), info, debug; also via the\n"
      "                        ANONSAFE_LOG_LEVEL env var\n"
      "  --log-file=<path>     append JSON log lines to a file instead of\n"
      "                        stderr\n"
      "\n"
      "Transaction files are FIMI format: one transaction per line,\n"
      "whitespace-separated integer item labels.\n";
}

}  // namespace anonsafe
