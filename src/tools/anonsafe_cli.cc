// The `anonsafe` command-line tool: owner-side risk assessment of
// transaction files without writing any code. See `anonsafe help`.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  auto cli = anonsafe::ParseCli(args);
  if (!cli.ok()) {
    std::cerr << cli.status().message() << "\n";
    return 2;
  }
  anonsafe::Status status = anonsafe::RunCli(*cli, std::cout);
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return 1;
  }
  return 0;
}
