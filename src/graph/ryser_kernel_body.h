#ifndef ANONSAFE_GRAPH_RYSER_KERNEL_BODY_H_
#define ANONSAFE_GRAPH_RYSER_KERNEL_BODY_H_

#include <bit>
#include <cstdint>

#include "graph/simd_kernels.h"

// The Ryser lane kernel, templated over an 8-lane double vector trait so
// each ISA translation unit instantiates the *same* floating-point DAG
// with its own registers. Bit-identity across tiers rests on every V8
// operation being a plain IEEE-754 binary64 op (add/sub/mul/compare/
// select/bitwise) applied lane-wise in this fixed order — no FMA, no
// reassociation, no approximations. The trait contract:
//
//   static V8 Zero();
//   static V8 Load(const double* p);          // p 64-byte aligned
//   static V8 Broadcast(double x);
//   static V8 Add(V8, V8) / Sub(V8, V8) / Mul(V8, V8);
//   static V8 XorSigns(V8, const double* s);  // lane-wise XOR with s[0..7]
//   static V8 MaskKeep(V8, unsigned m);       // lane j -> +0.0 unless bit j
//   static unsigned ZeroMask(V8);             // bit j set iff lane j == ±0.0
//   static V8 NeumaierE(V8 s, V8 y, V8 t1);   // |s|>=|y| ? (s-t1)+y : (y-t1)+s
//   static void Store(V8, double* p);

namespace anonsafe {
namespace internal {

/// Evaluates Ryser terms for global subsets [begin, end) ⊆ [1, 2^n) in
/// blocks of 8 lanes. Per block t the subset of lane j is
/// (gray(t) << 3) | low3(j, t & 1); the per-row sum splits into a scalar
/// high part h[i] (incrementally maintained across blocks: the t -> t+1
/// Gray step flips exactly one high column) and the precomputed per-lane
/// low table. Boundary blocks mask out-of-range lanes to +0.0, which is
/// an exact no-op on the accumulators (they are never -0.0: both start
/// at +0.0 and x + y == -0.0 only when both operands are -0.0).
///
/// The zero-row skip of the scalar kernel is preserved per block: a row
/// with empty low columns and zero high sum forces all 8 products to
/// +0.0, so the block is skipped outright; rows that are only zero in
/// some lanes flow through the product and are tallied by ZeroMask.
/// Either way `*zero_products` counts exactly the in-range subsets with
/// a zero product, the same value the scalar loop counted.
template <typename V8>
void RyserRangeLanes(const RyserPlan& plan, uint64_t begin, uint64_t end,
                     double* sum, double* comp, uint64_t* zero_products) {
  const size_t n = plan.n;
  uint64_t t = begin >> kRyserLowBits;
  const uint64_t t_last = (end - 1) >> kRyserLowBits;
  uint64_t gray = t ^ (t >> 1);

  // Reseed the high sums (and the dead-row counter) from gray(t).
  double h[kMaxRyserRows];
  size_t dead = 0;
  for (size_t i = 0; i < n; ++i) {
    h[i] = static_cast<double>(std::popcount(plan.rows_hi[i] & gray));
    if (((plan.low_zero_rows >> i) & 1) != 0 && h[i] == 0.0) ++dead;
  }

  V8 s = V8::Zero();
  V8 c = V8::Zero();
  uint64_t zeroed = 0;
  for (;; ++t) {
    const uint64_t base = t << kRyserLowBits;
    unsigned m = 0xFFu;
    if (base < begin) m = (m << (begin - base)) & 0xFFu;
    if (end - base < kRyserLanes) m &= 0xFFu >> (kRyserLanes - (end - base));

    if (dead == 0) {
      const size_t p = t & 1;
      const double* low = plan.low + p * n * kRyserLanes;
      V8 v = V8::Add(V8::Broadcast(h[0]), V8::Load(low));
      for (size_t i = 1; i < n; ++i) {
        v = V8::Mul(v, V8::Add(V8::Broadcast(h[i]),
                               V8::Load(low + i * kRyserLanes)));
      }
      const size_t bn =
          (n + static_cast<size_t>(std::popcount(gray))) & 1;
      v = V8::XorSigns(v, kRyserSignTable[p][bn]);
      zeroed += static_cast<uint64_t>(std::popcount(V8::ZeroMask(v) & m));
      const V8 y = m == 0xFFu ? v : V8::MaskKeep(v, m);
      const V8 t1 = V8::Add(s, y);
      c = V8::Add(c, V8::NeumaierE(s, y, t1));
      s = t1;
    } else {
      zeroed += static_cast<uint64_t>(std::popcount(m));
    }

    if (t == t_last) break;
    // Gray step t -> t+1 flips high column countr_zero(t+1); walk only
    // the rows containing it (transposed colhi masks).
    const uint64_t next = t + 1;
    const uint64_t next_gray = next ^ (next >> 1);
    const uint64_t diff = gray ^ next_gray;
    const double delta = (next_gray & diff) != 0 ? 1.0 : -1.0;
    const int b = std::countr_zero(diff);
    for (uint64_t rows = plan.colhi[b]; rows != 0; rows &= rows - 1) {
      const int i = std::countr_zero(rows);
      const double before = h[i];
      h[i] = before + delta;
      if (((plan.low_zero_rows >> i) & 1) != 0) {
        if (before == 0.0) {
          --dead;
        } else if (h[i] == 0.0) {
          ++dead;
        }
      }
    }
    gray = next_gray;
  }

  // Fold the 8 lanes into one Neumaier pair: sums first, then the lane
  // compensations, in lane order. The caller folds chunk pairs the same
  // way, so the whole reduction tree is fixed.
  double lanes_s[kRyserLanes];
  double lanes_c[kRyserLanes];
  V8::Store(s, lanes_s);
  V8::Store(c, lanes_c);
  double fs = 0.0;
  double fc = 0.0;
  for (size_t j = 0; j < kRyserLanes; ++j) NeumaierAdd(&fs, &fc, lanes_s[j]);
  for (size_t j = 0; j < kRyserLanes; ++j) NeumaierAdd(&fs, &fc, lanes_c[j]);
  *sum = fs;
  *comp = fc;
  if (zero_products != nullptr) *zero_products += zeroed;
}

}  // namespace internal
}  // namespace anonsafe

#endif  // ANONSAFE_GRAPH_RYSER_KERNEL_BODY_H_
