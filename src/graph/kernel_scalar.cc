#include <bit>
#include <cmath>
#include <cstdint>

#include "graph/ryser_kernel_body.h"
#include "graph/simd_kernels.h"

// Scalar tier: the 8-lane trait is a plain double[8] with per-lane
// loops. Every operation is the same IEEE-754 binary64 op the vector
// tiers issue, so results are bit-identical; the compiler may
// auto-vectorize the lane loops (legal — lanes are independent and no
// reassociation is possible), but this TU carries no -m flags, so the
// binary runs on any x86-64 (or non-x86) host.

namespace anonsafe {
namespace internal {
namespace {

struct V8Scalar {
  double d[kRyserLanes];

  static V8Scalar Zero() {
    V8Scalar r;
    for (size_t j = 0; j < kRyserLanes; ++j) r.d[j] = 0.0;
    return r;
  }
  static V8Scalar Load(const double* p) {
    V8Scalar r;
    for (size_t j = 0; j < kRyserLanes; ++j) r.d[j] = p[j];
    return r;
  }
  static V8Scalar Broadcast(double x) {
    V8Scalar r;
    for (size_t j = 0; j < kRyserLanes; ++j) r.d[j] = x;
    return r;
  }
  static V8Scalar Add(V8Scalar a, V8Scalar b) {
    V8Scalar r;
    for (size_t j = 0; j < kRyserLanes; ++j) r.d[j] = a.d[j] + b.d[j];
    return r;
  }
  static V8Scalar Sub(V8Scalar a, V8Scalar b) {
    V8Scalar r;
    for (size_t j = 0; j < kRyserLanes; ++j) r.d[j] = a.d[j] - b.d[j];
    return r;
  }
  static V8Scalar Mul(V8Scalar a, V8Scalar b) {
    V8Scalar r;
    for (size_t j = 0; j < kRyserLanes; ++j) r.d[j] = a.d[j] * b.d[j];
    return r;
  }
  static V8Scalar XorSigns(V8Scalar a, const double* signs) {
    V8Scalar r;
    for (size_t j = 0; j < kRyserLanes; ++j) {
      r.d[j] = std::bit_cast<double>(std::bit_cast<uint64_t>(a.d[j]) ^
                                     std::bit_cast<uint64_t>(signs[j]));
    }
    return r;
  }
  static V8Scalar MaskKeep(V8Scalar a, unsigned m) {
    V8Scalar r;
    for (size_t j = 0; j < kRyserLanes; ++j) {
      r.d[j] = ((m >> j) & 1u) != 0 ? a.d[j] : 0.0;
    }
    return r;
  }
  static unsigned ZeroMask(V8Scalar a) {
    unsigned m = 0;
    for (size_t j = 0; j < kRyserLanes; ++j) {
      if (a.d[j] == 0.0) m |= 1u << j;
    }
    return m;
  }
  static V8Scalar NeumaierE(V8Scalar s, V8Scalar y, V8Scalar t1) {
    V8Scalar r;
    for (size_t j = 0; j < kRyserLanes; ++j) {
      r.d[j] = std::fabs(s.d[j]) >= std::fabs(y.d[j])
                   ? (s.d[j] - t1.d[j]) + y.d[j]
                   : (y.d[j] - t1.d[j]) + s.d[j];
    }
    return r;
  }
  static void Store(V8Scalar a, double* p) {
    for (size_t j = 0; j < kRyserLanes; ++j) p[j] = a.d[j];
  }
};

size_t CountFixedPointsScalar(const ItemId* v, const uint8_t* interest,
                              size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] == static_cast<ItemId>(i) &&
        (interest == nullptr || interest[i] != 0)) {
      ++count;
    }
  }
  return count;
}

size_t CountConsistentIdentityScalar(const size_t* group, const size_t* lo,
                                     const size_t* hi,
                                     const uint8_t* has_range, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (has_range[i] != 0 && lo[i] <= group[i] && group[i] <= hi[i]) {
      ++count;
    }
  }
  return count;
}

}  // namespace

const KernelVTable* ScalarKernels() {
  static const KernelVTable vtable = {
      cpu::Isa::kScalar,
      "scalar",
      &RyserRangeLanes<V8Scalar>,
      &CountFixedPointsScalar,
      &CountConsistentIdentityScalar,
  };
  return &vtable;
}

}  // namespace internal
}  // namespace anonsafe
