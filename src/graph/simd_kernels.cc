#include "graph/simd_kernels.h"

namespace anonsafe {
namespace internal {

// The term sign of subset S is (-1)^(n - |S|); with |S| =
// popcount(gray(t)) + popcount(low3(j, p)) the lane-dependent part is
// the parity of popcount(low3(j, p)), folded with block_parity =
// (n + popcount(gray(t))) & 1 by the kernel's table index. For p = 0 the
// lane values low3 = gray3(j) have popcount parity 0,1,0,1,...; p = 1
// XORs in bit 2, flipping every parity. XORing the ±0.0 entry onto a
// product negates it exactly when the term is negative.
alignas(64) const double kRyserSignTable[2][2][kRyserLanes] = {
    {{+0.0, -0.0, +0.0, -0.0, +0.0, -0.0, +0.0, -0.0},   // p=0, even block
     {-0.0, +0.0, -0.0, +0.0, -0.0, +0.0, -0.0, +0.0}},  // p=0, odd block
    {{-0.0, +0.0, -0.0, +0.0, -0.0, +0.0, -0.0, +0.0},   // p=1, even block
     {+0.0, -0.0, +0.0, -0.0, +0.0, -0.0, +0.0, -0.0}},  // p=1, odd block
};

namespace {

const KernelVTable* ResolveKernels() {
  // Fall down the tier ladder from the active tier: a tier can be
  // unavailable because the CPU lacks it, ANONSAFE_FORCE_ISA demoted it,
  // or the compiler could not build its TU.
  for (int tier = static_cast<int>(cpu::ActiveIsa()); tier > 0; --tier) {
    if (const KernelVTable* k = KernelsFor(static_cast<cpu::Isa>(tier))) {
      return k;
    }
  }
  return ScalarKernels();
}

}  // namespace

const KernelVTable& Kernels() {
  static const KernelVTable* const kernels = ResolveKernels();
  return *kernels;
}

const KernelVTable* KernelsFor(cpu::Isa isa) {
  if (!cpu::IsaSupported(isa)) return nullptr;
  switch (isa) {
    case cpu::Isa::kScalar:
      return ScalarKernels();
    case cpu::Isa::kAvx2:
      return Avx2Kernels();
    case cpu::Isa::kAvx512:
      return Avx512Kernels();
  }
  return nullptr;
}

}  // namespace internal
}  // namespace anonsafe
