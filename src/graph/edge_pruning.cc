#include "graph/edge_pruning.h"

#include <algorithm>

#include "obs/scoped_timer.h"

namespace anonsafe {
namespace {

/// Iterative Tarjan SCC over the alternating-structure digraph.
///
/// Vertices 0..n-1 are anonymized items, n..2n-1 are original items.
/// Arcs: for each edge (a, x): if M(a) == x then x -> a, else a -> x.
/// (Any consistent orientation convention works; this one makes each
/// alternating cycle a directed cycle.)
class SccSolver {
 public:
  SccSolver(const BipartiteGraph& graph, const Matching& matching)
      : graph_(graph),
        matching_(matching),
        n_(graph.num_items()),
        index_(2 * n_, kUnvisited),
        lowlink_(2 * n_, 0),
        on_stack_(2 * n_, false),
        component_(2 * n_, 0) {}

  void Run() {
    for (size_t v = 0; v < 2 * n_; ++v) {
      if (index_[v] == kUnvisited) Visit(v);
    }
  }

  size_t component(size_t v) const { return component_[v]; }
  size_t num_components() const { return num_components_; }

 private:
  static constexpr size_t kUnvisited = static_cast<size_t>(-1);

  // Successors of vertex v in the digraph.
  // anon a (v = a): arcs a -> x for unmatched edges (a, x).
  // item x (v = n + x): single arc x -> M(x) (its matched anon), if any.
  template <typename Fn>
  void ForEachSuccessor(size_t v, Fn&& fn) const {
    if (v < n_) {
      const auto a = static_cast<ItemId>(v);
      for (ItemId x : graph_.items_of_anon(a)) {
        if (matching_.item_of_anon[a] != x) fn(n_ + x);
      }
    } else {
      const auto x = static_cast<ItemId>(v - n_);
      ItemId a = matching_.anon_of_item[x];
      if (a != kInvalidItem) fn(static_cast<size_t>(a));
    }
  }

  void Visit(size_t root) {
    // Explicit DFS stack: (vertex, next-successor cursor). Successor
    // lists are materialized per frame to keep the code simple; the
    // digraph has at most E + n arcs total.
    struct Frame {
      size_t v;
      std::vector<size_t> succ;
      size_t cursor = 0;
    };
    std::vector<Frame> stack;
    auto push = [&](size_t v) {
      index_[v] = lowlink_[v] = next_index_++;
      scc_stack_.push_back(v);
      on_stack_[v] = true;
      Frame f;
      f.v = v;
      ForEachSuccessor(v, [&](size_t w) { f.succ.push_back(w); });
      stack.push_back(std::move(f));
    };
    push(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.cursor < frame.succ.size()) {
        size_t w = frame.succ[frame.cursor++];
        if (index_[w] == kUnvisited) {
          push(w);
        } else if (on_stack_[w]) {
          lowlink_[frame.v] = std::min(lowlink_[frame.v], index_[w]);
        }
      } else {
        size_t v = frame.v;
        if (lowlink_[v] == index_[v]) {
          // v is an SCC root: pop its component.
          for (;;) {
            size_t w = scc_stack_.back();
            scc_stack_.pop_back();
            on_stack_[w] = false;
            component_[w] = num_components_;
            if (w == v) break;
          }
          ++num_components_;
        }
        stack.pop_back();
        if (!stack.empty()) {
          size_t parent = stack.back().v;
          lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
        }
      }
    }
  }

  const BipartiteGraph& graph_;
  const Matching& matching_;
  const size_t n_;
  std::vector<size_t> index_, lowlink_;
  std::vector<bool> on_stack_;
  std::vector<size_t> component_;
  std::vector<size_t> scc_stack_;
  size_t next_index_ = 0;
  size_t num_components_ = 0;
};

}  // namespace

Result<MatchingCover> ComputeMatchingCover(const BipartiteGraph& graph) {
  obs::ScopedTimer timer("graph.matching_cover");
  const size_t n = graph.num_items();
  Matching matching = HopcroftKarp(graph);
  if (!matching.IsPerfect()) {
    return Status::FailedPrecondition(
        "graph has no perfect matching; the matching cover is empty");
  }

  SccSolver scc(graph, matching);
  scc.Run();

  MatchingCover cover;
  cover.component_of_anon.resize(n);
  cover.component_of_item.resize(n);
  // Compact component ids to a contiguous range over used ids.
  std::vector<size_t> remap(scc.num_components(), static_cast<size_t>(-1));
  size_t next_id = 0;
  auto map_id = [&](size_t raw) {
    if (remap[raw] == static_cast<size_t>(-1)) remap[raw] = next_id++;
    return remap[raw];
  };
  for (size_t a = 0; a < n; ++a) {
    cover.component_of_anon[a] = map_id(scc.component(a));
  }
  for (size_t x = 0; x < n; ++x) {
    cover.component_of_item[x] = map_id(scc.component(n + x));
  }
  cover.num_components = next_id;

  // Keep an edge iff it is matched or joins vertices of one SCC.
  std::vector<std::vector<ItemId>> kept(n);
  size_t kept_edges = 0;
  for (size_t a = 0; a < n; ++a) {
    for (ItemId x : graph.items_of_anon(static_cast<ItemId>(a))) {
      bool usable = matching.item_of_anon[a] == x ||
                    cover.component_of_anon[a] == cover.component_of_item[x];
      if (usable) {
        kept[a].push_back(x);
        ++kept_edges;
      }
    }
  }
  cover.pruned_edges = graph.num_edges() - kept_edges;
  obs::CountIf("anonsafe_pruned_edges_total", cover.pruned_edges);
  if (timer.tracing()) {
    timer.Annotate("pruned_edges", std::to_string(cover.pruned_edges));
    timer.Annotate("components", std::to_string(cover.num_components));
  }
  ANONSAFE_ASSIGN_OR_RETURN(cover.graph,
                            BipartiteGraph::FromAdjacency(n, std::move(kept)));
  return cover;
}

Result<SetDisclosure> AnalyzeSetDisclosure(const BipartiteGraph& graph,
                                           size_t small_set_threshold) {
  ANONSAFE_ASSIGN_OR_RETURN(MatchingCover cover, ComputeMatchingCover(graph));
  const size_t n = graph.num_items();

  std::vector<std::vector<ItemId>> sets(cover.num_components);
  for (ItemId x = 0; x < n; ++x) {
    sets[cover.component_of_item[x]].push_back(x);
  }
  // Matched pairs put every anon item in the same component as some item,
  // so no component is item-empty; still, drop empties defensively.
  sets.erase(std::remove_if(sets.begin(), sets.end(),
                            [](const std::vector<ItemId>& s) {
                              return s.empty();
                            }),
             sets.end());
  std::sort(sets.begin(), sets.end(),
            [](const std::vector<ItemId>& a, const std::vector<ItemId>& b) {
              return a.front() < b.front();
            });

  SetDisclosure out;
  for (const auto& s : sets) {
    if (s.size() == 1) ++out.certain_cracks;
    if (s.size() <= small_set_threshold) {
      ++out.small_sets;
      out.items_in_small_sets += s.size();
    }
  }
  out.identified_sets = std::move(sets);
  return out;
}

}  // namespace anonsafe
