#include "graph/matching_sampler.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "exec/scratch.h"
#include "graph/simd_kernels.h"
#include "obs/scoped_timer.h"
#include "util/rng.h"

namespace anonsafe {

struct MatchingSampler::ChainState {
  Rng rng{0};
  exec::ScratchVec<ItemId> item_of_anon;
  exec::ScratchVec<ItemId> anon_of_item;
  exec::ScratchVec<ItemId> unmatched_items;  // maintained when imperfect
};

size_t SamplerOptions::EffectiveBurnIn(size_t n) const {
  const double scaled = burn_in_scale * static_cast<double>(n);
  // Casting a double that is NaN or >= 2^64 to size_t is undefined
  // behavior; clamp before converting. NaN fails every comparison, so it
  // falls through to the unscaled floor.
  size_t scaled_sweeps = burn_in_sweeps;
  if (scaled >= static_cast<double>(kMaxBurnInSweeps)) {
    scaled_sweeps = kMaxBurnInSweeps;
  } else if (scaled > 0.0) {
    scaled_sweeps = static_cast<size_t>(scaled);
  }
  return scaled_sweeps > burn_in_sweeps ? scaled_sweeps : burn_in_sweeps;
}

Result<MatchingSampler> MatchingSampler::Create(
    const FrequencyGroups& observed, const BeliefFunction& belief,
    const SamplerOptions& options) {
  if (observed.num_items() != belief.num_items()) {
    return Status::InvalidArgument(
        "observed data covers " + std::to_string(observed.num_items()) +
        " items, belief function " + std::to_string(belief.num_items()));
  }
  if (options.samples_per_seed == 0) {
    return Status::InvalidArgument(
        "samples_per_seed must be positive (a zero-sample chain would "
        "never make progress)");
  }
  if (!(options.cycle_move_fraction >= 0.0) ||
      options.cycle_move_fraction > 1.0) {
    return Status::InvalidArgument(
        "cycle_move_fraction must lie in [0, 1], got " +
        std::to_string(options.cycle_move_fraction));
  }
  if (!(options.burn_in_scale >= 0.0) ||
      !std::isfinite(options.burn_in_scale)) {
    return Status::InvalidArgument(
        "burn_in_scale must be finite and non-negative, got " +
        std::to_string(options.burn_in_scale));
  }
  const size_t n = observed.num_items();
  if (n == 0) {
    return Status::InvalidArgument("cannot sample over an empty domain");
  }

  MatchingSampler s;
  s.options_ = options;
  s.group_of_anon_.resize(n);
  s.item_lo_.assign(n, 0);
  s.item_hi_.assign(n, 0);
  s.item_has_range_.assign(n, 0);
  for (ItemId x = 0; x < n; ++x) {
    // Identity-surrogate convention: anonymized item x truly corresponds
    // to item x, so its observed frequency group is x's true group.
    s.group_of_anon_[x] = observed.group_of_item(x);
    const BeliefInterval& iv = belief.interval(x);
    size_t lo = 0, hi = 0;
    if (observed.StabRange(iv.lo, iv.hi, &lo, &hi)) {
      s.item_lo_[x] = lo;
      s.item_hi_[x] = hi;
      s.item_has_range_[x] = 1;
    }
  }

  // Seed matching: identity when consistent (the paper's choice — every
  // item starts cracked), otherwise exchange-greedy maximum matching for
  // the interval structure. Identity is consistent exactly when every
  // anon's own group stabs its own belief range — the dispatched
  // identity-consistency probe counts those in one pass.
  const bool identity_ok =
      internal::Kernels().count_consistent_identity(
          s.group_of_anon_.data(), s.item_lo_.data(), s.item_hi_.data(),
          s.item_has_range_.data(), n) == n;
  s.seed_item_of_anon_.assign(n, kInvalidItem);
  if (identity_ok) {
    for (ItemId a = 0; a < n; ++a) s.seed_item_of_anon_[a] = a;
    s.seed_size_ = n;
  } else {
    // Sort items by range start; sweep groups ascending; always match the
    // item whose range ends earliest (exchange argument => maximum).
    std::vector<ItemId> by_lo;
    for (ItemId x = 0; x < n; ++x) {
      if (s.item_has_range_[x]) by_lo.push_back(x);
    }
    std::sort(by_lo.begin(), by_lo.end(), [&](ItemId p, ItemId q) {
      return s.item_lo_[p] < s.item_lo_[q];
    });
    using HeapEntry = std::pair<size_t, ItemId>;  // (hi, item)
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>> heap;
    size_t next = 0;
    for (size_t g = 0; g < observed.num_groups(); ++g) {
      while (next < by_lo.size() && s.item_lo_[by_lo[next]] <= g) {
        heap.emplace(s.item_hi_[by_lo[next]], by_lo[next]);
        ++next;
      }
      for (ItemId a : observed.group_items(g)) {
        while (!heap.empty() && heap.top().first < g) heap.pop();
        if (heap.empty()) break;
        s.seed_item_of_anon_[a] = heap.top().second;
        ++s.seed_size_;
        heap.pop();
      }
    }
  }
  s.ReseedState();
  return s;
}

void MatchingSampler::ReseedState() {
  const size_t n = num_items();
  item_of_anon_ = seed_item_of_anon_;
  anon_of_item_.assign(n, kInvalidItem);
  for (ItemId a = 0; a < n; ++a) {
    if (item_of_anon_[a] != kInvalidItem) {
      anon_of_item_[item_of_anon_[a]] = a;
    }
  }
  unmatched_items_.clear();
  for (ItemId x = 0; x < n; ++x) {
    if (anon_of_item_[x] == kInvalidItem && item_has_range_[x]) {
      unmatched_items_.push_back(x);
    }
  }
}

void MatchingSampler::InitChain(ChainState* chain,
                                uint64_t chain_seed) const {
  const size_t n = num_items();
  chain->rng = Rng(chain_seed);
  chain->item_of_anon.vec() = seed_item_of_anon_;
  chain->anon_of_item.assign(n, kInvalidItem);
  for (ItemId a = 0; a < n; ++a) {
    if (chain->item_of_anon[a] != kInvalidItem) {
      chain->anon_of_item[chain->item_of_anon[a]] = a;
    }
  }
  chain->unmatched_items.clear();
  for (ItemId x = 0; x < n; ++x) {
    if (chain->anon_of_item[x] == kInvalidItem && item_has_range_[x]) {
      chain->unmatched_items.push_back(x);
    }
  }
}

void MatchingSampler::SweepChain(ChainState* chain) const {
  const size_t n = num_items();
  Rng& rng_ = chain->rng;
  std::vector<ItemId>& item_of_anon_ = chain->item_of_anon.vec();
  std::vector<ItemId>& anon_of_item_ = chain->anon_of_item.vec();
  std::vector<ItemId>& unmatched_items_ = chain->unmatched_items.vec();
  // One move attempt per anonymized item. The partner is drawn uniformly
  // per step rather than from a permutation as in the paper's Section 7.1
  // procedure: pairing i with P(i) makes every 2-cycle of P swap and then
  // un-swap the same pair within one sweep (at n = 2 the chain would
  // never leave its seed at all).
  for (size_t i = 0; i < n; ++i) {
    const auto a = static_cast<ItemId>(i);
    const auto b = static_cast<ItemId>(rng_.UniformUint64(n));

    const double u = rng_.UniformDouble();

    // Replacement move: swap a matched item for an unmatched one. Only
    // meaningful when the matching is imperfect.
    if (!unmatched_items_.empty() && u < 0.3) {
      size_t pick = rng_.UniformUint64(unmatched_items_.size());
      ItemId y = unmatched_items_[pick];
      ItemId x = item_of_anon_[a];
      if (x != kInvalidItem && x != y && Consistent(a, y)) {
        item_of_anon_[a] = y;
        anon_of_item_[y] = a;
        anon_of_item_[x] = kInvalidItem;
        unmatched_items_[pick] = x;
      }
      continue;
    }

    // 3-cycle rotation: reaches matchings that pair swaps cannot.
    if (u < options_.cycle_move_fraction && n >= 3) {
      const auto c = static_cast<ItemId>(rng_.UniformUint64(n));
      if (a == b || b == c || a == c) continue;
      ItemId x = item_of_anon_[a], y = item_of_anon_[b],
             z = item_of_anon_[c];
      if (x == kInvalidItem || y == kInvalidItem || z == kInvalidItem) {
        continue;
      }
      if (Consistent(a, z) && Consistent(b, x) && Consistent(c, y)) {
        item_of_anon_[a] = z;
        item_of_anon_[b] = x;
        item_of_anon_[c] = y;
        anon_of_item_[z] = a;
        anon_of_item_[x] = b;
        anon_of_item_[y] = c;
      }
      continue;
    }

    // Pair move (the paper's swap), with single-edge transfers when one
    // endpoint is unmatched.
    if (a == b) continue;
    ItemId x = item_of_anon_[a];
    ItemId y = item_of_anon_[b];
    if (x != kInvalidItem && y != kInvalidItem) {
      if (Consistent(a, y) && Consistent(b, x)) {
        item_of_anon_[a] = y;
        item_of_anon_[b] = x;
        anon_of_item_[y] = a;
        anon_of_item_[x] = b;
      }
    } else if (x != kInvalidItem && y == kInvalidItem) {
      if (Consistent(b, x)) {
        item_of_anon_[b] = x;
        item_of_anon_[a] = kInvalidItem;
        anon_of_item_[x] = b;
      }
    } else if (x == kInvalidItem && y != kInvalidItem) {
      if (Consistent(a, y)) {
        item_of_anon_[a] = y;
        item_of_anon_[b] = kInvalidItem;
        anon_of_item_[y] = a;
      }
    }
  }
}

size_t MatchingSampler::CountCracksOf(const ChainState& chain,
                                      const uint8_t* interest) const {
  return internal::Kernels().count_fixed_points(chain.item_of_anon.data(),
                                                interest, num_items());
}

std::vector<size_t> MatchingSampler::SampleImpl(
    const std::vector<bool>* interest, exec::ExecContext* ctx) const {
  obs::ScopedTimer timer("graph.sampler_sample");
  obs::CountIf("anonsafe_sampler_samples_total", options_.num_samples);
  if (timer.tracing()) {
    timer.Annotate("samples", std::to_string(options_.num_samples));
  }
  const size_t total = options_.num_samples;
  const size_t per_chain = options_.samples_per_seed;
  const size_t num_chains =
      total == 0 ? 0 : (total + per_chain - 1) / per_chain;
  const size_t burn_in = options_.EffectiveBurnIn(num_items());
  const uint64_t master_seed = options_.exec.seed;

  // Widen the interest mask to bytes once, outside the parallel loop, so
  // every probe reads a flat array (vector<bool> cannot be streamed).
  std::vector<uint8_t> interest_bytes;
  const uint8_t* interest_ptr = nullptr;
  if (interest != nullptr) {
    interest_bytes.resize(interest->size());
    for (size_t i = 0; i < interest->size(); ++i) {
      interest_bytes[i] = (*interest)[i] ? 1 : 0;
    }
    interest_ptr = interest_bytes.data();
  }

  // Chains are fully independent: chain c always runs the RNG stream
  // SplitSeed(master_seed, c) and writes into its own output slots, so
  // the vector below is the same whatever the thread count.
  std::vector<size_t> samples(total, 0);
  Status st = exec::ParallelForChunks(
      ctx, num_chains, /*grain=*/1,
      [&](size_t c, size_t /*end*/) {
        ChainState chain;
        InitChain(&chain, exec::SplitSeed(master_seed, c));
        for (size_t sweep = 0; sweep < burn_in; ++sweep) {
          SweepChain(&chain);
        }
        const size_t begin = c * per_chain;
        const size_t count =
            per_chain < total - begin ? per_chain : total - begin;
        for (size_t s = 0; s < count; ++s) {
          if (s > 0) {
            for (size_t sweep = 0; sweep < options_.thinning_sweeps;
                 ++sweep) {
              SweepChain(&chain);
            }
          }
          samples[begin + s] = CountCracksOf(chain, interest_ptr);
        }
        return Status::OK();
      });
  (void)st;  // the body cannot fail
  return samples;
}

std::vector<size_t> MatchingSampler::SampleCrackCounts(
    exec::ExecContext* ctx) const {
  return SampleImpl(nullptr, ctx);
}

Result<std::vector<size_t>> MatchingSampler::SampleCrackCounts(
    const std::vector<bool>& interest, exec::ExecContext* ctx) const {
  if (interest.size() != num_items()) {
    return Status::InvalidArgument("interest mask size mismatch");
  }
  return SampleImpl(&interest, ctx);
}

bool MatchingSampler::CurrentStateConsistent() const {
  const size_t n = num_items();
  std::vector<bool> used(n, false);
  for (ItemId a = 0; a < n; ++a) {
    ItemId x = item_of_anon_[a];
    if (x == kInvalidItem) continue;
    if (x >= n || used[x] || !Consistent(a, x)) return false;
    if (anon_of_item_[x] != a) return false;
    used[x] = true;
  }
  return true;
}

}  // namespace anonsafe
