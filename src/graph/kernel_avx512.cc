#include "graph/simd_kernels.h"

// AVX-512 tier: one 512-bit register per 8-lane vector, lane masks map
// directly onto __mmask8. Compiled with -mavx512f -mavx512dq
// -ffp-contract=off when the compiler supports it; otherwise this TU
// degrades to a nullptr accessor and dispatch falls back a tier.

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "graph/ryser_kernel_body.h"

namespace anonsafe {
namespace internal {
namespace {

struct V8Avx512 {
  __m512d v;

  static V8Avx512 Zero() { return {_mm512_setzero_pd()}; }
  static V8Avx512 Load(const double* p) { return {_mm512_load_pd(p)}; }
  static V8Avx512 Broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static V8Avx512 Add(V8Avx512 a, V8Avx512 b) {
    return {_mm512_add_pd(a.v, b.v)};
  }
  static V8Avx512 Sub(V8Avx512 a, V8Avx512 b) {
    return {_mm512_sub_pd(a.v, b.v)};
  }
  static V8Avx512 Mul(V8Avx512 a, V8Avx512 b) {
    return {_mm512_mul_pd(a.v, b.v)};
  }
  static V8Avx512 XorSigns(V8Avx512 a, const double* signs) {
    return {_mm512_xor_pd(a.v, _mm512_load_pd(signs))};
  }
  static V8Avx512 MaskKeep(V8Avx512 a, unsigned m) {
    return {_mm512_maskz_mov_pd(static_cast<__mmask8>(m), a.v)};
  }
  static unsigned ZeroMask(V8Avx512 a) {
    return static_cast<unsigned>(
        _mm512_cmp_pd_mask(a.v, _mm512_setzero_pd(), _CMP_EQ_OQ));
  }
  static V8Avx512 NeumaierE(V8Avx512 s, V8Avx512 y, V8Avx512 t1) {
    const __mmask8 ge = _mm512_cmp_pd_mask(_mm512_abs_pd(s.v),
                                           _mm512_abs_pd(y.v), _CMP_GE_OQ);
    const __m512d a = _mm512_add_pd(_mm512_sub_pd(s.v, t1.v), y.v);
    const __m512d b = _mm512_add_pd(_mm512_sub_pd(y.v, t1.v), s.v);
    return {_mm512_mask_blend_pd(ge, b, a)};
  }
  static void Store(V8Avx512 a, double* p) { _mm512_storeu_pd(p, a.v); }
};

size_t CountFixedPointsAvx512(const ItemId* v, const uint8_t* interest,
                              size_t n) {
  size_t count = 0;
  __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                   13, 14, 15);
  const __m512i step = _mm512_set1_epi32(16);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __mmask16 eq = _mm512_cmpeq_epu32_mask(
        _mm512_loadu_si512(reinterpret_cast<const void*>(v + i)), iota);
    if (interest != nullptr) {
      const __m512i wanted = _mm512_cvtepu8_epi32(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(interest + i)));
      eq &= _mm512_test_epi32_mask(wanted, wanted);
    }
    count += static_cast<size_t>(
        std::popcount(static_cast<unsigned>(eq)));
    iota = _mm512_add_epi32(iota, step);
  }
  for (; i < n; ++i) {
    if (v[i] == static_cast<ItemId>(i) &&
        (interest == nullptr || interest[i] != 0)) {
      ++count;
    }
  }
  return count;
}

size_t CountConsistentIdentityAvx512(const size_t* group, const size_t* lo,
                                     const size_t* hi,
                                     const uint8_t* has_range, size_t n) {
  static_assert(sizeof(size_t) == 8, "64-bit lanes assumed");
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i g = _mm512_loadu_si512(
        reinterpret_cast<const void*>(group + i));
    const __m512i l = _mm512_loadu_si512(
        reinterpret_cast<const void*>(lo + i));
    const __m512i h = _mm512_loadu_si512(
        reinterpret_cast<const void*>(hi + i));
    const __m512i wanted = _mm512_cvtepu8_epi64(_mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(has_range + i)));
    const __mmask8 ok = _mm512_cmple_epu64_mask(l, g) &
                        _mm512_cmple_epu64_mask(g, h) &
                        _mm512_test_epi64_mask(wanted, wanted);
    count += static_cast<size_t>(std::popcount(static_cast<unsigned>(ok)));
  }
  for (; i < n; ++i) {
    if (has_range[i] != 0 && lo[i] <= group[i] && group[i] <= hi[i]) {
      ++count;
    }
  }
  return count;
}

}  // namespace

const KernelVTable* Avx512Kernels() {
  static const KernelVTable vtable = {
      cpu::Isa::kAvx512,
      "avx512",
      &RyserRangeLanes<V8Avx512>,
      &CountFixedPointsAvx512,
      &CountConsistentIdentityAvx512,
  };
  return &vtable;
}

}  // namespace internal
}  // namespace anonsafe

#else  // !(__AVX512F__ && __AVX512DQ__)

namespace anonsafe {
namespace internal {

const KernelVTable* Avx512Kernels() { return nullptr; }

}  // namespace internal
}  // namespace anonsafe

#endif  // __AVX512F__ && __AVX512DQ__
