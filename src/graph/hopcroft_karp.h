#ifndef ANONSAFE_GRAPH_HOPCROFT_KARP_H_
#define ANONSAFE_GRAPH_HOPCROFT_KARP_H_

#include <vector>

#include "data/types.h"
#include "graph/bipartite_graph.h"

namespace anonsafe {

/// \brief A (possibly partial) matching in the consistency graph.
struct Matching {
  /// item matched to anonymized item a, or kInvalidItem.
  std::vector<ItemId> item_of_anon;
  /// anonymized item matched to item x, or kInvalidItem.
  std::vector<ItemId> anon_of_item;
  size_t size = 0;

  bool IsPerfect() const { return size == item_of_anon.size(); }
};

/// \brief Hopcroft–Karp maximum bipartite matching, O(E·sqrt(V)).
///
/// Used to (i) decide whether any consistent 1-1 crack mapping exists at
/// all (a perfect matching), and (ii) seed the MCMC matching sampler when
/// the identity seed is inconsistent (non-compliant beliefs).
Matching HopcroftKarp(const BipartiteGraph& graph);

/// \brief Verifies that `m` is a valid matching of `graph` (mutual,
/// consistent with edges). Used by tests and debug assertions.
bool IsValidMatching(const BipartiteGraph& graph, const Matching& m);

}  // namespace anonsafe

#endif  // ANONSAFE_GRAPH_HOPCROFT_KARP_H_
