#include "graph/permanent.h"

#include <algorithm>
#include <bit>
#include <string>

#include "exec/exec.h"
#include "exec/scratch.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace anonsafe {
namespace {

/// One contiguous slice [begin, end) of the Ryser iteration space
/// (iter 1 .. 2^n - 1). The per-row column sums are reseeded from the
/// Gray code of `begin - 1`, so slices are independent and the result
/// is identical to the classic single-pass form.
///
/// Two kernel-level optimizations over the textbook loop, both exactly
/// value-preserving:
///  - `cols[j]` is the bitmask of *rows containing column j* (the
///    transpose), so the ±1 update after a column flip walks only those
///    rows instead of branching over all n;
///  - `zero_rows` counts rows whose running sum is 0. While it is
///    nonzero the product Π row_sums is exactly +0.0 (sums are small
///    non-negative integers, no underflow), and adding ±0.0 never
///    changes `total` (which is never -0.0), so the product loop is
///    skipped outright. On sparse matrices most subsets die here.
///
/// `row_sums` is caller-provided scratch of size n; `*skipped`
/// accumulates the number of subsets short-circuited by the zero-row
/// counter.
long double RyserRange(const std::vector<uint64_t>& rows,
                       const uint64_t* cols, uint64_t begin, uint64_t end,
                       double* row_sums, uint64_t* skipped) {
  const size_t n = rows.size();
  uint64_t gray = (begin - 1) ^ ((begin - 1) >> 1);
  size_t zero_rows = 0;
  for (size_t i = 0; i < n; ++i) {
    row_sums[i] = static_cast<double>(std::popcount(rows[i] & gray));
    if (row_sums[i] == 0.0) ++zero_rows;
  }
  long double total = 0.0L;
  uint64_t local_skipped = 0;
  for (uint64_t iter = begin; iter < end; ++iter) {
    const uint64_t new_gray = iter ^ (iter >> 1);
    const uint64_t diff = gray ^ new_gray;
    const int col = std::countr_zero(diff);
    const double sign_col = (new_gray & diff) ? 1.0 : -1.0;
    for (uint64_t m = cols[col]; m != 0; m &= m - 1) {
      const int i = std::countr_zero(m);
      const double before = row_sums[i];
      row_sums[i] = before + sign_col;
      if (before == 0.0) {
        --zero_rows;
      } else if (row_sums[i] == 0.0) {
        ++zero_rows;
      }
    }
    gray = new_gray;

    if (zero_rows != 0) {
      ++local_skipped;
      continue;
    }
    long double prod = 1.0L;
    for (size_t i = 0; i < n; ++i) prod *= row_sums[i];
    int bits = std::popcount(new_gray);
    // (-1)^n (-1)^{|S|} = (-1)^{n - |S|}
    if ((n - static_cast<size_t>(bits)) & 1) {
      total -= prod;
    } else {
      total += prod;
    }
  }
  if (skipped != nullptr) *skipped += local_skipped;
  return total;
}

/// Ryser with Gray code on the *columns included* set:
///   perm(A) = (-1)^n Σ_{∅≠S⊆[n]} (-1)^{|S|} Π_i row_sum_i(S).
/// For n >= kRyserParallelMinN the 2^n - 1 subsets split into
/// kRyserChunks ranges — a function of n alone, so chunked partials
/// fold in the same order whatever the thread count.
double RyserImpl(const std::vector<uint64_t>& rows,
                 exec::ExecContext* ctx) {
  const size_t n = rows.size();
  if (n == 0) return 1.0;  // empty product convention
  const uint64_t limit = 1ULL << n;

  // Transpose to per-column row masks (n <= 26 rows fit one word).
  exec::ScratchVec<uint64_t> cols(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (uint64_t m = rows[i]; m != 0; m &= m - 1) {
      cols[static_cast<size_t>(std::countr_zero(m))] |= (1ULL << i);
    }
  }

  if (n < kRyserParallelMinN) {
    exec::ScratchVec<double> row_sums(n);
    uint64_t skipped = 0;
    double result = static_cast<double>(
        RyserRange(rows, cols.data(), 1, limit, row_sums.data(), &skipped));
    obs::CountIf("anonsafe_ryser_skipped_products_total", skipped);
    return result;
  }

  const size_t iters = static_cast<size_t>(limit - 1);
  const size_t grain = (iters + kRyserChunks - 1) / kRyserChunks;
  const size_t chunks = exec::NumChunks(iters, grain);
  std::vector<long double> partials(chunks, 0.0L);
  std::vector<uint64_t> skipped_slots(chunks, 0);
  // The body cannot fail; the Status channel is unused here.
  Status st = exec::ParallelForChunks(
      ctx, iters, grain, [&](size_t begin, size_t end) {
        exec::ScratchVec<double> row_sums(n);
        partials[begin / grain] =
            RyserRange(rows, cols.data(), 1 + begin, 1 + end,
                       row_sums.data(), &skipped_slots[begin / grain]);
        return Status::OK();
      });
  (void)st;
  long double total = 0.0L;
  uint64_t skipped = 0;
  for (size_t c = 0; c < chunks; ++c) {
    total += partials[c];
    skipped += skipped_slots[c];
  }
  obs::CountIf("anonsafe_ryser_skipped_products_total", skipped);
  return static_cast<double>(total);
}

}  // namespace

Result<double> PermanentRyser(const std::vector<uint64_t>& rows,
                              exec::ExecContext* ctx) {
  if (rows.size() > kMaxPermanentN) {
    return Status::OutOfRange(
        "permanent limited to n <= " + std::to_string(kMaxPermanentN) +
        ", got " + std::to_string(rows.size()));
  }
  for (uint64_t row : rows) {
    if (rows.size() < 64 && (row >> rows.size()) != 0) {
      return Status::InvalidArgument("row mask wider than the matrix");
    }
  }
  return RyserImpl(rows, ctx);
}

Result<double> CountPerfectMatchings(const BipartiteGraph& graph,
                                     exec::ExecContext* ctx) {
  ANONSAFE_SCOPED_TIMER("graph.permanent_count");
  if (graph.num_items() > kMaxPermanentN) {
    return Status::OutOfRange(
        "matching count limited to n <= " + std::to_string(kMaxPermanentN));
  }
  ANONSAFE_ASSIGN_OR_RETURN(std::vector<uint64_t> rows, graph.ToRowMasks());
  return PermanentRyser(rows, ctx);
}

Result<double> ExactExpectedCracksByPermanent(const BipartiteGraph& graph,
                                              exec::ExecContext* ctx) {
  ANONSAFE_SCOPED_TIMER("graph.permanent_exact_cracks");
  const size_t n = graph.num_items();
  if (n > kMaxPermanentN) {
    return Status::OutOfRange(
        "direct method limited to n <= " + std::to_string(kMaxPermanentN));
  }
  ANONSAFE_ASSIGN_OR_RETURN(std::vector<uint64_t> rows, graph.ToRowMasks());
  ANONSAFE_ASSIGN_OR_RETURN(double total, PermanentRyser(rows, ctx));
  if (total <= 0.0) {
    return Status::FailedPrecondition(
        "graph has no perfect matching; expected cracks undefined");
  }

  // One minor per task; per-item ratios land in fixed slots and fold
  // with a fixed-order pairwise sum, so the value is thread-count
  // independent. Each minor's own Ryser runs sequentially (the fan-out
  // lives at this level).
  ANONSAFE_ASSIGN_OR_RETURN(
      double expected,
      exec::ParallelSumChunks(
          ctx, n, /*grain=*/1,
          [&](size_t x, size_t /*end*/) -> Result<double> {
            if (!(rows[x] & (1ULL << x))) return 0.0;  // diagonal absent
            // Minor: drop row x and column x (pooled scratch: one minor
            // per item, recycled within each worker thread).
            exec::ScratchVec<uint64_t> minor;
            minor.vec().reserve(n - 1);
            const uint64_t low_mask = (1ULL << x) - 1;
            for (size_t i = 0; i < n; ++i) {
              if (i == x) continue;
              uint64_t row = rows[i];
              minor.push_back((row & low_mask) | ((row >> (x + 1)) << x));
            }
            ANONSAFE_ASSIGN_OR_RETURN(double sub, PermanentRyser(minor.vec()));
            return sub / total;
          }));
  return expected;
}

namespace {

class MatchingEnumerator {
 public:
  MatchingEnumerator(const BipartiteGraph& graph, uint64_t max_matchings)
      : graph_(graph),
        n_(graph.num_items()),
        max_matchings_(max_matchings),
        item_used_(n_, false),
        crack_tally_(n_ + 1, 0.0) {}

  Status Run() {
    // Order anonymized items by ascending degree: fail-first pruning.
    order_.resize(n_);
    for (size_t a = 0; a < n_; ++a) order_[a] = static_cast<ItemId>(a);
    std::sort(order_.begin(), order_.end(), [&](ItemId a, ItemId b) {
      return graph_.anon_degree(a) < graph_.anon_degree(b);
    });
    return Recurse(0, 0);
  }

  CrackDistribution Finish() {
    CrackDistribution out;
    out.num_matchings = num_matchings_;
    out.probability.assign(n_ + 1, 0.0);
    if (num_matchings_ > 0) {
      double total = static_cast<double>(num_matchings_);
      for (size_t c = 0; c <= n_; ++c) {
        out.probability[c] = crack_tally_[c] / total;
        out.expected += static_cast<double>(c) * out.probability[c];
      }
    }
    return out;
  }

 private:
  Status Recurse(size_t depth, size_t cracks) {
    if (depth == n_) {
      if (++num_matchings_ > max_matchings_) {
        return Status::OutOfRange(
            "more than " + std::to_string(max_matchings_) +
            " perfect matchings; enumeration aborted");
      }
      crack_tally_[cracks] += 1.0;
      return Status::OK();
    }
    ItemId a = order_[depth];
    for (ItemId x : graph_.items_of_anon(a)) {
      if (item_used_[x]) continue;
      item_used_[x] = true;
      Status st = Recurse(depth + 1, cracks + (x == a ? 1 : 0));
      item_used_[x] = false;
      ANONSAFE_RETURN_IF_ERROR(st);
    }
    return Status::OK();
  }

  const BipartiteGraph& graph_;
  const size_t n_;
  const uint64_t max_matchings_;
  std::vector<ItemId> order_;
  std::vector<bool> item_used_;
  std::vector<double> crack_tally_;
  uint64_t num_matchings_ = 0;
};

}  // namespace

Result<CrackDistribution> EnumerateCrackDistribution(
    const BipartiteGraph& graph, uint64_t max_matchings) {
  ANONSAFE_SCOPED_TIMER("graph.crack_distribution");
  MatchingEnumerator enumerator(graph, max_matchings);
  ANONSAFE_RETURN_IF_ERROR(enumerator.Run());
  return enumerator.Finish();
}

}  // namespace anonsafe
