#include "graph/permanent.h"

#include <algorithm>
#include <bit>
#include <string>
#include <utility>

#include "exec/exec.h"
#include "exec/scratch.h"
#include "graph/simd_kernels.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"

namespace anonsafe {
namespace {

using internal::KernelVTable;
using internal::kRyserLanes;
using internal::kRyserLowBits;
using internal::NeumaierAdd;
using internal::RyserPlan;

static_assert(internal::kMaxRyserRows == kMaxPermanentN,
              "lane kernel row capacity must match the public Ryser cap");

/// Caller-owned scratch behind a RyserPlan. The low table must be 64-byte
/// aligned (the SIMD tiers use aligned loads; each [p][i] row slice is
/// exactly one cache line). Reusable across matrices — PermanentBatch
/// builds every plan of a batch into the same buffers.
struct RyserScratch {
  exec::AlignedScratchVec<double> low;
  exec::ScratchVec<uint64_t> rows_hi;
  exec::ScratchVec<uint64_t> colhi;
};

/// Precomputes the lane decomposition of `rows` (see simd_kernels.h):
/// subset iter = 8t + j has gray(iter) = (gray(t) << 3) | low3(j, t & 1)
/// with low3(j, p) = (j ^ (j >> 1)) ^ (p << 2), so each row's subset sum
/// splits into a per-block scalar over the high columns plus this
/// per-lane table over the three low columns.
RyserPlan BuildRyserPlan(const std::vector<uint64_t>& rows,
                         RyserScratch* scratch) {
  const size_t n = rows.size();
  RyserPlan plan;
  plan.n = n;
  scratch->low.resize(2 * n * kRyserLanes);
  scratch->rows_hi.resize(n);
  const size_t hi_cols = n > kRyserLowBits ? n - kRyserLowBits : 0;
  scratch->colhi.assign(hi_cols, 0);
  constexpr uint64_t kLowMask = (1ULL << kRyserLowBits) - 1;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t low_bits = rows[i] & kLowMask;
    if (low_bits == 0) plan.low_zero_rows |= 1ULL << i;
    for (size_t p = 0; p < 2; ++p) {
      for (size_t j = 0; j < kRyserLanes; ++j) {
        const uint64_t low3 = (j ^ (j >> 1)) ^ (p << 2);
        scratch->low[(p * n + i) * kRyserLanes + j] =
            static_cast<double>(std::popcount(low_bits & low3));
      }
    }
    const uint64_t hi = rows[i] >> kRyserLowBits;
    scratch->rows_hi[i] = hi;
    for (uint64_t m = hi; m != 0; m &= m - 1) {
      scratch->colhi[static_cast<size_t>(std::countr_zero(m))] |= 1ULL << i;
    }
  }
  plan.low = scratch->low.data();
  plan.rows_hi = scratch->rows_hi.data();
  plan.colhi = scratch->colhi.data();
  return plan;
}

/// Ryser with Gray code on the *columns included* set:
///   perm(A) = (-1)^n Σ_{∅≠S⊆[n]} (-1)^{|S|} Π_i row_sum_i(S),
/// evaluated 8 subsets at a time by the dispatched lane kernel. For
/// n >= kRyserParallelMinN the 2^n - 1 subsets split into kRyserChunks
/// ranges — a function of n alone — and each chunk's Neumaier pair lands
/// in a fixed slot; pairs fold in chunk order (sums first, then
/// compensations, mirroring the kernel's lane fold), so the value is
/// bit-identical for any thread count and any ISA tier.
double RyserImpl(const KernelVTable& kernel, const std::vector<uint64_t>& rows,
                 exec::ExecContext* ctx, RyserScratch* scratch,
                 uint64_t* skipped) {
  const size_t n = rows.size();
  if (n == 0) return 1.0;  // empty product convention
  const uint64_t limit = 1ULL << n;
  const RyserPlan plan = BuildRyserPlan(rows, scratch);

  if (n < kRyserParallelMinN) {
    double sum = 0.0;
    double comp = 0.0;
    kernel.ryser_range(plan, 1, limit, &sum, &comp, skipped);
    return sum + comp;
  }

  const size_t iters = static_cast<size_t>(limit - 1);
  const size_t grain = (iters + kRyserChunks - 1) / kRyserChunks;
  const size_t chunks = exec::NumChunks(iters, grain);
  std::vector<double> sums(chunks, 0.0);
  std::vector<double> comps(chunks, 0.0);
  std::vector<uint64_t> skipped_slots(chunks, 0);
  // The body cannot fail; the Status channel is unused here. Workers only
  // read the shared plan.
  Status st = exec::ParallelForChunks(
      ctx, iters, grain, [&](size_t begin, size_t end) {
        kernel.ryser_range(plan, 1 + begin, 1 + end, &sums[begin / grain],
                           &comps[begin / grain],
                           &skipped_slots[begin / grain]);
        return Status::OK();
      });
  (void)st;
  double fs = 0.0;
  double fc = 0.0;
  for (size_t c = 0; c < chunks; ++c) NeumaierAdd(&fs, &fc, sums[c]);
  for (size_t c = 0; c < chunks; ++c) NeumaierAdd(&fs, &fc, comps[c]);
  if (skipped != nullptr) {
    for (size_t c = 0; c < chunks; ++c) *skipped += skipped_slots[c];
  }
  return fs + fc;
}

Status ValidateRows(const std::vector<uint64_t>& rows) {
  if (rows.size() > kMaxPermanentN) {
    return Status::OutOfRange(
        "permanent limited to n <= " + std::to_string(kMaxPermanentN) +
        ", got " + std::to_string(rows.size()));
  }
  for (uint64_t row : rows) {
    if (rows.size() < 64 && (row >> rows.size()) != 0) {
      return Status::InvalidArgument("row mask wider than the matrix");
    }
  }
  return Status::OK();
}

}  // namespace

std::vector<std::pair<uint64_t, uint64_t>> RyserChunkRanges(size_t n) {
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  if (n == 0) return ranges;
  const uint64_t limit = 1ULL << n;
  if (n < kRyserParallelMinN) {
    ranges.emplace_back(1, limit);
    return ranges;
  }
  const uint64_t iters = limit - 1;
  const uint64_t grain = (iters + kRyserChunks - 1) / kRyserChunks;
  for (uint64_t b = 0; b < iters; b += grain) {
    ranges.emplace_back(1 + b, 1 + std::min(iters, b + grain));
  }
  return ranges;
}

Result<double> PermanentRyser(const std::vector<uint64_t>& rows,
                              exec::ExecContext* ctx) {
  ANONSAFE_RETURN_IF_ERROR(ValidateRows(rows));
  RyserScratch scratch;
  uint64_t skipped = 0;
  const double result =
      RyserImpl(internal::Kernels(), rows, ctx, &scratch, &skipped);
  obs::CountIf("anonsafe_ryser_skipped_products_total", skipped);
  return result;
}

Result<double> PermanentRyserForIsa(const std::vector<uint64_t>& rows,
                                    cpu::Isa isa, exec::ExecContext* ctx) {
  const KernelVTable* kernel = internal::KernelsFor(isa);
  if (kernel == nullptr) {
    return Status::InvalidArgument(
        std::string("ISA tier not available on this host/build: ") +
        cpu::IsaName(isa));
  }
  ANONSAFE_RETURN_IF_ERROR(ValidateRows(rows));
  RyserScratch scratch;
  uint64_t skipped = 0;
  const double result = RyserImpl(*kernel, rows, ctx, &scratch, &skipped);
  obs::CountIf("anonsafe_ryser_skipped_products_total", skipped);
  return result;
}

Result<std::vector<double>> PermanentBatch(
    const std::vector<std::vector<uint64_t>>& matrices,
    exec::ExecContext* ctx) {
  for (const std::vector<uint64_t>& rows : matrices) {
    ANONSAFE_RETURN_IF_ERROR(ValidateRows(rows));
  }
  const KernelVTable& kernel = internal::Kernels();
  RyserScratch scratch;
  std::vector<double> out;
  out.reserve(matrices.size());
  uint64_t skipped = 0;
  for (const std::vector<uint64_t>& rows : matrices) {
    out.push_back(RyserImpl(kernel, rows, ctx, &scratch, &skipped));
  }
  obs::CountIf("anonsafe_ryser_skipped_products_total", skipped);
  return out;
}

Result<double> CountPerfectMatchings(const BipartiteGraph& graph,
                                     exec::ExecContext* ctx) {
  ANONSAFE_SCOPED_TIMER("graph.permanent_count");
  if (graph.num_items() > kMaxPermanentN) {
    return Status::OutOfRange(
        "matching count limited to n <= " + std::to_string(kMaxPermanentN));
  }
  ANONSAFE_ASSIGN_OR_RETURN(std::vector<uint64_t> rows, graph.ToRowMasks());
  return PermanentRyser(rows, ctx);
}

Result<double> ExactExpectedCracksByPermanent(const BipartiteGraph& graph,
                                              exec::ExecContext* ctx) {
  ANONSAFE_SCOPED_TIMER("graph.permanent_exact_cracks");
  const size_t n = graph.num_items();
  if (n > kMaxPermanentN) {
    return Status::OutOfRange(
        "direct method limited to n <= " + std::to_string(kMaxPermanentN));
  }
  ANONSAFE_ASSIGN_OR_RETURN(std::vector<uint64_t> rows, graph.ToRowMasks());
  ANONSAFE_ASSIGN_OR_RETURN(double total, PermanentRyser(rows, ctx));
  if (total <= 0.0) {
    return Status::FailedPrecondition(
        "graph has no perfect matching; expected cracks undefined");
  }

  // One minor per task; per-item ratios land in fixed slots and fold
  // with a fixed-order pairwise sum, so the value is thread-count
  // independent. Each minor's own Ryser runs sequentially (the fan-out
  // lives at this level).
  ANONSAFE_ASSIGN_OR_RETURN(
      double expected,
      exec::ParallelSumChunks(
          ctx, n, /*grain=*/1,
          [&](size_t x, size_t /*end*/) -> Result<double> {
            if (!(rows[x] & (1ULL << x))) return 0.0;  // diagonal absent
            // Minor: drop row x and column x (pooled scratch: one minor
            // per item, recycled within each worker thread).
            exec::ScratchVec<uint64_t> minor;
            minor.vec().reserve(n - 1);
            const uint64_t low_mask = (1ULL << x) - 1;
            for (size_t i = 0; i < n; ++i) {
              if (i == x) continue;
              uint64_t row = rows[i];
              minor.push_back((row & low_mask) | ((row >> (x + 1)) << x));
            }
            ANONSAFE_ASSIGN_OR_RETURN(double sub, PermanentRyser(minor.vec()));
            return sub / total;
          }));
  return expected;
}

namespace {

class MatchingEnumerator {
 public:
  MatchingEnumerator(const BipartiteGraph& graph, uint64_t max_matchings)
      : graph_(graph),
        n_(graph.num_items()),
        max_matchings_(max_matchings),
        item_used_(n_, false),
        crack_tally_(n_ + 1, 0.0) {}

  Status Run() {
    // Order anonymized items by ascending degree: fail-first pruning.
    order_.resize(n_);
    for (size_t a = 0; a < n_; ++a) order_[a] = static_cast<ItemId>(a);
    std::sort(order_.begin(), order_.end(), [&](ItemId a, ItemId b) {
      return graph_.anon_degree(a) < graph_.anon_degree(b);
    });
    return Recurse(0, 0);
  }

  CrackDistribution Finish() {
    CrackDistribution out;
    out.num_matchings = num_matchings_;
    out.probability.assign(n_ + 1, 0.0);
    if (num_matchings_ > 0) {
      double total = static_cast<double>(num_matchings_);
      for (size_t c = 0; c <= n_; ++c) {
        out.probability[c] = crack_tally_[c] / total;
        out.expected += static_cast<double>(c) * out.probability[c];
      }
    }
    return out;
  }

 private:
  Status Recurse(size_t depth, size_t cracks) {
    if (depth == n_) {
      if (++num_matchings_ > max_matchings_) {
        return Status::OutOfRange(
            "more than " + std::to_string(max_matchings_) +
            " perfect matchings; enumeration aborted");
      }
      crack_tally_[cracks] += 1.0;
      return Status::OK();
    }
    ItemId a = order_[depth];
    for (ItemId x : graph_.items_of_anon(a)) {
      if (item_used_[x]) continue;
      item_used_[x] = true;
      Status st = Recurse(depth + 1, cracks + (x == a ? 1 : 0));
      item_used_[x] = false;
      ANONSAFE_RETURN_IF_ERROR(st);
    }
    return Status::OK();
  }

  const BipartiteGraph& graph_;
  const size_t n_;
  const uint64_t max_matchings_;
  std::vector<ItemId> order_;
  std::vector<bool> item_used_;
  std::vector<double> crack_tally_;
  uint64_t num_matchings_ = 0;
};

}  // namespace

Result<CrackDistribution> EnumerateCrackDistribution(
    const BipartiteGraph& graph, uint64_t max_matchings) {
  ANONSAFE_SCOPED_TIMER("graph.crack_distribution");
  MatchingEnumerator enumerator(graph, max_matchings);
  ANONSAFE_RETURN_IF_ERROR(enumerator.Run());
  return enumerator.Finish();
}

}  // namespace anonsafe
