#ifndef ANONSAFE_GRAPH_BIPARTITE_GRAPH_H_
#define ANONSAFE_GRAPH_BIPARTITE_GRAPH_H_

#include <cstddef>
#include <vector>

#include "belief/belief_function.h"
#include "data/frequency.h"
#include "data/types.h"
#include "util/result.h"

namespace anonsafe {

/// \brief The explicit consistency graph G = (J ∪ I, E) of Section 2.3.
///
/// Left vertices are anonymized items, right vertices are original items;
/// the edge (a, x) means "the hacker may map anonymized item a to item x",
/// i.e. the observed frequency of a lies inside β(x). Throughout the
/// library the *identity surrogate* convention is used: anonymized item a
/// truly corresponds to original item a, so a crack of a matching M is a
/// fixed point M(a) = a. Every risk metric is invariant under the real
/// permutation (see `Anonymizer`), which makes this WLOG.
///
/// The explicit representation materializes all edges and is meant for
/// small-to-medium n (exact methods, tests, sampling on explicit graphs).
/// The compressed `ConsistencyStructure` is the large-n path.
class BipartiteGraph {
 public:
  /// \brief Default edge budget for `Build` (64M edges ≈ 256 MB).
  static constexpr size_t kDefaultMaxEdges = 64u * 1024 * 1024;

  /// \brief Builds the graph from observed frequency groups and a belief
  /// function. Fails with InvalidArgument on domain mismatch and with
  /// OutOfRange when the edge count would exceed `max_edges`.
  static Result<BipartiteGraph> Build(const FrequencyGroups& observed,
                                      const BeliefFunction& belief,
                                      size_t max_edges = kDefaultMaxEdges);

  /// \brief Builds from explicit adjacency: `items_of_anon[a]` lists the
  /// original items that anonymized item `a` may map to. Lists are sorted
  /// and deduplicated; out-of-domain entries fail.
  static Result<BipartiteGraph> FromAdjacency(
      size_t num_items, std::vector<std::vector<ItemId>> items_of_anon);

  size_t num_items() const { return items_of_anon_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// \brief Original items adjacent to anonymized item `a`, sorted.
  const std::vector<ItemId>& items_of_anon(ItemId a) const {
    return items_of_anon_[a];
  }

  /// \brief Anonymized items adjacent to original item `x`, sorted.
  /// The size of this list is the paper's outdegree O_x.
  const std::vector<ItemId>& anons_of_item(ItemId x) const {
    return anons_of_item_[x];
  }

  size_t item_outdegree(ItemId x) const { return anons_of_item_[x].size(); }
  size_t anon_degree(ItemId a) const { return items_of_anon_[a].size(); }

  bool HasEdge(ItemId a, ItemId x) const;

  /// \brief Adjacency as row bitmasks: bit x of row a is set iff edge
  /// (a, x) exists. Only valid for n <= 64 (the exact-method regime);
  /// fails with OutOfRange otherwise.
  Result<std::vector<uint64_t>> ToRowMasks() const;

 private:
  BipartiteGraph() = default;

  std::vector<std::vector<ItemId>> items_of_anon_;
  std::vector<std::vector<ItemId>> anons_of_item_;
  size_t num_edges_ = 0;
};

}  // namespace anonsafe

#endif  // ANONSAFE_GRAPH_BIPARTITE_GRAPH_H_
