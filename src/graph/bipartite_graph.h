#ifndef ANONSAFE_GRAPH_BIPARTITE_GRAPH_H_
#define ANONSAFE_GRAPH_BIPARTITE_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "belief/belief_function.h"
#include "data/frequency.h"
#include "data/types.h"
#include "util/result.h"

namespace anonsafe {

/// \brief The explicit consistency graph G = (J ∪ I, E) of Section 2.3.
///
/// Left vertices are anonymized items, right vertices are original items;
/// the edge (a, x) means "the hacker may map anonymized item a to item x",
/// i.e. the observed frequency of a lies inside β(x). Throughout the
/// library the *identity surrogate* convention is used: anonymized item a
/// truly corresponds to original item a, so a crack of a matching M is a
/// fixed point M(a) = a. Every risk metric is invariant under the real
/// permutation (see `Anonymizer`), which makes this WLOG.
///
/// Memory layout: both adjacency sides are stored in *CSR form* — one
/// offsets array plus one flat, per-row-sorted `ItemId` array — so a
/// traversal is a linear scan over contiguous memory rather than a
/// pointer chase through `vector<vector>`. For n <= 64 the adjacency is
/// additionally mirrored as per-row bitmasks at build time, giving the
/// exact methods (permanent, edge tests) an O(1) fast path.
///
/// The explicit representation materializes all edges and is meant for
/// small-to-medium n (exact methods, tests, sampling on explicit graphs).
/// The compressed `ConsistencyStructure` is the large-n path.
class BipartiteGraph {
 public:
  /// \brief Non-owning view over one adjacency row of the flat CSR
  /// arrays; iterable and indexable like a `const vector<ItemId>&`.
  class AdjacencyRow {
   public:
    const ItemId* begin() const { return begin_; }
    const ItemId* end() const { return end_; }
    const ItemId* data() const { return begin_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
    bool empty() const { return begin_ == end_; }
    ItemId operator[](size_t i) const { return begin_[i]; }
    ItemId front() const { return *begin_; }
    ItemId back() const { return *(end_ - 1); }

   private:
    friend class BipartiteGraph;
    AdjacencyRow(const ItemId* b, const ItemId* e) : begin_(b), end_(e) {}
    const ItemId* begin_;
    const ItemId* end_;
  };

  /// \brief Default edge budget for `Build` (64M edges ≈ 256 MB).
  static constexpr size_t kDefaultMaxEdges = 64u * 1024 * 1024;

  /// \brief Builds the graph from observed frequency groups and a belief
  /// function. Fails with InvalidArgument on domain mismatch and with
  /// OutOfRange when the edge count would exceed `max_edges`.
  static Result<BipartiteGraph> Build(const FrequencyGroups& observed,
                                      const BeliefFunction& belief,
                                      size_t max_edges = kDefaultMaxEdges);

  /// \brief Builds from explicit adjacency: `items_of_anon[a]` lists the
  /// original items that anonymized item `a` may map to. Lists are sorted
  /// and deduplicated; out-of-domain entries fail.
  static Result<BipartiteGraph> FromAdjacency(
      size_t num_items, std::vector<std::vector<ItemId>> items_of_anon);

  size_t num_items() const { return num_items_; }
  size_t num_edges() const { return num_edges_; }

  /// \brief Original items adjacent to anonymized item `a`, sorted.
  AdjacencyRow items_of_anon(ItemId a) const {
    return {items_flat_.data() + anon_offsets_[a],
            items_flat_.data() + anon_offsets_[a + 1]};
  }

  /// \brief Anonymized items adjacent to original item `x`, sorted.
  /// The size of this list is the paper's outdegree O_x.
  AdjacencyRow anons_of_item(ItemId x) const {
    return {anons_flat_.data() + item_offsets_[x],
            anons_flat_.data() + item_offsets_[x + 1]};
  }

  size_t item_outdegree(ItemId x) const {
    return item_offsets_[x + 1] - item_offsets_[x];
  }
  size_t anon_degree(ItemId a) const {
    return anon_offsets_[a + 1] - anon_offsets_[a];
  }

  bool HasEdge(ItemId a, ItemId x) const;

  /// \brief True when the n <= 64 bitmask mirror is available.
  bool has_row_masks() const { return !row_masks_.empty() || num_items_ == 0; }

  /// \brief Adjacency as row bitmasks: bit x of row a is set iff edge
  /// (a, x) exists. Only valid for n <= 64 (the exact-method regime);
  /// fails with OutOfRange otherwise. O(1): masks are built once at
  /// construction.
  Result<std::vector<uint64_t>> ToRowMasks() const;

 private:
  BipartiteGraph() = default;

  /// Builds the item-side CSR (offsets + flat array, rows sorted) from a
  /// finished anon side, plus the n <= 64 bitmask mirror.
  void BuildItemSideAndMasks();

  size_t num_items_ = 0;
  size_t num_edges_ = 0;

  // CSR adjacency, anon side: row a = items_flat_[anon_offsets_[a] ..
  // anon_offsets_[a+1]), ascending.
  std::vector<size_t> anon_offsets_;
  std::vector<ItemId> items_flat_;

  // CSR adjacency, item side: row x = anons_flat_[item_offsets_[x] ..
  // item_offsets_[x+1]), ascending.
  std::vector<size_t> item_offsets_;
  std::vector<ItemId> anons_flat_;

  // Bitmask mirror, filled iff num_items_ <= 64.
  std::vector<uint64_t> row_masks_;
};

}  // namespace anonsafe

#endif  // ANONSAFE_GRAPH_BIPARTITE_GRAPH_H_
