#ifndef ANONSAFE_GRAPH_PERMANENT_H_
#define ANONSAFE_GRAPH_PERMANENT_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/result.h"

namespace anonsafe {

/// \brief Hard cap for Ryser evaluations (2^26 subsets ≈ seconds).
inline constexpr size_t kMaxPermanentN = 26;

/// \brief Permanent of a 0/1 matrix given as row bitmasks, via Ryser's
/// inclusion–exclusion with Gray-code column updates, O(2^n · n).
///
/// The permanent of the consistency graph's adjacency matrix counts its
/// perfect matchings — the size of the space of consistent crack mappings
/// (Section 4.1). Exact but exponential: the paper cites Valiant's
/// #P-completeness and the O(n^22) JSV approximation to motivate the
/// O-estimate; this implementation is the small-n ground truth oracle.
/// Fails with OutOfRange for n > kMaxPermanentN.
Result<double> PermanentRyser(const std::vector<uint64_t>& rows);

/// \brief Number of perfect matchings of the graph (permanent of A_G).
Result<double> CountPerfectMatchings(const BipartiteGraph& graph);

/// \brief Exact expected number of cracks by the direct method of
/// Section 4.1: E[X] = Σ_x  perm(A with row x' and column x removed) /
/// perm(A), summed over the diagonal edges (x', x) present in G.
///
/// Fails with OutOfRange for n > kMaxPermanentN and FailedPrecondition
/// when the graph has no perfect matching (permanent 0).
Result<double> ExactExpectedCracksByPermanent(const BipartiteGraph& graph);

/// \brief Exact crack distribution by exhaustive enumeration of all
/// perfect matchings (backtracking). `distribution[c]` is P(X = c).
struct CrackDistribution {
  std::vector<double> probability;  ///< index = crack count, size n+1
  double expected = 0.0;
  uint64_t num_matchings = 0;
};

/// \brief Enumerates every perfect matching of `graph`, tallying crack
/// counts (fixed points). Aborts with OutOfRange once more than
/// `max_matchings` matchings are seen — use only on tiny graphs.
Result<CrackDistribution> EnumerateCrackDistribution(
    const BipartiteGraph& graph, uint64_t max_matchings = 20'000'000);

}  // namespace anonsafe

#endif  // ANONSAFE_GRAPH_PERMANENT_H_
