#ifndef ANONSAFE_GRAPH_PERMANENT_H_
#define ANONSAFE_GRAPH_PERMANENT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/cpu.h"
#include "util/result.h"

namespace anonsafe {
namespace exec {
class ExecContext;
}  // namespace exec

/// \brief Hard cap for Ryser evaluations (2^26 subsets ≈ seconds).
inline constexpr size_t kMaxPermanentN = 26;

/// \brief Matrices of at least this order split the Gray-code iteration
/// space into kRyserChunks independent ranges (each chunk reseeds its
/// per-row column sums from its start subset). Smaller matrices keep the
/// single-pass evaluation. The split is a function of n only — never of
/// the thread count — so results are reproducible either way.
inline constexpr size_t kRyserParallelMinN = 14;
inline constexpr size_t kRyserChunks = 64;

/// \brief Permanent of a 0/1 matrix given as row bitmasks, via Ryser's
/// inclusion–exclusion with Gray-code column updates, O(2^n · n).
///
/// The permanent of the consistency graph's adjacency matrix counts its
/// perfect matchings — the size of the space of consistent crack mappings
/// (Section 4.1). Exact but exponential: the paper cites Valiant's
/// #P-completeness and the O(n^22) JSV approximation to motivate the
/// O-estimate; this implementation is the small-n ground truth oracle.
/// Fails with OutOfRange for n > kMaxPermanentN.
///
/// With a non-null `ctx` and n >= kRyserParallelMinN the subset chunks
/// evaluate on the pool; partial sums land in per-chunk slots and are
/// folded in chunk order, so the value is bit-identical for any thread
/// count.
Result<double> PermanentRyser(const std::vector<uint64_t>& rows,
                              exec::ExecContext* ctx = nullptr);

/// \brief PermanentRyser evaluated with a specific SIMD tier instead of
/// the runtime-dispatched one. Fails with InvalidArgument when the tier
/// is unsupported by the CPU or was not compiled in. All tiers return
/// bit-identical values (differential-test / bench hook).
Result<double> PermanentRyserForIsa(const std::vector<uint64_t>& rows,
                                    cpu::Isa isa,
                                    exec::ExecContext* ctx = nullptr);

/// \brief Permanents of a batch of small matrices, evaluated with one
/// kernel resolution and one shared scratch plan across the whole batch.
/// Each entry is bit-identical to PermanentRyser on that matrix alone.
/// The planner's per-block minor sweep is the intended caller: a block of
/// order k evaluates 1 + k matrices back to back.
Result<std::vector<double>> PermanentBatch(
    const std::vector<std::vector<uint64_t>>& matrices,
    exec::ExecContext* ctx = nullptr);

/// \brief The chunk decomposition PermanentRyser uses for an order-n
/// matrix: half-open subset ranges within [1, 2^n), a function of n only.
/// Exposed so differential tests can reproduce the exact fold order.
std::vector<std::pair<uint64_t, uint64_t>> RyserChunkRanges(size_t n);

/// \brief Number of perfect matchings of the graph (permanent of A_G).
Result<double> CountPerfectMatchings(const BipartiteGraph& graph,
                                     exec::ExecContext* ctx = nullptr);

/// \brief Exact expected number of cracks by the direct method of
/// Section 4.1: E[X] = Σ_x  perm(A with row x' and column x removed) /
/// perm(A), summed over the diagonal edges (x', x) present in G.
///
/// Fails with OutOfRange for n > kMaxPermanentN and FailedPrecondition
/// when the graph has no perfect matching (permanent 0). With a non-null
/// `ctx` the per-item minors evaluate on the pool (one minor per task;
/// each minor's own Ryser stays sequential).
Result<double> ExactExpectedCracksByPermanent(
    const BipartiteGraph& graph, exec::ExecContext* ctx = nullptr);

/// \brief Exact crack distribution by exhaustive enumeration of all
/// perfect matchings (backtracking). `distribution[c]` is P(X = c).
struct CrackDistribution {
  std::vector<double> probability;  ///< index = crack count, size n+1
  double expected = 0.0;
  uint64_t num_matchings = 0;
};

/// \brief Enumerates every perfect matching of `graph`, tallying crack
/// counts (fixed points). Aborts with OutOfRange once more than
/// `max_matchings` matchings are seen — use only on tiny graphs.
Result<CrackDistribution> EnumerateCrackDistribution(
    const BipartiteGraph& graph, uint64_t max_matchings = 20'000'000);

}  // namespace anonsafe

#endif  // ANONSAFE_GRAPH_PERMANENT_H_
