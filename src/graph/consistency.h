#ifndef ANONSAFE_GRAPH_CONSISTENCY_H_
#define ANONSAFE_GRAPH_CONSISTENCY_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "belief/belief_function.h"
#include "data/frequency.h"
#include "data/types.h"
#include "util/result.h"

namespace anonsafe {
namespace exec {
class ExecContext;
}  // namespace exec

/// \brief Compressed representation of the consistency graph.
///
/// Because the observed frequency groups are sorted, the candidate set of
/// every item is a *contiguous range of groups*; the structure stores one
/// `(lo, hi)` range per item plus per-group remaining sizes, so outdegrees
/// are O(log k) range sums over a Fenwick tree and the whole object is
/// O(n + k) space regardless of how dense the graph is. This is the
/// `O(|D| + n log n)` path promised by Figure 5 and the only
/// representation that scales to RETAIL-sized domains.
///
/// The structure also implements the degree-1 propagation of Figure 7:
/// while some vertex on either side has a single remaining candidate, the
/// pair is forced, both vertices leave the graph, and degrees shrink.
/// Under a compliant belief every forced pair is a true crack (the true
/// counterpart edge always exists, so the unique candidate is it).
class ConsistencyStructure {
 public:
  /// \brief Builds ranges and degree tables. Fails on domain mismatch.
  ///
  /// With a non-null `ctx` the interval-stabbing phase (one binary search
  /// per item) fans out across the pool; the Fenwick updates are then
  /// applied sequentially in item order, so the structure is bit-identical
  /// for any thread count.
  static Result<ConsistencyStructure> Build(const FrequencyGroups& observed,
                                            const BeliefFunction& belief,
                                            exec::ExecContext* ctx = nullptr);

  /// \brief Builds from precomputed stab ranges (one per item), skipping
  /// the per-item binary searches entirely. `ranges[x]` must be the
  /// `observed.Stab(...)` result for item x's belief interval — the α
  /// bisection caches those per item once and replays them across probes.
  /// Bit-identical to `Build` fed the equivalent intervals.
  static Result<ConsistencyStructure> BuildFromRanges(
      const FrequencyGroups& observed,
      const std::vector<ItemStabRange>& ranges);

  size_t num_items() const { return item_state_.size(); }
  size_t num_groups() const { return group_remaining_.size(); }

  /// \brief Item never had a candidate (its interval stabs no group).
  /// Such items can never be cracked by a consistent mapping — but they
  /// also certify that no *perfect* consistent matching exists.
  bool item_dead(ItemId x) const {
    return item_state_[x] == ItemState::kDead;
  }

  /// \brief Item was matched during propagation (certain crack under a
  /// compliant belief).
  bool item_forced(ItemId x) const {
    return item_state_[x] == ItemState::kForced;
  }

  /// \brief Item still has >= 1 candidate and is unmatched.
  bool item_alive(ItemId x) const {
    return item_state_[x] == ItemState::kAlive;
  }

  /// \brief Candidate group range of an alive item in the *current*
  /// (possibly propagated) structure. Only meaningful for alive items.
  std::pair<size_t, size_t> item_range(ItemId x) const {
    return {item_lo_[x], item_hi_[x]};
  }

  /// \brief Current outdegree O_x: forced items count 1, dead items 0,
  /// alive items the number of remaining candidate anonymized items.
  size_t outdegree(ItemId x) const;

  /// \brief Anonymized items of group `g` not yet consumed by forcing.
  size_t group_remaining(size_t g) const { return group_remaining_[g]; }

  /// \brief Outcome of a propagation run.
  struct PropagationStats {
    size_t forced_pairs = 0;   ///< vertex pairs removed by forcing
    size_t passes = 0;         ///< fixpoint iterations
    bool contradiction = false;///< no perfect matching can exist
  };

  /// \brief Runs degree-1 propagation to fixpoint (Figure 7).
  ///
  /// Item side: an alive item with exactly one remaining candidate is
  /// matched to it; one with zero becomes dead. Anonymized side: a group
  /// with one remaining anonymized item covered by exactly one alive item
  /// forces that pair. The procedure is best-effort: under a compliant
  /// belief it is exactly Figure 7 (and every forced pair is a true
  /// crack); under non-compliant beliefs, where no perfect matching may
  /// exist, inconsistencies (Hall violations, emptied items) set
  /// `contradiction` and the affected items go dead, but propagation
  /// continues — modeling a hacker who cannot tell the belief is wrong.
  /// Idempotent.
  PropagationStats PropagateDegreeOne();

  /// \brief True when some item started with no candidates or propagation
  /// found a contradiction; no perfect consistent matching exists.
  bool contradiction() const { return contradiction_; }

  /// \brief Number of items with no candidates at build time.
  size_t num_dead_items() const { return num_dead_; }

  /// \brief Belief groups: maximal sets of items with identical candidate
  /// ranges (the grouping of Figure 3(b)), computed on the *initial*
  /// ranges. Dead items form their own group at the end if present.
  std::vector<std::vector<ItemId>> BeliefGroups() const;

 private:
  enum class ItemState : uint8_t { kAlive, kForced, kDead };

  ConsistencyStructure() = default;

  /// Shared tail of `Build`/`BuildFromRanges`: seeds the Fenwick trees
  /// from already-computed per-item group ranges (sequential, item order).
  static ConsistencyStructure InitFromRanges(const FrequencyGroups& observed,
                                             const ItemStabRange* ranges,
                                             size_t n);

  size_t RangeRemaining(size_t lo, size_t hi) const;
  size_t CoverCount(size_t g) const;
  void AddCover(size_t lo, size_t hi, int delta);

  /// Finds the unique non-empty group in [lo, hi]; requires
  /// RangeRemaining(lo, hi) to be the size of that group.
  size_t FindFirstNonEmptyGroup(size_t lo, size_t hi) const;

  std::vector<ItemState> item_state_;
  std::vector<size_t> item_lo_, item_hi_;   // initial ranges (for alive items
                                            // the current range too; groups
                                            // inside may be empty)
  std::vector<size_t> group_remaining_;
  // Fenwick tree over remaining group sizes (point update, prefix sum).
  std::vector<int64_t> size_tree_;
  // Fenwick tree over cover deltas (range update, point query): number of
  // alive items whose range covers a group.
  std::vector<int64_t> cover_tree_;
  size_t num_dead_ = 0;
  bool contradiction_ = false;
  bool propagated_ = false;
};

}  // namespace anonsafe

#endif  // ANONSAFE_GRAPH_CONSISTENCY_H_
