#ifndef ANONSAFE_GRAPH_SIMD_KERNELS_H_
#define ANONSAFE_GRAPH_SIMD_KERNELS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "data/types.h"
#include "util/cpu.h"

namespace anonsafe {
namespace internal {

/// \name Runtime-dispatched SIMD kernels
///
/// Three translation units (kernel_scalar.cc / kernel_avx2.cc /
/// kernel_avx512.cc) compile the *same* kernel bodies — the Ryser lane
/// kernel is one shared template over an 8-lane vector trait — with
/// per-TU instruction-set flags. `Kernels()` resolves the vtable once at
/// first use from `cpu::ActiveIsa()` (honouring ANONSAFE_FORCE_ISA) and
/// falls down the tier ladder when a tier was not compiled in; the
/// resolution is a magic static, so concurrent first use is race-free.
///
/// Bitwise contract: every kernel in a vtable returns results that are
/// bit-identical to every other tier's, because the floating-point DAG
/// is fixed by the shared template (see docs/PERFORMANCE.md, "SIMD
/// dispatch"). The kernel TUs are compiled with -ffp-contract=off so FMA
/// fusion cannot perturb the DAG under -march=native builds.
/// @{

/// Ryser evaluates kRyserLanes = 8 Gray-code subsets per step. Subset
/// index `iter = 8t + j` decomposes as
///   gray(iter) = (gray(t) << 3) | (gray3(j) ^ ((t & 1) << 2)),
/// so the three low columns contribute a per-lane table (`low`) while
/// the high columns contribute a per-row scalar updated once per block.
inline constexpr size_t kRyserLanes = 8;
inline constexpr size_t kRyserLowBits = 3;

/// Row capacity of the lane kernel's fixed buffers; permanent.cc
/// static_asserts this equals kMaxPermanentN.
inline constexpr size_t kMaxRyserRows = 26;

/// Per-lane sign masks (±0.0 doubles XORed onto products), indexed by
/// [t & 1][block_parity][lane] where block_parity = (n + popcount(gray(t)))
/// & 1. Matrix-independent; defined in simd_kernels.cc, 64-byte aligned.
extern const double kRyserSignTable[2][2][kRyserLanes];

/// One matrix prepared for the lane kernel. All pointers reference
/// caller-owned scratch that outlives the kernel call; `low` must be
/// 64-byte aligned (exec::AlignedScratchVec).
struct RyserPlan {
  size_t n = 0;
  /// Lane low-sum table, [2][n][kRyserLanes]:
  /// low[(p*n + i)*8 + j] = popcount(rows[i] & 0b111 & low3(j, p)).
  const double* low = nullptr;
  /// rows[i] >> kRyserLowBits, n entries (reseeds the per-row high sums
  /// at a chunk boundary).
  const uint64_t* rows_hi = nullptr;
  /// Transposed high columns: colhi[b] has bit i set iff row i contains
  /// column kRyserLowBits + b. max(0, n - kRyserLowBits) entries.
  const uint64_t* colhi = nullptr;
  /// Bit i set iff (rows[i] & 0b111) == 0: such a row's block is dead
  /// whenever its high sum is zero, and all 8 lane products are +0.0.
  uint64_t low_zero_rows = 0;
};

/// The per-ISA entry points. `ryser_range` evaluates subsets
/// [begin, end) of 1..2^n-1 and returns the range's signed term sum as a
/// Neumaier pair (*sum, *comp); the caller folds pairs across chunks
/// with NeumaierAdd in chunk order. `*zero_products` accumulates the
/// number of in-range subsets whose product was exactly zero (the
/// anonsafe_ryser_skipped_products_total metric) — identical across
/// tiers by construction.
struct KernelVTable {
  cpu::Isa isa = cpu::Isa::kScalar;
  const char* name = "scalar";
  void (*ryser_range)(const RyserPlan& plan, uint64_t begin, uint64_t end,
                      double* sum, double* comp, uint64_t* zero_products) =
      nullptr;
  /// # of i in [0, n) with v[i] == i and (interest == nullptr ||
  /// interest[i] != 0) — the sampler's crack-frequency probe.
  size_t (*count_fixed_points)(const ItemId* v, const uint8_t* interest,
                               size_t n) = nullptr;
  /// # of i in [0, n) with has_range[i] != 0 && lo[i] <= group[i] <=
  /// hi[i] — the sampler's identity-consistency probe.
  size_t (*count_consistent_identity)(const size_t* group, const size_t* lo,
                                      const size_t* hi,
                                      const uint8_t* has_range,
                                      size_t n) = nullptr;
};

/// Vtable for the active tier (ActiveIsa clamped to what was compiled
/// in). Cached after the first call.
const KernelVTable& Kernels();

/// Vtable for a specific tier, or nullptr when that tier is not
/// supported by the CPU or was not compiled in (test / bench hook).
const KernelVTable* KernelsFor(cpu::Isa isa);

/// The Neumaier compensated step shared by the kernel fold and the
/// chunk fold in permanent.cc: s + y with the rounding error captured in
/// c. One fixed expression so every fold site has the same DAG.
inline void NeumaierAdd(double* s, double* c, double y) {
  const double t = *s + y;
  *c += std::fabs(*s) >= std::fabs(y) ? (*s - t) + y : (y - t) + *s;
  *s = t;
}

/// Per-TU vtable accessors (defined in the kernel TUs; nullptr when the
/// TU was compiled without its instruction-set flag).
const KernelVTable* ScalarKernels();
const KernelVTable* Avx2Kernels();
const KernelVTable* Avx512Kernels();

/// @}

}  // namespace internal
}  // namespace anonsafe

#endif  // ANONSAFE_GRAPH_SIMD_KERNELS_H_
