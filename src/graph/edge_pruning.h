#ifndef ANONSAFE_GRAPH_EDGE_PRUNING_H_
#define ANONSAFE_GRAPH_EDGE_PRUNING_H_

#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/hopcroft_karp.h"
#include "util/result.h"

namespace anonsafe {

/// \brief Result of restricting a consistency graph to its *matching
/// cover* — the edges that participate in at least one perfect matching.
///
/// This is the full generalization of the paper's degree-1 propagation
/// (Fig. 7): Section 5.2 observes that in Figure 6(b) the edge (2', 3) is
/// "irrelevant" — no perfect matching uses it — yet the O-estimate keeps
/// counting it. Degree-1 propagation only catches the special case where
/// a vertex has a single candidate. The complete criterion is classical
/// (Dulmage–Mendelsohn): fix any perfect matching M and orient the graph
/// (matched edges item→anon, unmatched anon→item); an edge is used by
/// some perfect matching iff it is in M or its endpoints lie in the same
/// strongly connected component. Pruning to that edge set yields the
/// *refined* outdegrees and, through them, the refined O-estimate
/// (`ComputeRefinedOEstimate` in core/), which is exact whenever every
/// component is complete bipartite — e.g. it returns the exact 2 for
/// Figure 6(b) where the plain O-estimate cannot.
struct MatchingCover {
  /// The pruned graph: same vertices, only matching-usable edges.
  BipartiteGraph graph{*BipartiteGraph::FromAdjacency(0, {})};

  /// Component id per anonymized item / per item. Two vertices share an
  /// id iff they lie in the same SCC of the alternating-structure
  /// digraph. Components are numbered contiguously from 0.
  std::vector<size_t> component_of_anon;
  std::vector<size_t> component_of_item;
  size_t num_components = 0;

  /// Edges removed from the input graph.
  size_t pruned_edges = 0;
};

/// \brief Computes the matching cover of `graph`.
///
/// Fails with FailedPrecondition when the graph admits no perfect
/// matching (every edge would be vacuously unusable; the α-compliant
/// analyses handle that case separately).
Result<MatchingCover> ComputeMatchingCover(const BipartiteGraph& graph);

/// \brief Set-level disclosure (the paper's Section 8.2 "ongoing work"):
/// even when individual items are protected, a *set* of items can be
/// identified with certainty — in Figure 6(b) the itemset {1', 2'}
/// indisputably maps to {1, 2}.
///
/// The certainly-identified sets are exactly the matching-cover
/// components: every perfect matching maps a component's anonymized items
/// onto precisely its original items. Components of size 1 are individual
/// certain cracks (what Fig. 7 propagation finds); small components leak
/// almost as much.
struct SetDisclosure {
  /// Original items of each certainly-identified set, ascending by id;
  /// sets ordered by their smallest member.
  std::vector<std::vector<ItemId>> identified_sets;

  /// Number of sets of size 1 (certain individual cracks).
  size_t certain_cracks = 0;

  /// Number of sets of size <= threshold given to the analysis.
  size_t small_sets = 0;

  /// Items living in sets of size <= threshold; the owner should treat
  /// these as effectively disclosed.
  size_t items_in_small_sets = 0;
};

/// \brief Runs set-level disclosure analysis on a consistency graph.
/// `small_set_threshold` defines which set sizes count as "effectively
/// disclosed" (the paper's example has size 2).
Result<SetDisclosure> AnalyzeSetDisclosure(const BipartiteGraph& graph,
                                           size_t small_set_threshold = 2);

}  // namespace anonsafe

#endif  // ANONSAFE_GRAPH_EDGE_PRUNING_H_
