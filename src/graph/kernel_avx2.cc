#include "graph/simd_kernels.h"

// AVX2 tier: two 256-bit halves per 8-lane vector. Compiled with -mavx2
// -ffp-contract=off when the compiler supports it; otherwise this TU
// degrades to a nullptr accessor and dispatch falls back a tier.

#ifdef __AVX2__

#include <immintrin.h>

#include <bit>
#include <cstdint>
#include <cstring>

#include "graph/ryser_kernel_body.h"

namespace anonsafe {
namespace internal {
namespace {

struct V8Avx2 {
  __m256d lo, hi;

  static V8Avx2 Zero() {
    return {_mm256_setzero_pd(), _mm256_setzero_pd()};
  }
  static V8Avx2 Load(const double* p) {
    return {_mm256_load_pd(p), _mm256_load_pd(p + 4)};
  }
  static V8Avx2 Broadcast(double x) {
    const __m256d v = _mm256_set1_pd(x);
    return {v, v};
  }
  static V8Avx2 Add(V8Avx2 a, V8Avx2 b) {
    return {_mm256_add_pd(a.lo, b.lo), _mm256_add_pd(a.hi, b.hi)};
  }
  static V8Avx2 Sub(V8Avx2 a, V8Avx2 b) {
    return {_mm256_sub_pd(a.lo, b.lo), _mm256_sub_pd(a.hi, b.hi)};
  }
  static V8Avx2 Mul(V8Avx2 a, V8Avx2 b) {
    return {_mm256_mul_pd(a.lo, b.lo), _mm256_mul_pd(a.hi, b.hi)};
  }
  static V8Avx2 XorSigns(V8Avx2 a, const double* signs) {
    return {_mm256_xor_pd(a.lo, _mm256_load_pd(signs)),
            _mm256_xor_pd(a.hi, _mm256_load_pd(signs + 4))};
  }
  static V8Avx2 MaskKeep(V8Avx2 a, unsigned m) {
    // Expand bits j..j+3 of m to all-ones lanes via broadcast + bit test.
    const __m256i bits_lo = _mm256_setr_epi64x(1, 2, 4, 8);
    const __m256i bits_hi = _mm256_setr_epi64x(16, 32, 64, 128);
    const __m256i mm = _mm256_set1_epi64x(static_cast<long long>(m));
    const __m256d keep_lo = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
        _mm256_and_si256(mm, bits_lo), bits_lo));
    const __m256d keep_hi = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
        _mm256_and_si256(mm, bits_hi), bits_hi));
    return {_mm256_and_pd(a.lo, keep_lo), _mm256_and_pd(a.hi, keep_hi)};
  }
  static unsigned ZeroMask(V8Avx2 a) {
    const __m256d zero = _mm256_setzero_pd();
    const unsigned lo = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(a.lo, zero, _CMP_EQ_OQ)));
    const unsigned hi = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(a.hi, zero, _CMP_EQ_OQ)));
    return lo | (hi << 4);
  }
  static V8Avx2 NeumaierE(V8Avx2 s, V8Avx2 y, V8Avx2 t1) {
    const __m256d abs_mask =
        _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
    V8Avx2 r;
    {
      const __m256d ge = _mm256_cmp_pd(_mm256_and_pd(s.lo, abs_mask),
                                       _mm256_and_pd(y.lo, abs_mask),
                                       _CMP_GE_OQ);
      const __m256d a =
          _mm256_add_pd(_mm256_sub_pd(s.lo, t1.lo), y.lo);
      const __m256d b =
          _mm256_add_pd(_mm256_sub_pd(y.lo, t1.lo), s.lo);
      r.lo = _mm256_blendv_pd(b, a, ge);
    }
    {
      const __m256d ge = _mm256_cmp_pd(_mm256_and_pd(s.hi, abs_mask),
                                       _mm256_and_pd(y.hi, abs_mask),
                                       _CMP_GE_OQ);
      const __m256d a =
          _mm256_add_pd(_mm256_sub_pd(s.hi, t1.hi), y.hi);
      const __m256d b =
          _mm256_add_pd(_mm256_sub_pd(y.hi, t1.hi), s.hi);
      r.hi = _mm256_blendv_pd(b, a, ge);
    }
    return r;
  }
  static void Store(V8Avx2 a, double* p) {
    _mm256_storeu_pd(p, a.lo);
    _mm256_storeu_pd(p + 4, a.hi);
  }
};

size_t CountFixedPointsAvx2(const ItemId* v, const uint8_t* interest,
                            size_t n) {
  size_t count = 0;
  __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i step = _mm256_set1_epi32(8);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i eq = _mm256_cmpeq_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)), iota);
    if (interest != nullptr) {
      const __m128i bytes = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(interest + i));
      const __m256i wanted = _mm256_cmpgt_epi32(
          _mm256_cvtepu8_epi32(bytes), _mm256_setzero_si256());
      eq = _mm256_and_si256(eq, wanted);
    }
    count += static_cast<size_t>(std::popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)))));
    iota = _mm256_add_epi32(iota, step);
  }
  for (; i < n; ++i) {
    if (v[i] == static_cast<ItemId>(i) &&
        (interest == nullptr || interest[i] != 0)) {
      ++count;
    }
  }
  return count;
}

size_t CountConsistentIdentityAvx2(const size_t* group, const size_t* lo,
                                   const size_t* hi,
                                   const uint8_t* has_range, size_t n) {
  static_assert(sizeof(size_t) == 8, "64-bit lanes assumed");
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i g = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(group + i));
    const __m256i l = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(lo + i));
    const __m256i h = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hi + i));
    // Group/range indices are tiny (< 2^63), so signed compares suffice.
    const __m256i below = _mm256_cmpgt_epi64(l, g);   // lo > g -> out
    const __m256i above = _mm256_cmpgt_epi64(g, h);   // g > hi -> out
    uint32_t bytes = 0;
    std::memcpy(&bytes, has_range + i, 4);
    const __m256i wanted = _mm256_cmpgt_epi64(
        _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(bytes))),
        _mm256_setzero_si256());
    const __m256i ok = _mm256_andnot_si256(
        below, _mm256_andnot_si256(above, wanted));
    count += static_cast<size_t>(std::popcount(static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(ok)))));
  }
  for (; i < n; ++i) {
    if (has_range[i] != 0 && lo[i] <= group[i] && group[i] <= hi[i]) {
      ++count;
    }
  }
  return count;
}

}  // namespace

const KernelVTable* Avx2Kernels() {
  static const KernelVTable vtable = {
      cpu::Isa::kAvx2,
      "avx2",
      &RyserRangeLanes<V8Avx2>,
      &CountFixedPointsAvx2,
      &CountConsistentIdentityAvx2,
  };
  return &vtable;
}

}  // namespace internal
}  // namespace anonsafe

#else  // !__AVX2__

namespace anonsafe {
namespace internal {

const KernelVTable* Avx2Kernels() { return nullptr; }

}  // namespace internal
}  // namespace anonsafe

#endif  // __AVX2__
