#include "graph/hopcroft_karp.h"

#include <limits>
#include <queue>

#include "obs/scoped_timer.h"

namespace anonsafe {
namespace {

constexpr size_t kInf = std::numeric_limits<size_t>::max();

class HkSolver {
 public:
  explicit HkSolver(const BipartiteGraph& graph)
      : graph_(graph),
        n_(graph.num_items()),
        match_anon_(n_, kInvalidItem),
        match_item_(n_, kInvalidItem),
        dist_(n_, kInf) {}

  Matching Solve() {
    size_t matched = 0;
    while (Bfs()) {
      for (ItemId a = 0; a < n_; ++a) {
        if (match_anon_[a] == kInvalidItem && Dfs(a)) ++matched;
      }
    }
    Matching m;
    m.item_of_anon = std::move(match_anon_);
    m.anon_of_item = std::move(match_item_);
    m.size = matched;
    return m;
  }

 private:
  /// Layers free anonymized vertices; returns true if an augmenting path
  /// exists.
  bool Bfs() {
    std::queue<ItemId> q;
    for (ItemId a = 0; a < n_; ++a) {
      if (match_anon_[a] == kInvalidItem) {
        dist_[a] = 0;
        q.push(a);
      } else {
        dist_[a] = kInf;
      }
    }
    bool found_free_item = false;
    while (!q.empty()) {
      ItemId a = q.front();
      q.pop();
      for (ItemId x : graph_.items_of_anon(a)) {
        ItemId next = match_item_[x];
        if (next == kInvalidItem) {
          found_free_item = true;
        } else if (dist_[next] == kInf) {
          dist_[next] = dist_[a] + 1;
          q.push(next);
        }
      }
    }
    return found_free_item;
  }

  bool Dfs(ItemId a) {
    for (ItemId x : graph_.items_of_anon(a)) {
      ItemId next = match_item_[x];
      if (next == kInvalidItem ||
          (dist_[next] == dist_[a] + 1 && Dfs(next))) {
        match_anon_[a] = x;
        match_item_[x] = a;
        return true;
      }
    }
    dist_[a] = kInf;
    return false;
  }

  const BipartiteGraph& graph_;
  size_t n_;
  std::vector<ItemId> match_anon_;
  std::vector<ItemId> match_item_;
  std::vector<size_t> dist_;
};

}  // namespace

Matching HopcroftKarp(const BipartiteGraph& graph) {
  ANONSAFE_SCOPED_TIMER("graph.hopcroft_karp");
  return HkSolver(graph).Solve();
}

bool IsValidMatching(const BipartiteGraph& graph, const Matching& m) {
  const size_t n = graph.num_items();
  if (m.item_of_anon.size() != n || m.anon_of_item.size() != n) return false;
  size_t count = 0;
  for (ItemId a = 0; a < n; ++a) {
    ItemId x = m.item_of_anon[a];
    if (x == kInvalidItem) continue;
    if (x >= n || m.anon_of_item[x] != a) return false;
    if (!graph.HasEdge(a, x)) return false;
    ++count;
  }
  if (count != m.size) return false;
  for (ItemId x = 0; x < n; ++x) {
    ItemId a = m.anon_of_item[x];
    if (a == kInvalidItem) continue;
    if (a >= n || m.item_of_anon[a] != x) return false;
  }
  return true;
}

}  // namespace anonsafe
