#ifndef ANONSAFE_GRAPH_MATCHING_SAMPLER_H_
#define ANONSAFE_GRAPH_MATCHING_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "belief/belief_function.h"
#include "data/frequency.h"
#include "data/types.h"
#include "exec/exec.h"
#include "util/result.h"

namespace anonsafe {

/// \brief Safety ceiling for the scaled burn-in: `burn_in_scale * n` is a
/// double and may overflow (or be NaN when options were derived from bad
/// arithmetic); casting such a value to `size_t` is undefined behavior.
/// ~10^12 sweeps is far beyond any practical run, so the clamp never
/// changes a sane configuration.
inline constexpr size_t kMaxBurnInSweeps = size_t{1} << 40;

/// \brief Knobs of the MCMC matching sampler (Section 7.1 of the paper).
///
/// One *sweep* draws a random permutation P of the anonymized items and
/// attempts one move per item — the paper's "iteration". The paper used
/// 100,000 scramble iterations, thinning of 10,000 and 250 samples per
/// seed on a 2005-era machine; the defaults here are scaled to keep bench
/// runs interactive while preserving the estimator's accuracy (tests
/// validate it against exact permanents). All values are overridable.
struct SamplerOptions {
  size_t burn_in_sweeps = 300;    ///< minimum scramble sweeps before the
                                  ///< first sample of a seed
  double burn_in_scale = 2.0;     ///< additional per-item scaling: the
                                  ///< effective burn-in is
                                  ///< max(burn_in_sweeps, burn_in_scale*n).
                                  ///< Large domains with tight intervals mix
                                  ///< by slow diffusion along coupled group
                                  ///< chains and need burn-in proportional
                                  ///< to n (set 0 to disable scaling).
  size_t thinning_sweeps = 10;    ///< sweeps between successive samples
  size_t samples_per_seed = 500;  ///< samples per independent chain
                                  ///< (must be positive)
  size_t num_samples = 500;       ///< total samples to draw
  double cycle_move_fraction = 0.25;  ///< fraction of 3-rotation moves,
                                      ///< in [0, 1]

  /// Shared execution knobs. The sampler's master seed defaults to 1;
  /// each chain's stream is split off it, so sample c is the same value
  /// whatever the thread count.
  exec::ExecOptions exec{.seed = 1};

  /// \brief Burn-in actually applied for a domain of `n` items:
  /// max(burn_in_sweeps, burn_in_scale * n), clamped to
  /// `kMaxBurnInSweeps`; a NaN product falls back to `burn_in_sweeps`.
  size_t EffectiveBurnIn(size_t n) const;
};

/// \brief MCMC sampler over consistent matchings of the consistency graph.
///
/// The state is a matching; moves are symmetric (pair swaps, 3-cycle
/// rotations, and — when the matching is not perfect — single-edge
/// transfers), each accepted iff the result stays consistent, so the
/// stationary distribution is uniform over the reachable matchings.
/// Consistency checks are O(1) via the contiguous group-range
/// representation, making a sweep O(n).
///
/// Seeding: the identity matching (every item cracked) when it is
/// consistent — exactly the paper's procedure — otherwise a maximum
/// matching found by the exchange-greedy algorithm for interval bipartite
/// graphs (non-compliant beliefs need not admit a perfect matching; the
/// sampler then explores maximum-cardinality matchings of the seed's
/// matched set, a documented approximation).
class MatchingSampler {
 public:
  /// \brief Builds ranges and the seed matching. Fails on domain
  /// mismatch, an empty domain, or malformed options
  /// (`samples_per_seed == 0`, `cycle_move_fraction` outside [0, 1],
  /// negative `burn_in_scale`).
  static Result<MatchingSampler> Create(const FrequencyGroups& observed,
                                        const BeliefFunction& belief,
                                        const SamplerOptions& options);

  size_t num_items() const { return group_of_anon_.size(); }

  /// \brief True when the seed matching matches every anonymized item.
  bool seed_is_perfect() const { return seed_size_ == num_items(); }
  size_t seed_size() const { return seed_size_; }

  /// \brief Draws `options.num_samples` matchings and returns the crack
  /// count (number of fixed points) of each.
  ///
  /// The draw is organised as ceil(num_samples / samples_per_seed)
  /// independent chains; chain c runs with the RNG stream
  /// SplitSeed(exec.seed, c) and writes its samples into fixed
  /// output slots. With a non-null `ctx` the chains run on the pool —
  /// the returned vector is bit-identical for any thread count.
  std::vector<size_t> SampleCrackCounts(
      exec::ExecContext* ctx = nullptr) const;

  /// \brief Same, counting only cracks of items with `interest[x]` true
  /// (the Lemma 2/4 "items of interest" analyses).
  Result<std::vector<size_t>> SampleCrackCounts(
      const std::vector<bool>& interest,
      exec::ExecContext* ctx = nullptr) const;

  /// \brief Validates that the current state is a consistent matching
  /// (test hook). Sampling itself runs on private per-chain copies and
  /// never perturbs this state.
  bool CurrentStateConsistent() const;

 private:
  /// Mutable state of one independent MCMC chain; defined in the .cc so
  /// the scratch-pool machinery stays out of the public headers. The
  /// buffers come from the thread-local scratch pool: a worker running
  /// many chains recycles one trio of allocations instead of three
  /// mallocs per chain.
  struct ChainState;

  MatchingSampler() = default;

  void ReseedState();
  void InitChain(ChainState* chain, uint64_t chain_seed) const;
  void SweepChain(ChainState* chain) const;
  bool Consistent(ItemId anon, ItemId item) const {
    return item_has_range_[item] != 0 &&
           item_lo_[item] <= group_of_anon_[anon] &&
           group_of_anon_[anon] <= item_hi_[item];
  }
  /// Crack-frequency probe over a chain's current matching; dispatched to
  /// the SIMD fixed-point kernel. `interest` is an optional byte mask
  /// (nullptr = all items).
  size_t CountCracksOf(const ChainState& chain,
                       const uint8_t* interest) const;
  std::vector<size_t> SampleImpl(const std::vector<bool>* interest,
                                 exec::ExecContext* ctx) const;

  SamplerOptions options_;

  // Static structure. The range/consistency columns are flat arrays of
  // machine words (and `item_has_range_` a byte mask, not vector<bool>)
  // so the dispatched probe kernels can stream them.
  std::vector<size_t> group_of_anon_;
  std::vector<size_t> item_lo_, item_hi_;
  std::vector<uint8_t> item_has_range_;
  std::vector<ItemId> seed_item_of_anon_;  // seed matching
  size_t seed_size_ = 0;

  // Legacy in-place state, kept for the CurrentStateConsistent hook.
  std::vector<ItemId> item_of_anon_;
  std::vector<ItemId> anon_of_item_;
  std::vector<ItemId> unmatched_items_;
};

}  // namespace anonsafe

#endif  // ANONSAFE_GRAPH_MATCHING_SAMPLER_H_
