#include "graph/consistency.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>

#include "exec/exec.h"
#include "obs/scoped_timer.h"

namespace anonsafe {
namespace {

// Fenwick tree helpers over 1-based internal indexing.
void FenwickAdd(std::vector<int64_t>* tree, size_t i, int64_t delta) {
  for (size_t p = i + 1; p < tree->size(); p += p & (~p + 1)) {
    (*tree)[p] += delta;
  }
}

int64_t FenwickPrefix(const std::vector<int64_t>& tree, size_t count) {
  int64_t sum = 0;
  for (size_t p = count; p > 0; p -= p & (~p + 1)) {
    sum += tree[p];
  }
  return sum;
}

}  // namespace

Result<ConsistencyStructure> ConsistencyStructure::Build(
    const FrequencyGroups& observed, const BeliefFunction& belief,
    exec::ExecContext* ctx) {
  ANONSAFE_SCOPED_TIMER("graph.consistency_build");
  if (observed.num_items() != belief.num_items()) {
    return Status::InvalidArgument(
        "observed data covers " + std::to_string(observed.num_items()) +
        " items, belief function " + std::to_string(belief.num_items()));
  }
  const size_t n = observed.num_items();
  const size_t k = observed.num_groups();

  ConsistencyStructure cs;
  cs.item_state_.assign(n, ItemState::kAlive);
  cs.item_lo_.assign(n, 0);
  cs.item_hi_.assign(n, 0);
  cs.group_remaining_.resize(k);
  cs.size_tree_.assign(k + 1, 0);
  cs.cover_tree_.assign(k + 2, 0);

  for (size_t g = 0; g < k; ++g) {
    cs.group_remaining_[g] = observed.group_size(g);
    FenwickAdd(&cs.size_tree_, g,
               static_cast<int64_t>(observed.group_size(g)));
  }
  // Phase 1 (parallel): stab every item's interval against the sorted
  // groups; each chunk writes disjoint slots of lo/hi/stabbed. Phase 2
  // (sequential, item order): apply the Fenwick range updates, which
  // share tree nodes and must not race. The split keeps the output
  // bit-identical for any thread count.
  std::vector<size_t> stab_lo(n), stab_hi(n);
  std::vector<uint8_t> stabbed(n, 0);
  const size_t grain = ctx != nullptr ? ctx->ResolveGrain(2048) : n;
  Status st = exec::ParallelForChunks(
      ctx, n, grain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const ItemId x = static_cast<ItemId>(i);
          const BeliefInterval& iv = belief.interval(x);
          stabbed[x] = observed.StabRange(iv.lo, iv.hi, &stab_lo[x],
                                          &stab_hi[x])
                           ? 1
                           : 0;
        }
        return Status::OK();
      });
  ANONSAFE_RETURN_IF_ERROR(st);
  for (ItemId x = 0; x < n; ++x) {
    if (stabbed[x]) {
      cs.item_lo_[x] = stab_lo[x];
      cs.item_hi_[x] = stab_hi[x];
      cs.AddCover(stab_lo[x], stab_hi[x], +1);
    } else {
      cs.item_state_[x] = ItemState::kDead;
      ++cs.num_dead_;
    }
  }
  // An item without candidates certifies that no perfect consistent
  // matching exists (the paper's Section 2.3 example).
  cs.contradiction_ = cs.num_dead_ > 0;
  return cs;
}

size_t ConsistencyStructure::RangeRemaining(size_t lo, size_t hi) const {
  return static_cast<size_t>(FenwickPrefix(size_tree_, hi + 1) -
                             FenwickPrefix(size_tree_, lo));
}

size_t ConsistencyStructure::CoverCount(size_t g) const {
  return static_cast<size_t>(FenwickPrefix(cover_tree_, g + 1));
}

void ConsistencyStructure::AddCover(size_t lo, size_t hi, int delta) {
  FenwickAdd(&cover_tree_, lo, delta);
  FenwickAdd(&cover_tree_, hi + 1, -delta);
}

size_t ConsistencyStructure::FindFirstNonEmptyGroup(size_t lo,
                                                    size_t hi) const {
  for (size_t g = lo; g <= hi; ++g) {
    if (group_remaining_[g] > 0) return g;
  }
  assert(false && "no non-empty group in range");
  return hi;
}

size_t ConsistencyStructure::outdegree(ItemId x) const {
  switch (item_state_[x]) {
    case ItemState::kDead:
      return 0;
    case ItemState::kForced:
      return 1;
    case ItemState::kAlive:
      return RangeRemaining(item_lo_[x], item_hi_[x]);
  }
  return 0;
}

ConsistencyStructure::PropagationStats
ConsistencyStructure::PropagateDegreeOne() {
  obs::ScopedTimer timer("graph.propagate_degree1");
  PropagationStats stats;
  propagated_ = true;

  const size_t n = num_items();
  const size_t k = num_groups();

  auto force_item = [&](ItemId x, size_t g) {
    assert(item_state_[x] == ItemState::kAlive);
    assert(group_remaining_[g] == 1);
    AddCover(item_lo_[x], item_hi_[x], -1);
    item_state_[x] = ItemState::kForced;
    group_remaining_[g] -= 1;
    FenwickAdd(&size_tree_, g, -1);
    ++stats.forced_pairs;
  };

  // Best-effort fixpoint: under a compliant belief every step below is the
  // sound degree-1 rule of Figure 7. Under non-compliant beliefs a perfect
  // matching may not exist; then the rules model what a hacker (who
  // cannot tell) would still deduce, inconsistencies are flagged via
  // `contradiction` and affected items become dead instead of aborting.
  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.passes;

    // Anonymized side: degree of every anonymized item in group g is the
    // number of alive items covering g.
    for (size_t g = 0; g < k; ++g) {
      size_t remaining = group_remaining_[g];
      if (remaining == 0) continue;
      size_t cover = CoverCount(g);
      if (cover < remaining) {
        stats.contradiction = true;  // Hall violation; no forcing possible
        continue;
      }
      if (remaining == 1 && cover == 1) {
        // The unique covering item is forced onto this group's sole
        // remaining anonymized item; locate it by scan (rare event).
        for (ItemId x = 0; x < n; ++x) {
          if (item_state_[x] == ItemState::kAlive && item_lo_[x] <= g &&
              g <= item_hi_[x]) {
            force_item(x, g);
            changed = true;
            break;
          }
        }
      }
    }

    // Item side: an alive item with exactly one remaining candidate is
    // forced; one with none left becomes dead.
    for (ItemId x = 0; x < n; ++x) {
      if (item_state_[x] != ItemState::kAlive) continue;
      size_t rr = RangeRemaining(item_lo_[x], item_hi_[x]);
      if (rr == 0) {
        AddCover(item_lo_[x], item_hi_[x], -1);
        item_state_[x] = ItemState::kDead;
        ++num_dead_;
        stats.contradiction = true;
        changed = true;
      } else if (rr == 1) {
        size_t g = FindFirstNonEmptyGroup(item_lo_[x], item_hi_[x]);
        force_item(x, g);
        changed = true;
      }
    }
  }

  stats.contradiction = stats.contradiction || contradiction_;
  contradiction_ = stats.contradiction;
  obs::CountIf("anonsafe_propagation_forced_pairs_total", stats.forced_pairs);
  obs::CountIf("anonsafe_propagation_passes_total", stats.passes);
  if (timer.tracing()) {
    timer.Annotate("forced_pairs", std::to_string(stats.forced_pairs));
    timer.Annotate("passes", std::to_string(stats.passes));
  }
  return stats;
}

std::vector<std::vector<ItemId>> ConsistencyStructure::BeliefGroups() const {
  std::map<std::pair<size_t, size_t>, std::vector<ItemId>> by_range;
  std::vector<ItemId> dead;
  for (ItemId x = 0; x < num_items(); ++x) {
    if (item_state_[x] == ItemState::kDead) {
      dead.push_back(x);
    } else {
      by_range[{item_lo_[x], item_hi_[x]}].push_back(x);
    }
  }
  std::vector<std::vector<ItemId>> out;
  out.reserve(by_range.size() + (dead.empty() ? 0 : 1));
  for (auto& [range, members] : by_range) {
    out.push_back(std::move(members));
  }
  if (!dead.empty()) out.push_back(std::move(dead));
  return out;
}

}  // namespace anonsafe
