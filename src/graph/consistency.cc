#include "graph/consistency.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>

#include "exec/exec.h"
#include "exec/scratch.h"
#include "obs/scoped_timer.h"

namespace anonsafe {
namespace {

// Fenwick tree helpers over 1-based internal indexing.
void FenwickAdd(std::vector<int64_t>* tree, size_t i, int64_t delta) {
  for (size_t p = i + 1; p < tree->size(); p += p & (~p + 1)) {
    (*tree)[p] += delta;
  }
}

int64_t FenwickPrefix(const std::vector<int64_t>& tree, size_t count) {
  int64_t sum = 0;
  for (size_t p = count; p > 0; p -= p & (~p + 1)) {
    sum += tree[p];
  }
  return sum;
}

}  // namespace

Result<ConsistencyStructure> ConsistencyStructure::Build(
    const FrequencyGroups& observed, const BeliefFunction& belief,
    exec::ExecContext* ctx) {
  ANONSAFE_SCOPED_TIMER("graph.consistency_build");
  if (observed.num_items() != belief.num_items()) {
    return Status::InvalidArgument(
        "observed data covers " + std::to_string(observed.num_items()) +
        " items, belief function " + std::to_string(belief.num_items()));
  }
  const size_t n = observed.num_items();

  // Phase 1 (parallel): stab every item's interval against the sorted
  // groups; each chunk writes disjoint slots of the scratch buffer.
  // Phase 2 (sequential, item order): apply the Fenwick range updates,
  // which share tree nodes and must not race. The split keeps the output
  // bit-identical for any thread count. The stab buffer comes from the
  // thread-local scratch pool — recipe runs rebuild this structure per
  // probe, so the allocation is recycled rather than repeated.
  exec::ScratchVec<ItemStabRange> stabs(n);
  const size_t grain = ctx != nullptr ? ctx->ResolveGrain(2048) : n;
  Status st = exec::ParallelForChunks(
      ctx, n, grain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const BeliefInterval& iv = belief.interval(static_cast<ItemId>(i));
          stabs[i] = observed.Stab(iv.lo, iv.hi);
        }
        return Status::OK();
      });
  ANONSAFE_RETURN_IF_ERROR(st);
  return InitFromRanges(observed, stabs.data(), n);
}

Result<ConsistencyStructure> ConsistencyStructure::BuildFromRanges(
    const FrequencyGroups& observed,
    const std::vector<ItemStabRange>& ranges) {
  if (ranges.size() != observed.num_items()) {
    return Status::InvalidArgument(
        "ranges cover " + std::to_string(ranges.size()) +
        " items, observed data " + std::to_string(observed.num_items()));
  }
  const size_t k = observed.num_groups();
  for (const ItemStabRange& r : ranges) {
    if (r.has && (r.lo > r.hi || r.hi >= k)) {
      return Status::InvalidArgument("stab range outside the group domain");
    }
  }
  return InitFromRanges(observed, ranges.data(), ranges.size());
}

ConsistencyStructure ConsistencyStructure::InitFromRanges(
    const FrequencyGroups& observed, const ItemStabRange* ranges, size_t n) {
  const size_t k = observed.num_groups();
  ConsistencyStructure cs;
  cs.item_state_.assign(n, ItemState::kAlive);
  cs.item_lo_.assign(n, 0);
  cs.item_hi_.assign(n, 0);
  cs.group_remaining_.resize(k);
  cs.size_tree_.assign(k + 1, 0);
  cs.cover_tree_.assign(k + 2, 0);
  for (size_t g = 0; g < k; ++g) {
    cs.group_remaining_[g] = observed.group_size(g);
    FenwickAdd(&cs.size_tree_, g,
               static_cast<int64_t>(observed.group_size(g)));
  }
  for (ItemId x = 0; x < n; ++x) {
    const ItemStabRange& r = ranges[x];
    if (r.has) {
      cs.item_lo_[x] = r.lo;
      cs.item_hi_[x] = r.hi;
      cs.AddCover(r.lo, r.hi, +1);
    } else {
      cs.item_state_[x] = ItemState::kDead;
      ++cs.num_dead_;
    }
  }
  // An item without candidates certifies that no perfect consistent
  // matching exists (the paper's Section 2.3 example).
  cs.contradiction_ = cs.num_dead_ > 0;
  return cs;
}

size_t ConsistencyStructure::RangeRemaining(size_t lo, size_t hi) const {
  return static_cast<size_t>(FenwickPrefix(size_tree_, hi + 1) -
                             FenwickPrefix(size_tree_, lo));
}

size_t ConsistencyStructure::CoverCount(size_t g) const {
  return static_cast<size_t>(FenwickPrefix(cover_tree_, g + 1));
}

void ConsistencyStructure::AddCover(size_t lo, size_t hi, int delta) {
  FenwickAdd(&cover_tree_, lo, delta);
  FenwickAdd(&cover_tree_, hi + 1, -delta);
}

size_t ConsistencyStructure::FindFirstNonEmptyGroup(size_t lo,
                                                    size_t hi) const {
  // Binary descent over the Fenwick tree: the answer is the first group
  // whose cumulative remaining size exceeds prefix(lo) — the largest pos
  // with prefix(pos) <= prefix(lo). O(log k) regardless of how long the
  // run of emptied groups inside [lo, hi] has grown, where the old linear
  // scan degraded to O(k) per forcing during long cascades.
  int64_t rem = FenwickPrefix(size_tree_, lo);
  size_t pos = 0;
  for (size_t pw = std::bit_floor(size_tree_.size() - 1); pw > 0; pw >>= 1) {
    const size_t next = pos + pw;
    if (next < size_tree_.size() && size_tree_[next] <= rem) {
      pos = next;
      rem -= size_tree_[next];
    }
  }
  assert(pos >= lo && pos <= hi && group_remaining_[pos] > 0);
  (void)hi;
  return pos;
}

size_t ConsistencyStructure::outdegree(ItemId x) const {
  switch (item_state_[x]) {
    case ItemState::kDead:
      return 0;
    case ItemState::kForced:
      return 1;
    case ItemState::kAlive:
      return RangeRemaining(item_lo_[x], item_hi_[x]);
  }
  return 0;
}

ConsistencyStructure::PropagationStats
ConsistencyStructure::PropagateDegreeOne() {
  obs::ScopedTimer timer("graph.propagate_degree1");
  PropagationStats stats;
  propagated_ = true;

  const size_t n = num_items();
  const size_t k = num_groups();

  // Degree-1 locate index: items sorted by ascending (lo, id) under a
  // max-hi segment tree. When the anonymized side forces (cover == 1) the
  // unique alive item covering g is the leftmost alive entry with
  // hi >= g: any earlier alive entry with hi >= g would have lo <= g too
  // (entries are lo-sorted) and hence also cover g, contradicting
  // cover == 1. Replaces the old O(n) locate-by-scan per forcing.
  const size_t leaves = std::bit_ceil(std::max<size_t>(n, 1));
  std::vector<ItemId> by_lo(n);
  for (size_t i = 0; i < n; ++i) by_lo[i] = static_cast<ItemId>(i);
  std::sort(by_lo.begin(), by_lo.end(), [&](ItemId a, ItemId b) {
    if (item_lo_[a] != item_lo_[b]) return item_lo_[a] < item_lo_[b];
    return a < b;
  });
  std::vector<size_t> pos_of_item(n);
  std::vector<int64_t> max_hi(2 * leaves, -1);
  for (size_t p = 0; p < n; ++p) {
    const ItemId x = by_lo[p];
    pos_of_item[x] = p;
    if (item_state_[x] == ItemState::kAlive) {
      max_hi[leaves + p] = static_cast<int64_t>(item_hi_[x]);
    }
  }
  for (size_t node = leaves - 1; node >= 1; --node) {
    max_hi[node] = std::max(max_hi[2 * node], max_hi[2 * node + 1]);
  }
  auto retire = [&](ItemId x) {
    size_t node = leaves + pos_of_item[x];
    max_hi[node] = -1;
    for (node >>= 1; node >= 1; node >>= 1) {
      max_hi[node] = std::max(max_hi[2 * node], max_hi[2 * node + 1]);
    }
  };
  auto locate_covering = [&](size_t g) -> ItemId {
    if (max_hi[1] < static_cast<int64_t>(g)) return kInvalidItem;
    size_t node = 1;
    while (node < leaves) {
      node = 2 * node;
      if (max_hi[node] < static_cast<int64_t>(g)) ++node;
    }
    const ItemId x = by_lo[node - leaves];
    return item_lo_[x] <= g ? x : kInvalidItem;
  };

  auto force_item = [&](ItemId x, size_t g) {
    assert(item_state_[x] == ItemState::kAlive);
    assert(group_remaining_[g] == 1);
    AddCover(item_lo_[x], item_hi_[x], -1);
    item_state_[x] = ItemState::kForced;
    retire(x);
    group_remaining_[g] -= 1;
    FenwickAdd(&size_tree_, g, -1);
    ++stats.forced_pairs;
  };

  // Best-effort fixpoint: under a compliant belief every step below is the
  // sound degree-1 rule of Figure 7. Under non-compliant beliefs a perfect
  // matching may not exist; then the rules model what a hacker (who
  // cannot tell) would still deduce, inconsistencies are flagged via
  // `contradiction` and affected items become dead instead of aborting.
  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.passes;

    // Anonymized side: degree of every anonymized item in group g is the
    // number of alive items covering g.
    for (size_t g = 0; g < k; ++g) {
      size_t remaining = group_remaining_[g];
      if (remaining == 0) continue;
      size_t cover = CoverCount(g);
      if (cover < remaining) {
        stats.contradiction = true;  // Hall violation; no forcing possible
        continue;
      }
      if (remaining == 1 && cover == 1) {
        // The unique covering item is forced onto this group's sole
        // remaining anonymized item.
        const ItemId x = locate_covering(g);
        if (x != kInvalidItem) {
          force_item(x, g);
          changed = true;
        }
      }
    }

    // Item side: an alive item with exactly one remaining candidate is
    // forced; one with none left becomes dead.
    for (ItemId x = 0; x < n; ++x) {
      if (item_state_[x] != ItemState::kAlive) continue;
      size_t rr = RangeRemaining(item_lo_[x], item_hi_[x]);
      if (rr == 0) {
        AddCover(item_lo_[x], item_hi_[x], -1);
        item_state_[x] = ItemState::kDead;
        retire(x);
        ++num_dead_;
        stats.contradiction = true;
        changed = true;
      } else if (rr == 1) {
        size_t g = FindFirstNonEmptyGroup(item_lo_[x], item_hi_[x]);
        force_item(x, g);
        changed = true;
      }
    }
  }

  stats.contradiction = stats.contradiction || contradiction_;
  contradiction_ = stats.contradiction;
  obs::CountIf("anonsafe_propagation_forced_pairs_total", stats.forced_pairs);
  obs::CountIf("anonsafe_propagation_passes_total", stats.passes);
  if (timer.tracing()) {
    timer.Annotate("forced_pairs", std::to_string(stats.forced_pairs));
    timer.Annotate("passes", std::to_string(stats.passes));
  }
  return stats;
}

std::vector<std::vector<ItemId>> ConsistencyStructure::BeliefGroups() const {
  const size_t n = num_items();
  // Sort the non-dead items by (lo, hi, id) and group linearly — same
  // output as a map keyed on the range (ranges ascend lexicographically,
  // ids ascend within a range via the tie-break) without the per-node
  // tree allocations.
  std::vector<ItemId> order;
  std::vector<ItemId> dead;
  order.reserve(n);
  for (ItemId x = 0; x < n; ++x) {
    (item_state_[x] == ItemState::kDead ? dead : order).push_back(x);
  }
  std::sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    if (item_lo_[a] != item_lo_[b]) return item_lo_[a] < item_lo_[b];
    if (item_hi_[a] != item_hi_[b]) return item_hi_[a] < item_hi_[b];
    return a < b;
  });
  std::vector<std::vector<ItemId>> out;
  for (size_t i = 0; i < order.size();) {
    size_t j = i;
    while (j < order.size() && item_lo_[order[j]] == item_lo_[order[i]] &&
           item_hi_[order[j]] == item_hi_[order[i]]) {
      ++j;
    }
    out.emplace_back(order.begin() + static_cast<ptrdiff_t>(i),
                     order.begin() + static_cast<ptrdiff_t>(j));
    i = j;
  }
  if (!dead.empty()) out.push_back(std::move(dead));
  return out;
}

}  // namespace anonsafe
