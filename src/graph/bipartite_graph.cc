#include "graph/bipartite_graph.h"

#include <algorithm>
#include <string>

#include "obs/scoped_timer.h"

namespace anonsafe {

Result<BipartiteGraph> BipartiteGraph::Build(const FrequencyGroups& observed,
                                             const BeliefFunction& belief,
                                             size_t max_edges) {
  obs::ScopedTimer timer("graph.bipartite_build");
  if (observed.num_items() != belief.num_items()) {
    return Status::InvalidArgument(
        "observed data covers " + std::to_string(observed.num_items()) +
        " items, belief function " + std::to_string(belief.num_items()));
  }
  const size_t n = observed.num_items();
  const size_t k = observed.num_groups();

  // First pass: total edge count via the O(log k) range counts, plus a
  // per-group cover difference array (the anon-side degree of every
  // anonymized item in group g is the number of item ranges covering g).
  size_t total_edges = 0;
  std::vector<std::pair<size_t, size_t>> ranges(n);
  std::vector<bool> has_range(n, false);
  std::vector<int64_t> cover_diff(k + 1, 0);
  for (ItemId x = 0; x < n; ++x) {
    const BeliefInterval& iv = belief.interval(x);
    size_t lo = 0, hi = 0;
    if (observed.StabRange(iv.lo, iv.hi, &lo, &hi)) {
      has_range[x] = true;
      ranges[x] = {lo, hi};
      total_edges += observed.RangeItemCount(lo, hi);
      cover_diff[lo] += 1;
      cover_diff[hi + 1] -= 1;
    }
  }
  if (total_edges > max_edges) {
    return Status::OutOfRange(
        "explicit graph would have " + std::to_string(total_edges) +
        " edges, budget is " + std::to_string(max_edges) +
        "; use ConsistencyStructure for large instances");
  }

  BipartiteGraph g;
  g.num_items_ = n;
  g.num_edges_ = total_edges;

  // Anon-side offsets: degree of anon a = cover count of its group.
  g.anon_offsets_.assign(n + 1, 0);
  {
    int64_t cover = 0;
    for (size_t grp = 0; grp < k; ++grp) {
      cover += cover_diff[grp];
      for (ItemId a : observed.group_items(grp)) {
        g.anon_offsets_[a + 1] = static_cast<size_t>(cover);
      }
    }
  }
  for (size_t a = 0; a < n; ++a) g.anon_offsets_[a + 1] += g.anon_offsets_[a];

  // Fill: walking items in ascending x keeps every anon row sorted.
  g.items_flat_.resize(total_edges);
  std::vector<size_t> cursor(g.anon_offsets_.begin(),
                             g.anon_offsets_.end() - 1);
  for (ItemId x = 0; x < n; ++x) {
    if (!has_range[x]) continue;
    auto [lo, hi] = ranges[x];
    for (size_t grp = lo; grp <= hi; ++grp) {
      for (ItemId a : observed.group_items(grp)) {
        g.items_flat_[cursor[a]++] = x;
      }
    }
  }
  g.BuildItemSideAndMasks();
  if (timer.tracing()) {
    timer.Annotate("edges", std::to_string(total_edges));
  }
  return g;
}

Result<BipartiteGraph> BipartiteGraph::FromAdjacency(
    size_t num_items, std::vector<std::vector<ItemId>> items_of_anon) {
  if (items_of_anon.size() != num_items) {
    return Status::InvalidArgument("adjacency must have one row per item");
  }
  BipartiteGraph g;
  g.num_items_ = num_items;
  g.anon_offsets_.assign(num_items + 1, 0);
  for (size_t a = 0; a < num_items; ++a) {
    auto& row = items_of_anon[a];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    if (!row.empty() && row.back() >= num_items) {
      return Status::InvalidArgument("edge endpoint outside domain");
    }
    g.anon_offsets_[a + 1] = g.anon_offsets_[a] + row.size();
  }
  g.num_edges_ = g.anon_offsets_[num_items];
  g.items_flat_.resize(g.num_edges_);
  for (size_t a = 0; a < num_items; ++a) {
    std::copy(items_of_anon[a].begin(), items_of_anon[a].end(),
              g.items_flat_.begin() +
                  static_cast<ptrdiff_t>(g.anon_offsets_[a]));
  }
  g.BuildItemSideAndMasks();
  return g;
}

void BipartiteGraph::BuildItemSideAndMasks() {
  const size_t n = num_items_;
  // Counting pass over the flat anon rows, then a fill in ascending a —
  // which leaves every item row sorted with no per-row sort needed.
  item_offsets_.assign(n + 1, 0);
  for (ItemId x : items_flat_) item_offsets_[x + 1] += 1;
  for (size_t x = 0; x < n; ++x) item_offsets_[x + 1] += item_offsets_[x];
  anons_flat_.resize(num_edges_);
  std::vector<size_t> cursor(item_offsets_.begin(), item_offsets_.end() - 1);
  for (size_t a = 0; a < n; ++a) {
    for (ItemId x : items_of_anon(static_cast<ItemId>(a))) {
      anons_flat_[cursor[x]++] = static_cast<ItemId>(a);
    }
  }
  if (n <= 64) {
    row_masks_.assign(n, 0);
    for (size_t a = 0; a < n; ++a) {
      for (ItemId x : items_of_anon(static_cast<ItemId>(a))) {
        row_masks_[a] |= (1ULL << x);
      }
    }
  }
}

bool BipartiteGraph::HasEdge(ItemId a, ItemId x) const {
  if (!row_masks_.empty()) {
    return (row_masks_[a] >> x) & 1;
  }
  AdjacencyRow row = items_of_anon(a);
  return std::binary_search(row.begin(), row.end(), x);
}

Result<std::vector<uint64_t>> BipartiteGraph::ToRowMasks() const {
  if (num_items_ > 64) {
    return Status::OutOfRange(
        "bitmask form limited to 64 items, graph has " +
        std::to_string(num_items_));
  }
  return row_masks_;
}

}  // namespace anonsafe
