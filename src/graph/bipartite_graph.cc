#include "graph/bipartite_graph.h"

#include <algorithm>
#include <string>

#include "obs/scoped_timer.h"

namespace anonsafe {

Result<BipartiteGraph> BipartiteGraph::Build(const FrequencyGroups& observed,
                                             const BeliefFunction& belief,
                                             size_t max_edges) {
  obs::ScopedTimer timer("graph.bipartite_build");
  if (observed.num_items() != belief.num_items()) {
    return Status::InvalidArgument(
        "observed data covers " + std::to_string(observed.num_items()) +
        " items, belief function " + std::to_string(belief.num_items()));
  }
  const size_t n = observed.num_items();

  // First pass: total edge count via the O(log k) range counts.
  size_t total_edges = 0;
  std::vector<std::pair<size_t, size_t>> ranges(n);
  std::vector<bool> has_range(n, false);
  for (ItemId x = 0; x < n; ++x) {
    const BeliefInterval& iv = belief.interval(x);
    size_t lo = 0, hi = 0;
    if (observed.StabRange(iv.lo, iv.hi, &lo, &hi)) {
      has_range[x] = true;
      ranges[x] = {lo, hi};
      total_edges += observed.RangeItemCount(lo, hi);
    }
  }
  if (total_edges > max_edges) {
    return Status::OutOfRange(
        "explicit graph would have " + std::to_string(total_edges) +
        " edges, budget is " + std::to_string(max_edges) +
        "; use ConsistencyStructure for large instances");
  }

  BipartiteGraph g;
  g.items_of_anon_.assign(n, {});
  g.anons_of_item_.assign(n, {});
  g.num_edges_ = total_edges;
  for (ItemId x = 0; x < n; ++x) {
    if (!has_range[x]) continue;
    auto [lo, hi] = ranges[x];
    auto& anons = g.anons_of_item_[x];
    anons.reserve(observed.RangeItemCount(lo, hi));
    for (size_t grp = lo; grp <= hi; ++grp) {
      for (ItemId a : observed.group_items(grp)) {
        anons.push_back(a);
        g.items_of_anon_[a].push_back(x);
      }
    }
    std::sort(anons.begin(), anons.end());
  }
  // items_of_anon_ lists are filled in ascending x order already.
  if (timer.tracing()) {
    timer.Annotate("edges", std::to_string(total_edges));
  }
  return g;
}

Result<BipartiteGraph> BipartiteGraph::FromAdjacency(
    size_t num_items, std::vector<std::vector<ItemId>> items_of_anon) {
  if (items_of_anon.size() != num_items) {
    return Status::InvalidArgument("adjacency must have one row per item");
  }
  BipartiteGraph g;
  g.items_of_anon_ = std::move(items_of_anon);
  g.anons_of_item_.assign(num_items, {});
  for (size_t a = 0; a < num_items; ++a) {
    auto& row = g.items_of_anon_[a];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    if (!row.empty() && row.back() >= num_items) {
      return Status::InvalidArgument("edge endpoint outside domain");
    }
    for (ItemId x : row) {
      g.anons_of_item_[x].push_back(static_cast<ItemId>(a));
    }
    g.num_edges_ += row.size();
  }
  return g;
}

bool BipartiteGraph::HasEdge(ItemId a, ItemId x) const {
  const auto& row = items_of_anon_[a];
  return std::binary_search(row.begin(), row.end(), x);
}

Result<std::vector<uint64_t>> BipartiteGraph::ToRowMasks() const {
  if (num_items() > 64) {
    return Status::OutOfRange(
        "bitmask form limited to 64 items, graph has " +
        std::to_string(num_items()));
  }
  std::vector<uint64_t> rows(num_items(), 0);
  for (size_t a = 0; a < num_items(); ++a) {
    for (ItemId x : items_of_anon_[a]) {
      rows[a] |= (1ULL << x);
    }
  }
  return rows;
}

}  // namespace anonsafe
