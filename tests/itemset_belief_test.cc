#include <gtest/gtest.h>

#include "belief/builders.h"
#include "data/frequency.h"
#include "datagen/quest.h"
#include "graph/bipartite_graph.h"
#include "mining/miner.h"
#include "powerset/constrained_attack.h"
#include "powerset/itemset_belief.h"
#include "powerset/pair_attack.h"
#include "powerset/support_oracle.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

Database CamouflageDb() {
  // Items 0 and 1 share a frequency; only 0 co-occurs with 2 (see
  // powerset_test.cc for the pair-level version of this scenario).
  Database db(3);
  EXPECT_TRUE(db.AddTransaction({0, 2}).ok());
  EXPECT_TRUE(db.AddTransaction({0, 2}).ok());
  EXPECT_TRUE(db.AddTransaction({1}).ok());
  EXPECT_TRUE(db.AddTransaction({1}).ok());
  EXPECT_TRUE(db.AddTransaction({2}).ok());
  EXPECT_TRUE(db.AddTransaction({0, 1, 2}).ok());
  return db;
}

// ------------------------------------------------------------ SupportOracle

TEST(SupportOracleTest, MatchesDirectCounting) {
  Database db = CamouflageDb();
  auto oracle = SupportOracle::Build(db);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(oracle->Support({}), 6u);
  EXPECT_EQ(oracle->Support({0}), 3u);
  EXPECT_EQ(oracle->Support({0, 2}), 3u);
  EXPECT_EQ(oracle->Support({0, 1}), 1u);
  EXPECT_EQ(oracle->Support({0, 1, 2}), 1u);
  EXPECT_EQ(oracle->Support({1, 2}), 1u);
  EXPECT_DOUBLE_EQ(oracle->Frequency({0, 2}), 0.5);
  // Memoized second call returns the same value.
  EXPECT_EQ(oracle->Support({0, 1, 2}), 1u);
}

TEST(SupportOracleTest, AgreesWithMinersOnQuestData) {
  QuestParams params;
  params.num_items = 25;
  params.num_transactions = 150;
  params.seed = 3;
  auto db = GenerateQuestDatabase(params);
  ASSERT_TRUE(db.ok());
  auto oracle = SupportOracle::Build(*db);
  ASSERT_TRUE(oracle.ok());
  MiningOptions opt;
  opt.min_support = 0.05;
  auto frequent = MineFPGrowth(*db, opt);
  ASSERT_TRUE(frequent.ok());
  for (const FrequentItemset& fi : *frequent) {
    EXPECT_EQ(oracle->Support(fi.items), fi.support) << ToString(fi);
  }
}

TEST(SupportOracleTest, EmptyDatabaseFails) {
  Database empty(3);
  EXPECT_TRUE(SupportOracle::Build(empty).status().IsInvalidArgument());
}

// ------------------------------------------------------ ItemsetBeliefFunction

TEST(ItemsetBeliefTest, ConstrainValidates) {
  ItemsetBeliefFunction belief(5);
  EXPECT_TRUE(belief.Constrain({1, 3, 4}, {0.1, 0.2}).ok());
  EXPECT_TRUE(belief.Constrain({2, 2}, {0.1, 0.2}).IsInvalidArgument());
  EXPECT_TRUE(belief.Constrain({1}, {0.1, 0.2}).IsInvalidArgument());
  EXPECT_TRUE(belief.Constrain({1, 9}, {0.1, 0.2}).IsInvalidArgument());
  EXPECT_TRUE(belief.Constrain({1, 2}, {0.5, 0.2}).IsInvalidArgument());
  EXPECT_EQ(belief.num_constraints(), 1u);
  EXPECT_EQ(belief.ConstraintsOf(3).size(), 1u);
  EXPECT_TRUE(belief.ConstraintsOf(0).empty());
}

TEST(ItemsetBeliefTest, ComplianceFraction) {
  Database db = CamouflageDb();
  auto oracle = SupportOracle::Build(db);
  ASSERT_TRUE(oracle.ok());
  ItemsetBeliefFunction belief(3);
  ASSERT_TRUE(belief.Constrain({0, 2}, {0.4, 0.6}).ok());      // true 0.5
  ASSERT_TRUE(belief.Constrain({0, 1, 2}, {0.5, 0.9}).ok());   // true 1/6
  auto alpha = belief.ComplianceFraction(*oracle);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 0.5);
}

TEST(ItemsetBeliefTest, CompliantBuilderFromMinedPatterns) {
  QuestParams params;
  params.num_items = 20;
  params.num_transactions = 120;
  params.seed = 8;
  auto db = GenerateQuestDatabase(params);
  ASSERT_TRUE(db.ok());
  auto oracle = SupportOracle::Build(*db);
  ASSERT_TRUE(oracle.ok());
  MiningOptions opt;
  opt.min_support = 0.05;
  auto frequent = MineFPGrowth(*db, opt);
  ASSERT_TRUE(frequent.ok());

  auto belief = MakeCompliantItemsetBelief(*oracle, *frequent, 10, 0.02);
  ASSERT_TRUE(belief.ok());
  EXPECT_LE(belief->num_constraints(), 10u);
  EXPECT_GT(belief->num_constraints(), 0u);
  auto alpha = belief->ComplianceFraction(*oracle);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 1.0);
  for (const ItemsetConstraint& c : belief->constraints()) {
    EXPECT_GE(c.items.size(), 2u);
  }
}

// ------------------------------------------------------ Constrained attacks

TEST(ItemsetAttackTest, TripleConstraintBreaksCamouflage) {
  Database db = CamouflageDb();
  auto table = FrequencyTable::Compute(db);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto oracle = SupportOracle::Build(db);
  ASSERT_TRUE(oracle.ok());
  auto item_belief = MakePointValuedBelief(*table);
  ASSERT_TRUE(item_belief.ok());
  auto graph = BipartiteGraph::Build(groups, *item_belief);
  ASSERT_TRUE(graph.ok());

  // Constrain the PAIR {0,2} via the general itemset machinery.
  ItemsetBeliefFunction belief(3);
  ASSERT_TRUE(belief.Constrain({0, 2}, {0.4, 0.6}).ok());
  auto dist = EnumerateItemsetConstrainedDistribution(*graph, *oracle,
                                                      belief);
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(dist->num_matchings, 1u);
  EXPECT_NEAR(dist->expected, 3.0, 1e-9);

  // And agree with the specialized pair machinery.
  auto pairs = PairSupportMatrix::Compute(db);
  ASSERT_TRUE(pairs.ok());
  PairBeliefFunction pair_belief(3);
  ASSERT_TRUE(pair_belief.Constrain(0, 2, {0.4, 0.6}).ok());
  auto pair_dist = EnumerateConstrainedCrackDistribution(*graph, *pairs,
                                                         pair_belief);
  ASSERT_TRUE(pair_dist.ok());
  EXPECT_EQ(pair_dist->num_matchings, dist->num_matchings);
  EXPECT_NEAR(pair_dist->expected, dist->expected, 1e-9);
}

TEST(ItemsetAttackTest, SatisfiesChecksTotalAssignments) {
  Database db = CamouflageDb();
  auto oracle = SupportOracle::Build(db);
  ASSERT_TRUE(oracle.ok());
  ItemsetBeliefFunction belief(3);
  ASSERT_TRUE(belief.Constrain({0, 2}, {0.4, 0.6}).ok());
  EXPECT_TRUE(SatisfiesItemsetConstraints(belief, *oracle, {0, 1, 2}));
  EXPECT_FALSE(SatisfiesItemsetConstraints(belief, *oracle, {1, 0, 2}));
  EXPECT_FALSE(SatisfiesItemsetConstraints(
      belief, *oracle, {kInvalidItem, 1, 2}));
}

class ConstrainedSamplerTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConstrainedSamplerTest, MatchesConstrainedEnumeration) {
  // The constrained sampler's mean must track the constrained exact
  // expectation on random small instances with mined-pattern knowledge.
  QuestParams params;
  params.num_items = 8;
  params.num_transactions = 60;
  params.avg_txn_size = 3.0;
  params.seed = GetParam();
  auto db = GenerateQuestDatabase(params);
  ASSERT_TRUE(db.ok());
  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto oracle = SupportOracle::Build(*db);
  ASSERT_TRUE(oracle.ok());

  auto item_belief = MakeCompliantIntervalBelief(*table, 0.1);
  ASSERT_TRUE(item_belief.ok());
  auto graph = BipartiteGraph::Build(groups, *item_belief);
  ASSERT_TRUE(graph.ok());

  MiningOptions mining;
  mining.min_support = 0.1;
  mining.max_itemset_size = 3;
  auto frequent = MineFPGrowth(*db, mining);
  ASSERT_TRUE(frequent.ok());
  auto belief = MakeCompliantItemsetBelief(*oracle, *frequent, 4, 0.05);
  ASSERT_TRUE(belief.ok());

  auto exact = EnumerateItemsetConstrainedDistribution(*graph, *oracle,
                                                       *belief);
  ASSERT_TRUE(exact.ok());
  ASSERT_GT(exact->num_matchings, 0u);

  SamplerOptions options;
  options.num_samples = 2000;
  options.thinning_sweeps = 4;
  options.burn_in_sweeps = 80;
  options.exec.seed = GetParam() * 17 + 3;
  auto sampler = ConstrainedMatchingSampler::Create(*graph, *belief,
                                                    *oracle, options);
  ASSERT_TRUE(sampler.ok());
  EXPECT_TRUE(sampler->seed_is_identity());  // compliant constraints
  std::vector<size_t> counts = sampler->SampleCrackCounts();
  EXPECT_TRUE(sampler->CurrentStateConsistent());
  double mean = 0.0;
  for (size_t c : counts) mean += static_cast<double>(c);
  mean /= static_cast<double>(counts.size());
  EXPECT_NEAR(mean, exact->expected, 0.20 * exact->expected + 0.35)
      << "matchings=" << exact->num_matchings;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstrainedSamplerTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(ConstrainedSamplerTest, RejectsWhenNoSeedExists) {
  // An unsatisfiable constraint: frequency of the pair {0,1} must be in
  // a range no anonymized pair attains.
  Database db = CamouflageDb();
  auto table = FrequencyTable::Compute(db);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto oracle = SupportOracle::Build(db);
  ASSERT_TRUE(oracle.ok());
  auto graph = BipartiteGraph::Build(groups, MakeIgnorantBelief(3));
  ASSERT_TRUE(graph.ok());
  ItemsetBeliefFunction impossible(3);
  ASSERT_TRUE(impossible.Constrain({0, 1}, {0.9, 1.0}).ok());
  SamplerOptions options;
  EXPECT_TRUE(ConstrainedMatchingSampler::Create(*graph, impossible,
                                                 *oracle, options)
                  .status().IsFailedPrecondition());
}

TEST(ConstrainedSamplerTest, MinConflictsRepairFindsNonIdentitySeed) {
  // Non-compliant itemset constraint satisfied only by a non-identity
  // mapping: {0,1} constrained to the frequency that {anon0, anon2}
  // attains (0.5); items 0,1,2 all mutually swappable at the item level.
  Database db = CamouflageDb();
  auto oracle = SupportOracle::Build(db);
  ASSERT_TRUE(oracle.ok());
  auto graph = BipartiteGraph::Build(
      FrequencyGroups::Build(*FrequencyTable::Compute(db)),
      MakeIgnorantBelief(3));
  ASSERT_TRUE(graph.ok());
  ItemsetBeliefFunction belief(3);
  // True F({0,1}) = 1/6; require 0.5 -> identity inconsistent, but the
  // mapping sending {0,1} onto anon {0,2} satisfies it.
  ASSERT_TRUE(belief.Constrain({0, 1}, {0.45, 0.55}).ok());
  SamplerOptions options;
  options.num_samples = 50;
  options.exec.seed = 9;
  auto sampler = ConstrainedMatchingSampler::Create(*graph, belief,
                                                    *oracle, options);
  ASSERT_TRUE(sampler.ok());
  EXPECT_FALSE(sampler->seed_is_identity());
  std::vector<size_t> counts = sampler->SampleCrackCounts();
  EXPECT_TRUE(sampler->CurrentStateConsistent());
  // Item 1 can never be cracked (the constraint forbids anon 1 as its
  // image when 0 maps correctly... verified weakly: cracks <= 3).
  for (size_t c : counts) EXPECT_LE(c, 3u);
}

}  // namespace
}  // namespace anonsafe
