#include <gtest/gtest.h>

#include "core/recipe.h"
#include "data/frequency.h"
#include "datagen/profile.h"
#include "defense/k_anonymity.h"
#include "defense/scheme.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

Result<defense::DefensePlan> KAnonymityPlan(const FrequencyTable& table,
                                            size_t k) {
  defense::DefenseParams params;
  params.Set("k", static_cast<double>(k));
  return defense::DefenseScheme::Find("k_anonymity")->Plan(table, params);
}

// ----------------------------------------------------- FrequencyKAnonymity

TEST(KAnonymityTest, MinGroupSize) {
  auto table = FrequencyTable::FromSupports({5, 5, 5, 2, 2, 9}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  EXPECT_EQ(FrequencyKAnonymity(groups), 1u);  // {9} is a singleton

  auto uniform = FrequencyTable::FromSupports({5, 5, 2, 2}, 10);
  ASSERT_TRUE(uniform.ok());
  EXPECT_EQ(FrequencyKAnonymity(FrequencyGroups::Build(*uniform)), 2u);
}

TEST(KAnonymityTest, CrackBound) {
  EXPECT_DOUBLE_EQ(KAnonymityCrackBound(100, 4), 25.0);
  EXPECT_DOUBLE_EQ(KAnonymityCrackBound(100, 1), 100.0);
  EXPECT_DOUBLE_EQ(KAnonymityCrackBound(100, 0), 100.0);
}

TEST(KAnonymityTest, BoundIsValidForPointValuedWorstCase) {
  // For any k-anonymous table, the Lemma 3 worst case g <= n/k.
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t g = 2 + rng.UniformUint64(8);
    std::vector<ProfileGroup> groups;
    size_t k = 2 + rng.UniformUint64(4);
    for (size_t i = 0; i < g; ++i) {
      groups.push_back({static_cast<SupportCount>(10 + 11 * i),
                        k + rng.UniformUint64(3)});
    }
    auto profile = FrequencyProfile::Create(200, groups);
    ASSERT_TRUE(profile.ok());
    auto table = FrequencyTable::FromSupports(profile->ItemSupports(), 200);
    ASSERT_TRUE(table.ok());
    FrequencyGroups fg = FrequencyGroups::Build(*table);
    size_t measured_k = FrequencyKAnonymity(fg);
    EXPECT_GE(measured_k, k);
    EXPECT_LE(static_cast<double>(fg.num_groups()),
              KAnonymityCrackBound(profile->num_items(), measured_k) + 1e-9);
  }
}

TEST(KAnonymitySchemeTest, ReachesRequestedK) {
  std::vector<SupportCount> supports;
  for (size_t i = 0; i < 24; ++i) {
    supports.push_back(static_cast<SupportCount>(10 + 7 * i));
  }
  auto table = FrequencyTable::FromSupports(supports, 400);
  ASSERT_TRUE(table.ok());
  for (size_t k : {2u, 4u, 8u}) {
    auto report = KAnonymityPlan(*table, k);
    ASSERT_TRUE(report.ok()) << "k=" << k;
    auto merged = FrequencyTable::FromSupports(report->new_supports, 400);
    ASSERT_TRUE(merged.ok());
    EXPECT_GE(FrequencyKAnonymity(FrequencyGroups::Build(*merged)), k);
  }
}

TEST(KAnonymitySchemeTest, MonotoneDistortionInK) {
  std::vector<SupportCount> supports;
  for (size_t i = 0; i < 30; ++i) {
    supports.push_back(static_cast<SupportCount>(5 + 9 * i));
  }
  auto table = FrequencyTable::FromSupports(supports, 500);
  ASSERT_TRUE(table.ok());
  uint64_t prev = 0;
  for (size_t k : {1u, 2u, 5u, 10u, 30u}) {
    auto report = KAnonymityPlan(*table, k);
    ASSERT_TRUE(report.ok()) << "k=" << k;
    EXPECT_GE(report->l1_distortion, prev) << "k=" << k;
    prev = report->l1_distortion;
  }
}

TEST(KAnonymitySchemeTest, Validation) {
  auto table = FrequencyTable::FromSupports({1, 2, 3}, 10);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(KAnonymityPlan(*table, 0).status().IsInvalidArgument());
  EXPECT_TRUE(KAnonymityPlan(*table, 4).status().IsInvalidArgument());
  auto identity = KAnonymityPlan(*table, 1);
  ASSERT_TRUE(identity.ok());
  EXPECT_EQ(identity->l1_distortion, 0u);
}

// --------------------------------------------------------- AssessRiskForItems

TEST(RecipeForItemsTest, CamouflagedInterestDiscloses) {
  // The interesting items hide in a big frequency group: Lemma 4 gives
  // c/n_group per item, well under tolerance.
  std::vector<ProfileGroup> pg = {{10, 40}, {200, 1}};
  auto profile = FrequencyProfile::Create(400, pg);
  ASSERT_TRUE(profile.ok());
  auto table = FrequencyTable::FromSupports(profile->ItemSupports(), 400);
  ASSERT_TRUE(table.ok());
  std::vector<bool> interest(41, false);
  for (size_t i = 0; i < 5; ++i) interest[i] = true;  // 5 of the 40-group

  RecipeOptions options;
  options.tolerance = 0.2;  // budget = 1 crack of 5 interesting items
  auto result = AssessRiskForItems(*table, interest, options);
  ASSERT_TRUE(result.ok());
  // Lemma 4: 5 * (1/40) = 0.125 <= 1.
  EXPECT_EQ(result->decision, RecipeDecision::kDiscloseAtPointValued);
  EXPECT_EQ(result->num_items, 5u);
}

TEST(RecipeForItemsTest, UniqueInterestItemIsRisky) {
  // The single interesting item is frequency-unique: certain crack.
  std::vector<ProfileGroup> pg = {{10, 40}, {200, 1}};
  auto profile = FrequencyProfile::Create(400, pg);
  ASSERT_TRUE(profile.ok());
  auto table = FrequencyTable::FromSupports(profile->ItemSupports(), 400);
  ASSERT_TRUE(table.ok());
  std::vector<bool> interest(41, false);
  interest[40] = true;  // the singleton at support 200

  RecipeOptions options;
  options.tolerance = 0.5;  // budget = 0.5 cracks of 1 item
  auto result = AssessRiskForItems(*table, interest, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->decision, RecipeDecision::kAlphaBound);
  EXPECT_LT(result->alpha_max, 1.0);

  auto full = AssessRisk(*table, options);
  ASSERT_TRUE(full.ok());
  // The full-domain recipe would happily disclose (2 groups, 41 items).
  EXPECT_EQ(full->decision, RecipeDecision::kDiscloseAtPointValued);
}

TEST(RecipeForItemsTest, InterestSubsetNeverRiskierThanFullDomain) {
  // Restricting the accounting can only lower the absolute crack count,
  // so alpha_max for a subset is >= alpha_max for the full set whenever
  // both end in the alpha search with proportional budgets... checked
  // here in the simpler form: the interval OE for a subset is <= the
  // full-domain interval OE.
  Rng rng(9);
  std::vector<ProfileGroup> pg;
  for (size_t i = 0; i < 15; ++i) {
    pg.push_back({static_cast<SupportCount>(20 + 13 * i), 1});
  }
  pg.push_back({5, 10});
  auto profile = FrequencyProfile::Create(500, pg);
  ASSERT_TRUE(profile.ok());
  auto table = FrequencyTable::FromSupports(profile->ItemSupports(), 500);
  ASSERT_TRUE(table.ok());

  std::vector<bool> interest(profile->num_items(), false);
  for (size_t i = 0; i < profile->num_items(); i += 2) interest[i] = true;

  RecipeOptions options;
  options.tolerance = 0.01;  // force both into the interval computation
  auto sub = AssessRiskForItems(*table, interest, options);
  auto full = AssessRisk(*table, options);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_LE(sub->interval_oe, full->interval_oe + 1e-9);
}

TEST(RecipeForItemsTest, Validation) {
  auto table = FrequencyTable::FromSupports({1, 2}, 10);
  ASSERT_TRUE(table.ok());
  RecipeOptions options;
  EXPECT_TRUE(AssessRiskForItems(*table, {true}, options)
                  .status().IsInvalidArgument());
  EXPECT_TRUE(AssessRiskForItems(*table, {false, false}, options)
                  .status().IsInvalidArgument());
  options.tolerance = 0.0;
  EXPECT_TRUE(AssessRiskForItems(*table, {true, true}, options)
                  .status().IsInvalidArgument());
}

}  // namespace
}  // namespace anonsafe
