// Request-scoped tracing: the merged span tree of a parallel region must
// be *structurally* bit-identical at any thread count (names, parents,
// depths, annotations — everything except wall-clock timings), because
// chunks record into private fragment tracers that are merged back in
// chunk-index order regardless of which thread ran which chunk.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/recipe.h"
#include "data/frequency.h"
#include "exec/exec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/status.h"

namespace anonsafe {
namespace {

/// The timing-free projection of a span tree: equal projections mean
/// structurally identical trees.
struct SpanShape {
  std::string name;
  size_t parent;
  size_t depth;
  std::vector<std::pair<std::string, std::string>> annotations;

  bool operator==(const SpanShape& other) const {
    return name == other.name && parent == other.parent &&
           depth == other.depth && annotations == other.annotations;
  }
};

std::vector<SpanShape> Shape(const obs::Tracer& tracer) {
  std::vector<SpanShape> out;
  out.reserve(tracer.spans().size());
  for (const obs::SpanNode& node : tracer.spans()) {
    out.push_back({node.name, node.parent, node.depth, node.annotations});
  }
  return out;
}

Result<FrequencyTable> MakeProfile(size_t num_items, uint64_t seed) {
  Rng rng(seed);
  std::vector<SupportCount> supports;
  supports.reserve(num_items);
  for (size_t i = 0; i < num_items; ++i) {
    supports.push_back(1 + rng.UniformUint64(500));
  }
  return FrequencyTable::FromSupports(std::move(supports), 1000);
}

// ------------------------------------------------ MergeChunkFragments

TEST(TraceMergeTest, MergeChunkFragmentsRebasesIndicesAndDepths) {
  obs::Tracer parent;
  size_t root = parent.OpenSpan("fanout");

  // Two fragments, the second with a nested child.
  obs::Tracer frag0;
  frag0.SetEpoch(parent.EnsureEpoch());
  frag0.CloseSpan(frag0.OpenSpan("chunk0"));

  obs::Tracer frag1;
  frag1.SetEpoch(parent.epoch());
  size_t c1 = frag1.OpenSpan("chunk1");
  frag1.CloseSpan(frag1.OpenSpan("inner"));
  frag1.CloseSpan(c1);

  std::vector<std::vector<obs::SpanNode>> fragments;
  fragments.push_back(frag0.TakeSpans());
  fragments.push_back(frag1.TakeSpans());
  parent.MergeChunkFragments(root, std::move(fragments));
  parent.CloseSpan(root);

  const std::vector<obs::SpanNode>& spans = parent.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "fanout");
  EXPECT_EQ(spans[1].name, "chunk0");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].name, "chunk1");
  EXPECT_EQ(spans[2].parent, 0u);
  EXPECT_EQ(spans[3].name, "inner");
  EXPECT_EQ(spans[3].parent, 2u);
  EXPECT_EQ(spans[3].depth, 2u);
  EXPECT_TRUE(spans[0].closed);
}

TEST(TraceMergeTest, MergeWithoutParentSplicesAsRoots) {
  obs::Tracer parent;
  obs::Tracer frag;
  frag.SetEpoch(parent.EnsureEpoch());
  frag.CloseSpan(frag.OpenSpan("lone"));
  std::vector<std::vector<obs::SpanNode>> fragments;
  fragments.push_back(frag.TakeSpans());
  parent.MergeChunkFragments(obs::kNoSpan, std::move(fragments));
  ASSERT_EQ(parent.spans().size(), 1u);
  EXPECT_EQ(parent.spans()[0].parent, obs::kNoSpan);
  EXPECT_EQ(parent.spans()[0].depth, 0u);
}

// --------------------------------------------------- ParallelForChunks

std::vector<SpanShape> TracedParallelShape(size_t threads, size_t n,
                                           size_t grain) {
  obs::TraceContext context("test");
  obs::TraceContextScope scope(&context);
  exec::ExecOptions options;
  options.threads = threads;
  exec::ExecContext ctx(options);
  size_t root = context.tracer().OpenSpan("region");
  Status status = exec::ParallelForChunks(
      &ctx, n, grain, [](size_t begin, size_t end) {
        // A per-chunk span under the exec.chunk fragment root.
        obs::Tracer* tracer = obs::Tracer::CurrentOrNull();
        if (tracer != nullptr) {
          size_t s = tracer->OpenSpan("body");
          tracer->Annotate(s, "items", std::to_string(end - begin));
          tracer->CloseSpan(s);
        }
        return Status::OK();
      });
  EXPECT_TRUE(status.ok());
  context.tracer().CloseSpan(root);
  return Shape(context.tracer());
}

TEST(TraceMergeTest, ParallelForChunksStructureIdenticalAcrossThreads) {
  std::vector<SpanShape> sequential = TracedParallelShape(1, 1000, 64);
  std::vector<SpanShape> parallel = TracedParallelShape(8, 1000, 64);
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel);

  // Sanity: one exec.chunk fragment per chunk, annotated with its index,
  // parented under the open "region" span.
  size_t chunks = 0;
  for (const SpanShape& s : sequential) {
    if (s.name != "exec.chunk") continue;
    EXPECT_EQ(s.parent, 0u);
    ASSERT_FALSE(s.annotations.empty());
    EXPECT_EQ(s.annotations[0].first, "chunk");
    EXPECT_EQ(s.annotations[0].second, std::to_string(chunks));
    ++chunks;
  }
  EXPECT_EQ(chunks, exec::NumChunks(1000, 64));
}

TEST(TraceMergeTest, UntracedParallelForChunksRecordsNothing) {
  ASSERT_EQ(obs::Tracer::CurrentOrNull(), nullptr)
      << "test requires tracing off";
  exec::ExecOptions options;
  options.threads = 4;
  exec::ExecContext ctx(options);
  Status status = exec::ParallelForChunks(
      &ctx, 100, 10, [](size_t, size_t) { return Status::OK(); });
  EXPECT_TRUE(status.ok());
}

// --------------------------------------------------------- AssessRisk

std::vector<SpanShape> TracedAssessShape(size_t threads,
                                         const FrequencyTable& table) {
  obs::TraceContext context("req-test");
  obs::TraceContextScope scope(&context);
  RecipeOptions options;
  options.tolerance = 0.1;
  options.exec.threads = threads;
  exec::ExecContext ctx(options.exec);
  ctx.set_trace(&context);
  auto result = AssessRisk(table, options, &ctx);
  EXPECT_TRUE(result.ok());
  return Shape(context.tracer());
}

TEST(TraceMergeTest, AssessRiskSpanTreeIdenticalAtOneAndEightThreads) {
  auto table = MakeProfile(300, 17);
  ASSERT_TRUE(table.ok());
  std::vector<SpanShape> one = TracedAssessShape(1, *table);
  std::vector<SpanShape> eight = TracedAssessShape(8, *table);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, eight);
}

// ------------------------------------------------------- TraceContext

TEST(TraceMergeTest, TraceContextScopeNestsAndRestores) {
  EXPECT_EQ(obs::Tracer::CurrentOrNull(), nullptr);
  obs::TraceContext outer("outer");
  {
    obs::TraceContextScope outer_scope(&outer);
    EXPECT_EQ(obs::Tracer::CurrentOrNull(), &outer.tracer());
    {
      obs::TraceContext inner("inner");
      obs::TraceContextScope inner_scope(&inner);
      EXPECT_EQ(obs::Tracer::CurrentOrNull(), &inner.tracer());
    }
    EXPECT_EQ(obs::Tracer::CurrentOrNull(), &outer.tracer());
    // A nullptr context scope is a no-op, not an uninstall.
    {
      obs::TraceContextScope noop(nullptr);
      EXPECT_EQ(obs::Tracer::CurrentOrNull(), &outer.tracer());
    }
  }
  EXPECT_EQ(obs::Tracer::CurrentOrNull(), nullptr);
}

// ------------------------------------------------------- Forced closes

TEST(TraceMergeTest, ForcedCloseCountsAndAnnotates) {
  obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "anonsafe_trace_forced_closes_total");
  uint64_t before = counter->value();

  obs::Tracer tracer;
  size_t outer = tracer.OpenSpan("outer");
  tracer.OpenSpan("leaked_a");
  tracer.OpenSpan("leaked_b");
  // Closing `outer` out of order force-closes the two leaked spans.
  tracer.CloseSpan(outer);

  EXPECT_EQ(counter->value(), before + 2);
  ASSERT_EQ(tracer.spans().size(), 3u);
  for (size_t i = 1; i <= 2; ++i) {
    const obs::SpanNode& node = tracer.spans()[i];
    EXPECT_TRUE(node.closed);
    ASSERT_FALSE(node.annotations.empty());
    EXPECT_EQ(node.annotations.back().first, "forced_close");
    EXPECT_EQ(node.annotations.back().second, "out-of-order");
  }
  // The targeted span itself is not a forced close.
  EXPECT_TRUE(tracer.spans()[0].annotations.empty());

  // CloseAllOpen is the orderly fragment epilogue: not a forced close.
  obs::Tracer clean;
  clean.OpenSpan("root");
  clean.OpenSpan("child");
  clean.CloseAllOpen();
  EXPECT_EQ(counter->value(), before + 2);
  EXPECT_TRUE(clean.spans()[0].closed);
  EXPECT_TRUE(clean.spans()[1].closed);
}

}  // namespace
}  // namespace anonsafe
