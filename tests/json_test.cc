#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

namespace anonsafe {
namespace json {
namespace {

TEST(JsonTest, DumpPrimitives) {
  EXPECT_EQ(Value().Dump(), "null");
  EXPECT_EQ(Value(true).Dump(), "true");
  EXPECT_EQ(Value(false).Dump(), "false");
  EXPECT_EQ(Value(std::string("hi")).Dump(), "\"hi\"");
  EXPECT_EQ(Value("hi").Dump(), "\"hi\"");
  EXPECT_EQ(Value(int64_t{42}).Dump(), "42");
  EXPECT_EQ(Value(uint64_t{42}).Dump(), "42");
  EXPECT_EQ(Value(0.5).Dump(), "0.5");
  EXPECT_EQ(Value(-3.0).Dump(), "-3");
}

TEST(JsonTest, IntegralDoublesRenderWithoutFraction) {
  EXPECT_EQ(Value(10.0).Dump(), "10");
  EXPECT_EQ(Value(0.0).Dump(), "0");
  // 2^53 is the largest range where doubles are exact integers.
  EXPECT_EQ(Value(9007199254740992.0).Dump(), "9007199254740992");
}

TEST(JsonTest, ShortestRoundTripDoubles) {
  const double v = 0.09999999999999998;
  Value dumped(v);
  auto parsed = Value::Parse(dumped.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsDouble(), v);
  // And the re-dump is byte-identical — the bit-identity anchor.
  EXPECT_EQ(parsed->Dump(), dumped.Dump());
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Value obj = Value::Object();
  obj.Set("z", Value(int64_t{1}));
  obj.Set("a", Value(int64_t{2}));
  obj.Set("m", Value(int64_t{3}));
  EXPECT_EQ(obj.Dump(), "{\"z\":1,\"a\":2,\"m\":3}");
  // Replacing keeps the original slot.
  obj.Set("a", Value(int64_t{9}));
  EXPECT_EQ(obj.Dump(), "{\"z\":1,\"a\":9,\"m\":3}");
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(Value(std::string("a\"b\\c\n\t")).Dump(),
            "\"a\\\"b\\\\c\\n\\t\"");
  auto parsed = Value::Parse("\"a\\\"b\\\\c\\n\\t\\u0041\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->AsString(), "a\"b\\c\n\tA");
}

TEST(JsonTest, RoundTripNestedDocument) {
  const std::string text =
      "{\"a\":[1,2.5,true,null,\"x\"],\"b\":{\"c\":[],\"d\":{}}}";
  auto parsed = Value::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Dump(), text);
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Value::Parse("").ok());
  EXPECT_FALSE(Value::Parse("{").ok());
  EXPECT_FALSE(Value::Parse("tru").ok());
  EXPECT_FALSE(Value::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Value::Parse("[1 2]").ok());
  EXPECT_FALSE(Value::Parse("\"unterminated").ok());
  EXPECT_FALSE(Value::Parse("1e999").ok());   // non-finite
  EXPECT_FALSE(Value::Parse("{} extra").ok());  // trailing garbage
  EXPECT_FALSE(Value::Parse("\"bad \\q escape\"").ok());
}

TEST(JsonTest, DepthGuard) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(Value::Parse(deep, /*max_depth=*/64).ok());
  EXPECT_TRUE(Value::Parse(deep, /*max_depth=*/128).ok());
}

TEST(JsonTest, CheckedMemberReaders) {
  auto obj = Value::Parse("{\"n\":3,\"s\":\"x\",\"b\":true}");
  ASSERT_TRUE(obj.ok());

  auto n = obj->GetNumber("n");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3.0);
  EXPECT_FALSE(obj->GetNumber("missing").ok());
  EXPECT_FALSE(obj->GetNumber("s").ok());  // wrong type

  auto fallback = obj->GetNumberOr("missing", 7.0);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(*fallback, 7.0);
  EXPECT_FALSE(obj->GetNumberOr("s", 7.0).ok());  // present but wrong type

  auto s = obj->GetString("s");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "x");
  auto s_or = obj->GetStringOr("missing", "d");
  ASSERT_TRUE(s_or.ok());
  EXPECT_EQ(*s_or, "d");

  auto b = obj->GetBoolOr("b", false);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*b);
  auto b_or = obj->GetBoolOr("missing", true);
  ASSERT_TRUE(b_or.ok());
  EXPECT_TRUE(*b_or);
  EXPECT_FALSE(obj->GetBoolOr("n", false).ok());
}

TEST(JsonTest, FindOnNonObjectIsNull) {
  EXPECT_EQ(Value(int64_t{1}).Find("x"), nullptr);
  Value obj = Value::Object();
  obj.Set("x", Value(int64_t{1}));
  ASSERT_NE(obj.Find("x"), nullptr);
  EXPECT_EQ(obj.Find("y"), nullptr);
}

}  // namespace
}  // namespace json
}  // namespace anonsafe
