#include <gtest/gtest.h>

#include <sstream>

#include "belief/belief_io.h"
#include "belief/builders.h"
#include "data/frequency.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

TEST(BeliefIoTest, ParsesBasicFormat) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "0 0.1 0.3\n"
      "2 0.5 0.5   # inline comment\n");
  auto belief = ReadBeliefFunction(in, 4);
  ASSERT_TRUE(belief.ok());
  EXPECT_EQ(belief->interval(0), (BeliefInterval{0.1, 0.3}));
  EXPECT_EQ(belief->interval(1), (BeliefInterval{0.0, 1.0}));  // default
  EXPECT_EQ(belief->interval(2), (BeliefInterval{0.5, 0.5}));
  EXPECT_EQ(belief->interval(3), (BeliefInterval{0.0, 1.0}));
}

TEST(BeliefIoTest, RepeatedIdsIntersect) {
  std::istringstream in(
      "1 0.2 0.8\n"
      "1 0.5 0.9\n");
  auto belief = ReadBeliefFunction(in, 2);
  ASSERT_TRUE(belief.ok());
  EXPECT_EQ(belief->interval(1), (BeliefInterval{0.5, 0.8}));

  std::istringstream empty_inter(
      "0 0.1 0.2\n"
      "0 0.5 0.6\n");
  EXPECT_TRUE(ReadBeliefFunction(empty_inter, 1)
                  .status().IsInvalidArgument());
}

TEST(BeliefIoTest, RejectsMalformedLines) {
  {
    std::istringstream in("0 0.1\n");
    EXPECT_TRUE(ReadBeliefFunction(in, 2).status().IsInvalidArgument());
  }
  {
    std::istringstream in("0 0.1 0.2 junk\n");
    EXPECT_TRUE(ReadBeliefFunction(in, 2).status().IsInvalidArgument());
  }
  {
    std::istringstream in("7 0.1 0.2\n");
    EXPECT_TRUE(ReadBeliefFunction(in, 2).status().IsInvalidArgument());
  }
  {
    std::istringstream in("-1 0.1 0.2\n");
    EXPECT_TRUE(ReadBeliefFunction(in, 2).status().IsInvalidArgument());
  }
  {
    std::istringstream in("0 0.5 0.2\n");  // inverted
    EXPECT_TRUE(ReadBeliefFunction(in, 2).status().IsInvalidArgument());
  }
  {
    std::istringstream in("0 -0.1 0.2\n");
    EXPECT_TRUE(ReadBeliefFunction(in, 2).status().IsInvalidArgument());
  }
  {
    std::istringstream in("0 0.1 1.2\n");
    EXPECT_TRUE(ReadBeliefFunction(in, 2).status().IsInvalidArgument());
  }
}

TEST(BeliefIoTest, RoundTripPreservesIntervals) {
  auto table = FrequencyTable::FromSupports({3, 5, 7, 9, 11}, 20);
  ASSERT_TRUE(table.ok());
  auto belief = MakeCompliantIntervalBelief(*table, 0.07);
  ASSERT_TRUE(belief.ok());

  std::ostringstream out;
  ASSERT_TRUE(WriteBeliefFunction(*belief, out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadBeliefFunction(in, 5);
  ASSERT_TRUE(loaded.ok());
  for (ItemId x = 0; x < 5; ++x) {
    EXPECT_EQ(loaded->interval(x), belief->interval(x)) << "item " << x;
  }
}

TEST(BeliefIoTest, IgnorantIntervalsOmittedOnWrite) {
  auto belief = BeliefFunction::Create(
      {{0.0, 1.0}, {0.2, 0.4}, {0.0, 1.0}});
  ASSERT_TRUE(belief.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteBeliefFunction(*belief, out).ok());
  // Exactly one data line (plus two header comments).
  size_t data_lines = 0;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] != '#') ++data_lines;
  }
  EXPECT_EQ(data_lines, 1u);
}

TEST(BeliefIoTest, FileRoundTripAndErrors) {
  const std::string path = testing::TempDir() + "/belief_io_test.belief";
  BeliefFunction ignorant = MakeIgnorantBelief(3);
  ASSERT_TRUE(WriteBeliefFunctionFile(ignorant, path).ok());
  auto loaded = ReadBeliefFunctionFile(path, 3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(ReadBeliefFunctionFile("/no/such/file", 3)
                  .status().IsIOError());
  EXPECT_TRUE(WriteBeliefFunctionFile(ignorant, "/no/such/dir/f")
                  .IsIOError());
}

TEST(BeliefIoTest, FuzzedInputNeverCrashes) {
  // Deterministic fuzz: random byte soup must yield ok() or a clean
  // error, never UB (run under the normal test harness; crashes or
  // sanitizer reports fail the suite).
  Rng rng(0xf22);
  const char alphabet[] = "0123456789.-+eE #\n\t abcXYZ";
  for (int trial = 0; trial < 500; ++trial) {
    std::string soup;
    size_t len = rng.UniformUint64(200);
    for (size_t i = 0; i < len; ++i) {
      soup += alphabet[rng.UniformUint64(sizeof(alphabet) - 1)];
    }
    std::istringstream in(soup);
    auto result = ReadBeliefFunction(in, 8);
    if (result.ok()) {
      EXPECT_EQ(result->num_items(), 8u);
    }
  }
}

TEST(BeliefIoTest, FuzzedFimiStyleNumbersParse) {
  // Structured fuzz: syntactically valid lines with random values must
  // round-trip through validation consistently.
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    double a = rng.UniformDouble(-0.5, 1.5);
    double b = rng.UniformDouble(-0.5, 1.5);
    std::ostringstream line;
    line << rng.UniformInt(-2, 9) << ' ' << a << ' ' << b << '\n';
    std::istringstream in(line.str());
    auto result = ReadBeliefFunction(in, 8);
    long long item = -99;
    {
      std::istringstream reparse(line.str());
      reparse >> item;
    }
    bool valid = item >= 0 && item < 8 && a <= b && a >= 0.0 && b <= 1.0;
    EXPECT_EQ(result.ok(), valid) << line.str();
  }
}

}  // namespace
}  // namespace anonsafe
