#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "belief/belief_function.h"
#include "belief/builders.h"
#include "core/alpha_sweep.h"
#include "core/oestimate.h"
#include "data/frequency.h"
#include "exec/exec.h"
#include "exec/scratch.h"
#include "graph/bipartite_graph.h"
#include "graph/consistency.h"
#include "graph/matching_sampler.h"
#include "graph/permanent.h"
#include "graph/simd_kernels.h"
#include "util/cpu.h"
#include "util/rng.h"

// Differential tests pinning the reworked hot kernels (SIMD lane Ryser,
// dispatched sampler probes, CSR adjacency, cached α probes) against
// slow, obviously-correct reference implementations. The lane kernels
// promise a *bit-identical* double for every ISA tier and thread count;
// the textbook long-double reference is bitwise only while products stay
// exactly representable (n <= 12 conservatively), and within rounding
// slack beyond that.

namespace anonsafe {
namespace {

/// ISA tiers that are both supported by this CPU and compiled in; every
/// cross-ISA differential iterates these.
std::vector<cpu::Isa> AvailableIsas() {
  std::vector<cpu::Isa> isas;
  for (cpu::Isa isa :
       {cpu::Isa::kScalar, cpu::Isa::kAvx2, cpu::Isa::kAvx512}) {
    if (internal::KernelsFor(isa) != nullptr) isas.push_back(isa);
  }
  return isas;
}

// ------------------------------------------------------- reference Ryser

/// Textbook Ryser with Gray-code column updates and a long-double
/// accumulator: no lanes, no zero-row skipping. Its rounding differs from
/// the lane kernel once term products exceed 2^53, so bitwise comparisons
/// against it are restricted to small n.
double ReferenceRyser(const std::vector<uint64_t>& rows) {
  const size_t n = rows.size();
  if (n == 0) return 1.0;
  const uint64_t limit = 1ULL << n;
  std::vector<double> row_sums(n, 0.0);
  uint64_t gray = 0;
  long double total = 0.0L;
  for (uint64_t iter = 1; iter < limit; ++iter) {
    const uint64_t new_gray = iter ^ (iter >> 1);
    const uint64_t diff = gray ^ new_gray;
    const int col = std::countr_zero(diff);
    const double sign_col = (new_gray & diff) ? 1.0 : -1.0;
    for (size_t i = 0; i < n; ++i) {
      if ((rows[i] >> col) & 1) row_sums[i] += sign_col;
    }
    gray = new_gray;
    long double prod = 1.0L;
    for (size_t i = 0; i < n; ++i) prod *= row_sums[i];
    if ((n - static_cast<size_t>(std::popcount(new_gray))) & 1) {
      total -= prod;
    } else {
      total += prod;
    }
  }
  return static_cast<double>(total);
}

/// Independent evaluation of the lane kernel's exact floating-point DAG:
/// subsets are enumerated directly (row sums recomputed from scratch per
/// subset — no Gray-code increments, no tables, no skip counter), but
/// terms land in the same 8 per-lane Neumaier accumulators, lanes fold in
/// lane order, and chunk pairs fold in chunk order, mirroring
/// RyserChunkRanges / RyserImpl. Any correct lane kernel must reproduce
/// this bitwise at every n.
double ReferenceRyserLanes(const std::vector<uint64_t>& rows) {
  const size_t n = rows.size();
  if (n == 0) return 1.0;
  const auto ranges = RyserChunkRanges(n);
  std::vector<std::pair<double, double>> pairs;
  pairs.reserve(ranges.size());
  for (const auto& [begin, end] : ranges) {
    double lanes_s[internal::kRyserLanes] = {0.0};
    double lanes_c[internal::kRyserLanes] = {0.0};
    for (uint64_t iter = begin; iter < end; ++iter) {
      const uint64_t subset = iter ^ (iter >> 1);
      const size_t lane = iter % internal::kRyserLanes;
      double prod =
          static_cast<double>(std::popcount(rows[0] & subset));
      for (size_t i = 1; i < n; ++i) {
        prod *= static_cast<double>(std::popcount(rows[i] & subset));
      }
      const bool negative =
          ((n - static_cast<size_t>(std::popcount(subset))) & 1) != 0;
      internal::NeumaierAdd(&lanes_s[lane], &lanes_c[lane],
                            negative ? -prod : prod);
    }
    double fs = 0.0;
    double fc = 0.0;
    for (double s : lanes_s) internal::NeumaierAdd(&fs, &fc, s);
    for (double c : lanes_c) internal::NeumaierAdd(&fs, &fc, c);
    pairs.emplace_back(fs, fc);
  }
  if (pairs.size() == 1) return pairs[0].first + pairs[0].second;
  double fs = 0.0;
  double fc = 0.0;
  for (const auto& [s, c] : pairs) internal::NeumaierAdd(&fs, &fc, s);
  for (const auto& [s, c] : pairs) internal::NeumaierAdd(&fs, &fc, c);
  return fs + fc;
}

TEST(RyserDifferentialTest, RandomMatricesAllIsasBitwise) {
  const std::vector<cpu::Isa> isas = AvailableIsas();
  ASSERT_FALSE(isas.empty());
  exec::ExecContext ctx8(exec::ExecOptions{.threads = 8});
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 2 + rng.UniformUint64(15);  // 2..16
    // Sweep density across trials so both the dense product path and the
    // sparse zero-row skip path are exercised heavily.
    const double density = 0.1 + 0.8 * rng.UniformDouble();
    std::vector<uint64_t> rows(n, 0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (rng.Bernoulli(density)) rows[i] |= (1ULL << j);
      }
    }
    const double lanes_ref = ReferenceRyserLanes(rows);
    for (cpu::Isa isa : isas) {
      auto seq = PermanentRyserForIsa(rows, isa);
      ASSERT_TRUE(seq.ok()) << seq.status().ToString();
      EXPECT_EQ(*seq, lanes_ref)
          << "trial=" << trial << " n=" << n << " density=" << density
          << " isa=" << cpu::IsaName(isa);
      auto par = PermanentRyserForIsa(rows, isa, &ctx8);
      ASSERT_TRUE(par.ok());
      EXPECT_EQ(*par, lanes_ref)
          << "trial=" << trial << " n=" << n << " threads=8 isa="
          << cpu::IsaName(isa);
    }
    // Against the long-double textbook loop: bitwise while every term
    // product fits a double exactly (n <= 12: 12^12 < 2^53), within
    // compensated-summation slack beyond.
    const double textbook = ReferenceRyser(rows);
    if (n <= 12) {
      EXPECT_EQ(lanes_ref, textbook)
          << "trial=" << trial << " n=" << n << " density=" << density;
    } else {
      EXPECT_NEAR(lanes_ref, textbook,
                  1e-9 * std::max(1.0, std::fabs(textbook)))
          << "trial=" << trial << " n=" << n << " density=" << density;
    }
  }
}

TEST(RyserDifferentialTest, LargeMatricesAllIsasBitwise) {
  // The big-n path: chunked iteration spaces, high columns spanning the
  // full mask, dense products far beyond 2^53. Cross-ISA and cross-thread
  // bit-identity must hold all the way to kMaxPermanentN. (Excluded from
  // the TSan preset by name — 2^26 subsets under TSan is too slow.)
  const std::vector<cpu::Isa> isas = AvailableIsas();
  ASSERT_FALSE(isas.empty());
  exec::ExecContext ctx8(exec::ExecOptions{.threads = 8});
  Rng rng(4242);
  for (const size_t n : {size_t{20}, size_t{24}, size_t{26}}) {
    std::vector<uint64_t> rows(n, 0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (rng.Bernoulli(0.5)) rows[i] |= (1ULL << j);
      }
      // Guarantee a nonzero row so the product path stays hot.
      if (rows[i] == 0) rows[i] = 1ULL << (i % n);
    }
    auto first = PermanentRyserForIsa(rows, isas.front());
    ASSERT_TRUE(first.ok());
    for (cpu::Isa isa : isas) {
      auto seq = PermanentRyserForIsa(rows, isa);
      ASSERT_TRUE(seq.ok());
      EXPECT_EQ(*seq, *first) << "n=" << n << " isa=" << cpu::IsaName(isa);
      auto par = PermanentRyserForIsa(rows, isa, &ctx8);
      ASSERT_TRUE(par.ok());
      EXPECT_EQ(*par, *first)
          << "n=" << n << " threads=8 isa=" << cpu::IsaName(isa);
    }
  }
}

TEST(RyserDifferentialTest, ZeroRowAndZeroColumnMatrices) {
  // An all-zero row kills every subset: the skip path must still return
  // exactly 0.0, matching the reference.
  std::vector<uint64_t> rows = {0b1011, 0b0000, 0b1110, 0b0111};
  auto p = PermanentRyser(rows);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, 0.0);
  EXPECT_EQ(*p, ReferenceRyser(rows));

  // A zero column (no row contains column 2).
  std::vector<uint64_t> cols = {0b1011, 0b0011, 0b1010, 0b0011};
  auto q = PermanentRyser(cols);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, ReferenceRyser(cols));
}

TEST(RyserDifferentialTest, ParallelChunkingMatchesReference) {
  // n >= kRyserParallelMinN engages the chunked path; with and without a
  // thread pool the value must equal the lane reference exactly (and the
  // textbook loop within compensated-summation slack).
  Rng rng(7);
  const size_t n = 15;
  std::vector<uint64_t> rows(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.4)) rows[i] |= (1ULL << j);
    }
  }
  const double expected = ReferenceRyserLanes(rows);
  auto seq = PermanentRyser(rows);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, expected);
  exec::ExecContext ctx(exec::ExecOptions{.threads = 4});
  auto par = PermanentRyser(rows, &ctx);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(*par, expected);
  const double textbook = ReferenceRyser(rows);
  EXPECT_NEAR(expected, textbook, 1e-9 * std::max(1.0, std::fabs(textbook)));
}

TEST(RyserDifferentialTest, ChunkRangesCoverTheIterationSpace) {
  EXPECT_TRUE(RyserChunkRanges(0).empty());
  const auto small = RyserChunkRanges(5);
  ASSERT_EQ(small.size(), 1u);
  EXPECT_EQ(small[0], (std::pair<uint64_t, uint64_t>{1, 32}));
  const auto big = RyserChunkRanges(14);
  ASSERT_EQ(big.size(), kRyserChunks);
  uint64_t next = 1;
  for (const auto& [begin, end] : big) {
    EXPECT_EQ(begin, next);
    EXPECT_LT(begin, end);
    next = end;
  }
  EXPECT_EQ(next, uint64_t{1} << 14);
}

TEST(PermanentBatchTest, MatchesSinglesBitwise) {
  Rng rng(31337);
  std::vector<std::vector<uint64_t>> matrices;
  for (const size_t n : {size_t{0}, size_t{1}, size_t{4}, size_t{8},
                         size_t{12}, size_t{15}}) {
    std::vector<uint64_t> rows(n, 0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (rng.Bernoulli(0.6)) rows[i] |= (1ULL << j);
      }
      rows[i] |= 1ULL << i;  // forced diagonal: permanent stays positive
    }
    matrices.push_back(std::move(rows));
  }
  auto batch = PermanentBatch(matrices);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), matrices.size());
  for (size_t i = 0; i < matrices.size(); ++i) {
    auto single = PermanentRyser(matrices[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batch)[i], *single) << "matrix " << i;
  }
}

TEST(PermanentBatchTest, RejectsAnyInvalidMatrixUpfront) {
  std::vector<std::vector<uint64_t>> matrices;
  matrices.push_back({0b11, 0b11});
  matrices.push_back({0b111, 0b101});  // mask wider than the 2x2 matrix
  EXPECT_FALSE(PermanentBatch(matrices).ok());
  matrices[1] = std::vector<uint64_t>(kMaxPermanentN + 1, 1);
  EXPECT_FALSE(PermanentBatch(matrices).ok());
  matrices.pop_back();
  auto ok = PermanentBatch(matrices);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)[0], 2.0);
}

TEST(RyserDifferentialTest, DiagonalAbsentMinorPath) {
  // ExactExpectedCracksByPermanent drops row/column x per item; items with
  // no diagonal edge contribute 0 and must not build a minor at all.
  // Reference: explicit minors via the same formula.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 3 + rng.UniformUint64(6);  // 3..8
    std::vector<std::vector<ItemId>> adj(n);
    std::vector<uint64_t> rows(n, 0);
    for (size_t a = 0; a < n; ++a) {
      for (size_t x = 0; x < n; ++x) {
        // Keep the diagonal only sometimes; ensure nonempty rows.
        const bool edge = (a == x) ? rng.Bernoulli(0.6) : rng.Bernoulli(0.7);
        if (edge) {
          adj[a].push_back(static_cast<ItemId>(x));
          rows[a] |= (1ULL << x);
        }
      }
      if (adj[a].empty()) {
        const auto x = static_cast<ItemId>((a + 1) % n);
        adj[a].push_back(x);
        std::sort(adj[a].begin(), adj[a].end());
        rows[a] |= (1ULL << x);
      }
    }
    auto graph = BipartiteGraph::FromAdjacency(n, adj);
    ASSERT_TRUE(graph.ok());
    const double total = ReferenceRyser(rows);
    auto cracked = ExactExpectedCracksByPermanent(*graph);
    if (total <= 0.0) {
      EXPECT_FALSE(cracked.ok());
      continue;
    }
    ASSERT_TRUE(cracked.ok()) << cracked.status().ToString();
    // Per-item ratios folded with the library's fixed-order pairwise sum
    // so the comparison stays bitwise.
    std::vector<double> ratios(n, 0.0);
    for (size_t x = 0; x < n; ++x) {
      if (!(rows[x] & (1ULL << x))) continue;
      std::vector<uint64_t> minor;
      const uint64_t low_mask = (1ULL << x) - 1;
      for (size_t i = 0; i < n; ++i) {
        if (i == x) continue;
        uint64_t row = rows[i];
        minor.push_back((row & low_mask) | ((row >> (x + 1)) << x));
      }
      ratios[x] = ReferenceRyser(minor) / total;
    }
    EXPECT_EQ(*cracked, exec::PairwiseSum(ratios))
        << "trial=" << trial << " n=" << n;
  }
}

// --------------------------------------------------------- reference CSR

Result<FrequencyGroups> GroupsFromSupports(std::vector<SupportCount> s,
                                           size_t m) {
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyTable t,
                            FrequencyTable::FromSupports(std::move(s), m));
  return FrequencyGroups::Build(t);
}

/// vector<vector> adjacency built by direct stabbing — what BipartiteGraph
/// stored before the CSR layout.
struct ReferenceAdjacency {
  std::vector<std::vector<ItemId>> items_of_anon;
  std::vector<std::vector<ItemId>> anons_of_item;
  size_t num_edges = 0;
};

ReferenceAdjacency BuildReferenceAdjacency(const FrequencyGroups& observed,
                                           const BeliefFunction& belief) {
  const size_t n = observed.num_items();
  ReferenceAdjacency ref;
  ref.items_of_anon.resize(n);
  ref.anons_of_item.resize(n);
  for (ItemId x = 0; x < n; ++x) {
    const BeliefInterval& iv = belief.interval(x);
    size_t lo = 0, hi = 0;
    if (!observed.StabRange(iv.lo, iv.hi, &lo, &hi)) continue;
    for (size_t g = lo; g <= hi; ++g) {
      for (ItemId a : observed.group_items(g)) {
        ref.items_of_anon[a].push_back(x);
        ref.anons_of_item[x].push_back(a);
        ++ref.num_edges;
      }
    }
  }
  for (auto& row : ref.items_of_anon) std::sort(row.begin(), row.end());
  for (auto& row : ref.anons_of_item) std::sort(row.begin(), row.end());
  return ref;
}

TEST(CsrGraphDifferentialTest, RandomGraphsMatchReferenceAdjacency) {
  Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 2 + rng.UniformUint64(15);  // 2..16
    const size_t m = 100;
    std::vector<SupportCount> supports(n);
    for (size_t i = 0; i < n; ++i) {
      supports[i] = static_cast<SupportCount>(1 + rng.UniformUint64(m));
    }
    auto groups = GroupsFromSupports(supports, m);
    ASSERT_TRUE(groups.ok());
    std::vector<BeliefInterval> intervals(n);
    for (size_t i = 0; i < n; ++i) {
      const double f =
          static_cast<double>(supports[i]) / static_cast<double>(m);
      // A mix of wide, tight, and non-stabbing intervals.
      const double below = 0.3 * rng.UniformDouble();
      const double above = 0.3 * rng.UniformDouble();
      double lo = std::max(0.0, f - below);
      double hi = std::min(1.0, f + above);
      if (rng.Bernoulli(0.15)) {  // displaced: may stab nothing
        lo = std::min(1.0, f + 0.001);
        hi = std::min(1.0, lo + 0.002);
      }
      intervals[i] = {lo, hi};
    }
    auto belief = BeliefFunction::Create(intervals);
    ASSERT_TRUE(belief.ok());
    auto graph = BipartiteGraph::Build(*groups, *belief);
    ASSERT_TRUE(graph.ok());
    const ReferenceAdjacency ref = BuildReferenceAdjacency(*groups, *belief);

    EXPECT_EQ(graph->num_edges(), ref.num_edges) << "trial=" << trial;
    for (ItemId a = 0; a < n; ++a) {
      BipartiteGraph::AdjacencyRow row = graph->items_of_anon(a);
      ASSERT_EQ(row.size(), ref.items_of_anon[a].size())
          << "trial=" << trial << " anon=" << a;
      EXPECT_TRUE(std::equal(row.begin(), row.end(),
                             ref.items_of_anon[a].begin()));
      EXPECT_EQ(graph->anon_degree(a), ref.items_of_anon[a].size());
    }
    for (ItemId x = 0; x < n; ++x) {
      BipartiteGraph::AdjacencyRow row = graph->anons_of_item(x);
      ASSERT_EQ(row.size(), ref.anons_of_item[x].size())
          << "trial=" << trial << " item=" << x;
      EXPECT_TRUE(std::equal(row.begin(), row.end(),
                             ref.anons_of_item[x].begin()));
      EXPECT_EQ(graph->item_outdegree(x), ref.anons_of_item[x].size());
    }
    // Row masks mirror the adjacency exactly (n <= 16 here).
    auto masks = graph->ToRowMasks();
    ASSERT_TRUE(masks.ok());
    for (ItemId a = 0; a < n; ++a) {
      uint64_t expected_mask = 0;
      for (ItemId x : ref.items_of_anon[a]) expected_mask |= (1ULL << x);
      EXPECT_EQ((*masks)[a], expected_mask);
      for (ItemId x = 0; x < n; ++x) {
        EXPECT_EQ(graph->HasEdge(a, x),
                  std::binary_search(ref.items_of_anon[a].begin(),
                                     ref.items_of_anon[a].end(), x));
      }
    }
    // The compressed structure agrees on outdegrees (pre-propagation).
    auto cs = ConsistencyStructure::Build(*groups, *belief);
    ASSERT_TRUE(cs.ok());
    for (ItemId x = 0; x < n; ++x) {
      EXPECT_EQ(cs->outdegree(x), ref.anons_of_item[x].size());
    }
  }
}

TEST(CsrGraphDifferentialTest, RowMaskBit63EdgeCase) {
  // 64 items: masks must use the full word, including bit 63.
  const size_t n = 64;
  std::vector<std::vector<ItemId>> adj(n);
  adj[0] = {0, 63};
  adj[63] = {62, 63};
  for (size_t a = 1; a < 63; ++a) adj[a] = {static_cast<ItemId>(a)};
  auto graph = BipartiteGraph::FromAdjacency(n, adj);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->has_row_masks());
  auto masks = graph->ToRowMasks();
  ASSERT_TRUE(masks.ok());
  EXPECT_EQ((*masks)[0], 1ULL | (1ULL << 63));
  EXPECT_EQ((*masks)[63], (1ULL << 62) | (1ULL << 63));
  EXPECT_TRUE(graph->HasEdge(0, 63));
  EXPECT_TRUE(graph->HasEdge(63, 63));
  EXPECT_FALSE(graph->HasEdge(63, 0));

  // 65 items: no masks; binary-search edge tests still work and
  // ToRowMasks reports OutOfRange.
  std::vector<std::vector<ItemId>> big(65);
  big[64] = {0, 64};
  auto wide = BipartiteGraph::FromAdjacency(65, big);
  ASSERT_TRUE(wide.ok());
  EXPECT_FALSE(wide->has_row_masks());
  EXPECT_TRUE(wide->HasEdge(64, 64));
  EXPECT_FALSE(wide->HasEdge(64, 1));
  EXPECT_FALSE(wide->ToRowMasks().ok());
}

// ------------------------------------------------ propagation structures

TEST(ConsistencyDifferentialTest, ItemSideForcingCascade) {
  // Staircase: n singleton groups, item i covers groups [0, i]. Item 0 is
  // forced first; each forcing empties one group and makes the next item
  // degree-1 in turn — a full cascade through FindFirstNonEmptyGroup with
  // an ever-longer emptied prefix.
  const size_t n = 48;
  const size_t m = 1000;
  std::vector<SupportCount> supports(n);
  std::vector<BeliefInterval> intervals(n);
  for (size_t i = 0; i < n; ++i) {
    supports[i] = static_cast<SupportCount>(10 * (i + 1));
    const double hi = static_cast<double>(10 * (i + 1)) / m;
    intervals[i] = {0.0, hi + 1e-9};
  }
  auto groups = GroupsFromSupports(supports, m);
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->num_groups(), n);
  auto belief = BeliefFunction::Create(intervals);
  ASSERT_TRUE(belief.ok());
  auto cs = ConsistencyStructure::Build(*groups, *belief);
  ASSERT_TRUE(cs.ok());
  auto stats = cs->PropagateDegreeOne();
  EXPECT_FALSE(stats.contradiction);
  EXPECT_EQ(stats.forced_pairs, n);
  for (ItemId x = 0; x < n; ++x) {
    EXPECT_TRUE(cs->item_forced(x)) << "item " << x;
    EXPECT_EQ(cs->outdegree(x), 1u);
  }
  for (size_t g = 0; g < n; ++g) EXPECT_EQ(cs->group_remaining(g), 0u);
}

TEST(ConsistencyDifferentialTest, AnonSideForcingCascade) {
  // Reversed staircase: item i covers groups [i, n-1], so group 0 is
  // covered by exactly one item while every item (but the last) still has
  // many candidates. The cascade runs entirely through the anonymized-side
  // rule and its segment-tree locate.
  const size_t n = 48;
  const size_t m = 1000;
  std::vector<SupportCount> supports(n);
  std::vector<BeliefInterval> intervals(n);
  for (size_t i = 0; i < n; ++i) {
    supports[i] = static_cast<SupportCount>(10 * (i + 1));
    const double lo = static_cast<double>(10 * (i + 1)) / m;
    intervals[i] = {lo - 1e-9, 1.0};
  }
  auto groups = GroupsFromSupports(supports, m);
  ASSERT_TRUE(groups.ok());
  auto belief = BeliefFunction::Create(intervals);
  ASSERT_TRUE(belief.ok());
  auto cs = ConsistencyStructure::Build(*groups, *belief);
  ASSERT_TRUE(cs.ok());
  auto stats = cs->PropagateDegreeOne();
  EXPECT_FALSE(stats.contradiction);
  EXPECT_EQ(stats.forced_pairs, n);
  for (ItemId x = 0; x < n; ++x) {
    EXPECT_TRUE(cs->item_forced(x)) << "item " << x;
  }
}

TEST(ConsistencyDifferentialTest, BeliefGroupsMatchesMapReference) {
  Rng rng(321);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.UniformUint64(30);
    const size_t m = 50;
    std::vector<SupportCount> supports(n);
    for (size_t i = 0; i < n; ++i) {
      supports[i] = static_cast<SupportCount>(1 + rng.UniformUint64(m));
    }
    auto groups = GroupsFromSupports(supports, m);
    ASSERT_TRUE(groups.ok());
    std::vector<BeliefInterval> intervals(n);
    for (size_t i = 0; i < n; ++i) {
      const double f =
          static_cast<double>(supports[i]) / static_cast<double>(m);
      if (rng.Bernoulli(0.2)) {
        // Displaced above f (likely dead); stay inside [0, 1].
        const double lo = std::min(1.0, f + 0.001);
        intervals[i] = {lo, std::min(1.0, lo + 0.001)};
      } else {
        // Coarse bounds so distinct items often share a range.
        const double lo = 0.2 * std::floor(f / 0.2);
        intervals[i] = {lo, std::min(1.0, lo + 0.2 + 0.1 * (i % 2))};
      }
    }
    auto belief = BeliefFunction::Create(intervals);
    ASSERT_TRUE(belief.ok());
    auto cs = ConsistencyStructure::Build(*groups, *belief);
    ASSERT_TRUE(cs.ok());

    // Reference: the previous std::map-based grouping on stab ranges.
    std::map<std::pair<size_t, size_t>, std::vector<ItemId>> by_range;
    std::vector<ItemId> dead;
    for (ItemId x = 0; x < n; ++x) {
      size_t lo = 0, hi = 0;
      if (groups->StabRange(intervals[x].lo, intervals[x].hi, &lo, &hi)) {
        by_range[{lo, hi}].push_back(x);
      } else {
        dead.push_back(x);
      }
    }
    std::vector<std::vector<ItemId>> expected;
    for (auto& [range, members] : by_range) expected.push_back(members);
    if (!dead.empty()) expected.push_back(dead);

    EXPECT_EQ(cs->BeliefGroups(), expected) << "trial=" << trial;
  }
}

// ------------------------------------------------------ cached α probes

TEST(AlphaProbeCacheTest, CachedSweepIsBitIdenticalToUncached) {
  const size_t n = 60;
  const size_t m = 500;
  std::vector<SupportCount> supports(n);
  Rng rng(11);
  for (size_t i = 0; i < n; ++i) {
    supports[i] = static_cast<SupportCount>(1 + rng.UniformUint64(m));
  }
  auto table = FrequencyTable::FromSupports(supports, m);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto base = MakeCompliantIntervalBelief(*table, groups.MedianGap());
  ASSERT_TRUE(base.ok());
  auto sweep = AlphaCompliancySweep::Create(*table, *base, 5, 17);
  ASSERT_TRUE(sweep.ok());
  const AlphaCompliancySweep::ProbeCache cache =
      sweep->MakeProbeCache(groups);

  std::vector<bool> interest(n, false);
  for (size_t i = 0; i < n; i += 3) interest[i] = true;

  for (double alpha : {0.0, 0.125, 0.3, 0.5, 0.8125, 1.0}) {
    auto plain = sweep->AverageOEstimate(groups, alpha);
    auto cached = sweep->AverageOEstimate(groups, cache, alpha);
    ASSERT_TRUE(plain.ok() && cached.ok());
    EXPECT_EQ(*plain, *cached) << "alpha=" << alpha;

    auto plain_items =
        sweep->AverageOEstimateForItems(groups, alpha, interest);
    auto cached_items =
        sweep->AverageOEstimateForItems(groups, cache, alpha, interest);
    ASSERT_TRUE(plain_items.ok() && cached_items.ok());
    EXPECT_EQ(*plain_items, *cached_items) << "alpha=" << alpha;

    // Thread count must not perturb the cached path either.
    exec::ExecContext ctx(exec::ExecOptions{.threads = 4});
    auto cached_mt = sweep->AverageOEstimate(groups, cache, alpha, {}, &ctx);
    ASSERT_TRUE(cached_mt.ok());
    EXPECT_EQ(*cached_mt, *cached) << "alpha=" << alpha;
  }

  // A cache of the wrong size is rejected rather than misused.
  AlphaCompliancySweep::ProbeCache bad;
  bad.base.resize(n - 1);
  bad.displaced.resize(n - 1);
  EXPECT_FALSE(sweep->AverageOEstimate(groups, bad, 0.5).ok());
}

TEST(AlphaProbeCacheTest, FromRangesRejectsMalformedInput) {
  auto groups = GroupsFromSupports({10, 20, 30}, 100);
  ASSERT_TRUE(groups.ok());
  std::vector<ItemStabRange> ranges(3);
  ranges[0] = {true, 0, 1};
  ranges[1] = {false, 0, 0};
  ranges[2] = {true, 2, 2};
  std::vector<bool> all(3, true);
  auto ok = ComputeOEstimateFromRanges(*groups, ranges, all);
  ASSERT_TRUE(ok.ok());

  ranges[2] = {true, 2, 5};  // hi outside the group domain
  EXPECT_FALSE(ComputeOEstimateFromRanges(*groups, ranges, all).ok());
  ranges[2] = {true, 2, 1};  // inverted
  EXPECT_FALSE(ComputeOEstimateFromRanges(*groups, ranges, all).ok());
  ranges.pop_back();  // wrong arity
  std::vector<bool> two(2, true);
  EXPECT_FALSE(ComputeOEstimateFromRanges(*groups, ranges, two).ok());
}

// ----------------------------------------------------------- scratch pool

TEST(ScratchPoolTest, ReusesRetiredBuffer) {
  exec::ScratchVec<double>::DrainThreadFreeList();
  const double* retired = nullptr;
  {
    exec::ScratchVec<double> a(1024);
    retired = a.data();
  }
  exec::ScratchVec<double> b(1024);
  EXPECT_EQ(b.data(), retired);
  exec::ScratchVec<double>::DrainThreadFreeList();
}

TEST(ScratchPoolTest, AlignedScratchIs64ByteAligned) {
  exec::AlignedScratchVec<double>::DrainThreadFreeList();
  for (const size_t n : {size_t{1}, size_t{7}, size_t{37}, size_t{1024}}) {
    exec::AlignedScratchVec<double> v(n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % 64, 0u) << "n=" << n;
  }
  // Aligned buffers pool separately from plain ones: retiring an aligned
  // buffer must never hand it to a plain ScratchVec<double> (or vice
  // versa), so the plain free list stays empty here.
  exec::ScratchVec<double>::DrainThreadFreeList();
  { exec::AlignedScratchVec<double> a(64); }
  exec::ScratchVec<double> b(64);
  exec::AlignedScratchVec<double> c(64);
  EXPECT_NE(static_cast<const void*>(b.data()),
            static_cast<const void*>(c.data()));
  exec::AlignedScratchVec<double>::DrainThreadFreeList();
  exec::ScratchVec<double>::DrainThreadFreeList();
}

TEST(ScratchPoolTest, OversizedBuffersAreNotPooled) {
  exec::ScratchVec<double>::DrainThreadFreeList();
  const size_t huge = exec::kMaxRetainedBytes / sizeof(double) + 1;
  const double* retired = nullptr;
  {
    exec::ScratchVec<double> a(huge);
    retired = a.data();
  }
  exec::ScratchVec<double> b;
  EXPECT_EQ(b.size(), 0u);
  // The free list was empty, so b's buffer cannot be the huge one.
  b.resize(8);
  (void)retired;
  exec::ScratchVec<double>::DrainThreadFreeList();
}

// ------------------------------------------------- sampler probe kernels

size_t RefFixedPoints(const std::vector<ItemId>& v, const uint8_t* interest) {
  size_t count = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] == static_cast<ItemId>(i) &&
        (interest == nullptr || interest[i] != 0)) {
      ++count;
    }
  }
  return count;
}

TEST(SamplerProbeDifferentialTest, CountFixedPointsAllIsas) {
  const std::vector<cpu::Isa> isas = AvailableIsas();
  Rng rng(808);
  // Sizes straddling every vector width and tail shape (0, partial
  // blocks, exact blocks, one past, and large).
  for (const size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                         size_t{9}, size_t{15}, size_t{16}, size_t{17},
                         size_t{31}, size_t{64}, size_t{100}, size_t{1000}}) {
    std::vector<ItemId> v(n);
    std::vector<uint8_t> interest(n);
    for (size_t i = 0; i < n; ++i) {
      // ~half the positions are fixed points; others point elsewhere or
      // are unmatched (kInvalidItem never equals an index).
      v[i] = rng.Bernoulli(0.5) ? static_cast<ItemId>(i)
             : rng.Bernoulli(0.5)
                 ? static_cast<ItemId>(rng.UniformUint64(n))
                 : kInvalidItem;
      interest[i] = rng.Bernoulli(0.5) ? 1 : 0;
    }
    const size_t want_all = RefFixedPoints(v, nullptr);
    const size_t want_masked = RefFixedPoints(v, interest.data());
    for (cpu::Isa isa : isas) {
      const internal::KernelVTable* k = internal::KernelsFor(isa);
      ASSERT_NE(k, nullptr);
      EXPECT_EQ(k->count_fixed_points(v.data(), nullptr, n), want_all)
          << "n=" << n << " isa=" << cpu::IsaName(isa);
      EXPECT_EQ(k->count_fixed_points(v.data(), interest.data(), n),
                want_masked)
          << "n=" << n << " isa=" << cpu::IsaName(isa) << " masked";
    }
  }
}

TEST(SamplerProbeDifferentialTest, CountConsistentIdentityAllIsas) {
  const std::vector<cpu::Isa> isas = AvailableIsas();
  Rng rng(909);
  for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4},
                         size_t{5}, size_t{8}, size_t{9}, size_t{16},
                         size_t{17}, size_t{100}, size_t{1000}}) {
    std::vector<size_t> group(n), lo(n), hi(n);
    std::vector<uint8_t> has_range(n);
    for (size_t i = 0; i < n; ++i) {
      group[i] = rng.UniformUint64(20);
      lo[i] = rng.UniformUint64(20);
      hi[i] = lo[i] + rng.UniformUint64(5);
      has_range[i] = rng.Bernoulli(0.8) ? 1 : 0;
    }
    size_t want = 0;
    for (size_t i = 0; i < n; ++i) {
      if (has_range[i] != 0 && lo[i] <= group[i] && group[i] <= hi[i]) {
        ++want;
      }
    }
    for (cpu::Isa isa : isas) {
      const internal::KernelVTable* k = internal::KernelsFor(isa);
      ASSERT_NE(k, nullptr);
      EXPECT_EQ(k->count_consistent_identity(group.data(), lo.data(),
                                             hi.data(), has_range.data(), n),
                want)
          << "n=" << n << " isa=" << cpu::IsaName(isa);
    }
  }
}

// ----------------------------------------------------------- dispatch

TEST(SimdDispatchTest, ParseIsaNames) {
  cpu::Isa isa = cpu::Isa::kAvx512;
  EXPECT_TRUE(cpu::ParseIsaName("scalar", &isa));
  EXPECT_EQ(isa, cpu::Isa::kScalar);
  EXPECT_TRUE(cpu::ParseIsaName("avx2", &isa));
  EXPECT_EQ(isa, cpu::Isa::kAvx2);
  EXPECT_TRUE(cpu::ParseIsaName("avx512", &isa));
  EXPECT_EQ(isa, cpu::Isa::kAvx512);
  EXPECT_FALSE(cpu::ParseIsaName("sse9", &isa));
  EXPECT_FALSE(cpu::ParseIsaName("", &isa));
}

TEST(SimdDispatchTest, ActiveKernelMatchesActiveIsa) {
  // Scalar is always supported and compiled in.
  EXPECT_TRUE(cpu::IsaSupported(cpu::Isa::kScalar));
  ASSERT_NE(internal::KernelsFor(cpu::Isa::kScalar), nullptr);
  // The resolved vtable runs the active tier whenever that tier's TU is
  // available, and never a tier above it (ANONSAFE_FORCE_ISA demotions
  // included — run_all.sh re-runs this binary under each forced value).
  const internal::KernelVTable& k = internal::Kernels();
  EXPECT_TRUE(cpu::IsaSupported(k.isa));
  EXPECT_LE(static_cast<int>(k.isa), static_cast<int>(cpu::ActiveIsa()));
  if (internal::KernelsFor(cpu::ActiveIsa()) != nullptr) {
    EXPECT_EQ(k.isa, cpu::ActiveIsa());
    EXPECT_STREQ(k.name, cpu::IsaName(cpu::ActiveIsa()));
  }
}

TEST(SimdDispatchTest, ConcurrentFirstUseIsRaceFree) {
  // Dispatch resolution is a magic static; hammer it from 8 threads (the
  // TSan preset runs this binary, so an init race would be reported).
  // Each thread also runs a small permanent through the resolved kernel.
  const std::vector<uint64_t> rows = {0b1101, 0b0111, 0b1011, 0b1110};
  auto expect = PermanentRyser(rows);
  ASSERT_TRUE(expect.ok());
  std::vector<std::thread> threads;
  std::vector<const internal::KernelVTable*> seen(8, nullptr);
  std::vector<double> values(8, 0.0);
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      seen[t] = &internal::Kernels();
      auto p = PermanentRyser(rows);
      values[t] = p.ok() ? *p : -1.0;
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t t = 0; t < 8; ++t) {
    EXPECT_EQ(seen[t], &internal::Kernels());
    EXPECT_EQ(values[t], *expect);
  }
}

// --------------------------------------------------------------- burn-in

TEST(SamplerOptionsTest, EffectiveBurnInClampsOverflowAndNaN) {
  SamplerOptions options;
  options.burn_in_sweeps = 300;
  options.burn_in_scale = 2.0;
  EXPECT_EQ(options.EffectiveBurnIn(100), 300u);   // floor wins
  EXPECT_EQ(options.EffectiveBurnIn(1000), 2000u); // scaled wins
  EXPECT_EQ(options.EffectiveBurnIn(0), 300u);

  options.burn_in_scale = 0.0;
  EXPECT_EQ(options.EffectiveBurnIn(std::numeric_limits<size_t>::max()),
            300u);

  // Products beyond the size_t range clamp instead of invoking UB.
  options.burn_in_scale = 1e300;
  EXPECT_EQ(options.EffectiveBurnIn(1000), kMaxBurnInSweeps);
  options.burn_in_scale = std::numeric_limits<double>::infinity();
  EXPECT_EQ(options.EffectiveBurnIn(1), kMaxBurnInSweeps);

  // A NaN product falls back to the unscaled floor.
  options.burn_in_scale = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(options.EffectiveBurnIn(1000), 300u);
}

TEST(SamplerOptionsTest, CreateRejectsNonFiniteBurnInScale) {
  auto table = FrequencyTable::FromSupports({10, 20, 30}, 100);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto belief = MakeCompliantIntervalBelief(*table, 0.01);
  ASSERT_TRUE(belief.ok());

  SamplerOptions options;
  options.burn_in_scale = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(MatchingSampler::Create(groups, *belief, options).ok());
  options.burn_in_scale = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(MatchingSampler::Create(groups, *belief, options).ok());
  options.burn_in_scale = -1.0;
  EXPECT_FALSE(MatchingSampler::Create(groups, *belief, options).ok());
  options.burn_in_scale = 2.0;
  EXPECT_TRUE(MatchingSampler::Create(groups, *belief, options).ok());
}

}  // namespace
}  // namespace anonsafe
