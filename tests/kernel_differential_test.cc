#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "belief/belief_function.h"
#include "belief/builders.h"
#include "core/alpha_sweep.h"
#include "core/oestimate.h"
#include "data/frequency.h"
#include "exec/exec.h"
#include "exec/scratch.h"
#include "graph/bipartite_graph.h"
#include "graph/consistency.h"
#include "graph/matching_sampler.h"
#include "graph/permanent.h"
#include "util/rng.h"

// Differential tests pinning the reworked hot kernels (masked Ryser with
// zero-row skipping, CSR adjacency, cached α probes) against slow,
// obviously-correct reference implementations. Everything here demands
// *bit-identical* doubles: all intermediate quantities are exact small
// integers, so any correct evaluation order yields the same value.

namespace anonsafe {
namespace {

// ------------------------------------------------------- reference Ryser

/// Textbook Ryser with Gray-code column updates: no column masks, no
/// zero-row skipping — every subset's product is computed over all rows.
double ReferenceRyser(const std::vector<uint64_t>& rows) {
  const size_t n = rows.size();
  if (n == 0) return 1.0;
  const uint64_t limit = 1ULL << n;
  std::vector<double> row_sums(n, 0.0);
  uint64_t gray = 0;
  long double total = 0.0L;
  for (uint64_t iter = 1; iter < limit; ++iter) {
    const uint64_t new_gray = iter ^ (iter >> 1);
    const uint64_t diff = gray ^ new_gray;
    const int col = std::countr_zero(diff);
    const double sign_col = (new_gray & diff) ? 1.0 : -1.0;
    for (size_t i = 0; i < n; ++i) {
      if ((rows[i] >> col) & 1) row_sums[i] += sign_col;
    }
    gray = new_gray;
    long double prod = 1.0L;
    for (size_t i = 0; i < n; ++i) prod *= row_sums[i];
    if ((n - static_cast<size_t>(std::popcount(new_gray))) & 1) {
      total -= prod;
    } else {
      total += prod;
    }
  }
  return static_cast<double>(total);
}

TEST(RyserDifferentialTest, RandomMatricesMatchReferenceBitwise) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 2 + rng.UniformUint64(15);  // 2..16
    // Sweep density across trials so both the dense product path and the
    // sparse zero-row skip path are exercised heavily.
    const double density = 0.1 + 0.8 * rng.UniformDouble();
    std::vector<uint64_t> rows(n, 0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (rng.Bernoulli(density)) rows[i] |= (1ULL << j);
      }
    }
    auto fast = PermanentRyser(rows);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    EXPECT_EQ(*fast, ReferenceRyser(rows))
        << "trial=" << trial << " n=" << n << " density=" << density;
  }
}

TEST(RyserDifferentialTest, ZeroRowAndZeroColumnMatrices) {
  // An all-zero row kills every subset: the skip path must still return
  // exactly 0.0, matching the reference.
  std::vector<uint64_t> rows = {0b1011, 0b0000, 0b1110, 0b0111};
  auto p = PermanentRyser(rows);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, 0.0);
  EXPECT_EQ(*p, ReferenceRyser(rows));

  // A zero column (no row contains column 2).
  std::vector<uint64_t> cols = {0b1011, 0b0011, 0b1010, 0b0011};
  auto q = PermanentRyser(cols);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, ReferenceRyser(cols));
}

TEST(RyserDifferentialTest, ParallelChunkingMatchesReference) {
  // n >= kRyserParallelMinN engages the chunked path; with and without a
  // thread pool the value must equal the single-pass reference exactly.
  Rng rng(7);
  const size_t n = 15;
  std::vector<uint64_t> rows(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.4)) rows[i] |= (1ULL << j);
    }
  }
  const double expected = ReferenceRyser(rows);
  auto seq = PermanentRyser(rows);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, expected);
  exec::ExecContext ctx(exec::ExecOptions{.threads = 4});
  auto par = PermanentRyser(rows, &ctx);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(*par, expected);
}

TEST(RyserDifferentialTest, DiagonalAbsentMinorPath) {
  // ExactExpectedCracksByPermanent drops row/column x per item; items with
  // no diagonal edge contribute 0 and must not build a minor at all.
  // Reference: explicit minors via the same formula.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 3 + rng.UniformUint64(6);  // 3..8
    std::vector<std::vector<ItemId>> adj(n);
    std::vector<uint64_t> rows(n, 0);
    for (size_t a = 0; a < n; ++a) {
      for (size_t x = 0; x < n; ++x) {
        // Keep the diagonal only sometimes; ensure nonempty rows.
        const bool edge = (a == x) ? rng.Bernoulli(0.6) : rng.Bernoulli(0.7);
        if (edge) {
          adj[a].push_back(static_cast<ItemId>(x));
          rows[a] |= (1ULL << x);
        }
      }
      if (adj[a].empty()) {
        const auto x = static_cast<ItemId>((a + 1) % n);
        adj[a].push_back(x);
        std::sort(adj[a].begin(), adj[a].end());
        rows[a] |= (1ULL << x);
      }
    }
    auto graph = BipartiteGraph::FromAdjacency(n, adj);
    ASSERT_TRUE(graph.ok());
    const double total = ReferenceRyser(rows);
    auto cracked = ExactExpectedCracksByPermanent(*graph);
    if (total <= 0.0) {
      EXPECT_FALSE(cracked.ok());
      continue;
    }
    ASSERT_TRUE(cracked.ok()) << cracked.status().ToString();
    // Per-item ratios folded with the library's fixed-order pairwise sum
    // so the comparison stays bitwise.
    std::vector<double> ratios(n, 0.0);
    for (size_t x = 0; x < n; ++x) {
      if (!(rows[x] & (1ULL << x))) continue;
      std::vector<uint64_t> minor;
      const uint64_t low_mask = (1ULL << x) - 1;
      for (size_t i = 0; i < n; ++i) {
        if (i == x) continue;
        uint64_t row = rows[i];
        minor.push_back((row & low_mask) | ((row >> (x + 1)) << x));
      }
      ratios[x] = ReferenceRyser(minor) / total;
    }
    EXPECT_EQ(*cracked, exec::PairwiseSum(ratios))
        << "trial=" << trial << " n=" << n;
  }
}

// --------------------------------------------------------- reference CSR

Result<FrequencyGroups> GroupsFromSupports(std::vector<SupportCount> s,
                                           size_t m) {
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyTable t,
                            FrequencyTable::FromSupports(std::move(s), m));
  return FrequencyGroups::Build(t);
}

/// vector<vector> adjacency built by direct stabbing — what BipartiteGraph
/// stored before the CSR layout.
struct ReferenceAdjacency {
  std::vector<std::vector<ItemId>> items_of_anon;
  std::vector<std::vector<ItemId>> anons_of_item;
  size_t num_edges = 0;
};

ReferenceAdjacency BuildReferenceAdjacency(const FrequencyGroups& observed,
                                           const BeliefFunction& belief) {
  const size_t n = observed.num_items();
  ReferenceAdjacency ref;
  ref.items_of_anon.resize(n);
  ref.anons_of_item.resize(n);
  for (ItemId x = 0; x < n; ++x) {
    const BeliefInterval& iv = belief.interval(x);
    size_t lo = 0, hi = 0;
    if (!observed.StabRange(iv.lo, iv.hi, &lo, &hi)) continue;
    for (size_t g = lo; g <= hi; ++g) {
      for (ItemId a : observed.group_items(g)) {
        ref.items_of_anon[a].push_back(x);
        ref.anons_of_item[x].push_back(a);
        ++ref.num_edges;
      }
    }
  }
  for (auto& row : ref.items_of_anon) std::sort(row.begin(), row.end());
  for (auto& row : ref.anons_of_item) std::sort(row.begin(), row.end());
  return ref;
}

TEST(CsrGraphDifferentialTest, RandomGraphsMatchReferenceAdjacency) {
  Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 2 + rng.UniformUint64(15);  // 2..16
    const size_t m = 100;
    std::vector<SupportCount> supports(n);
    for (size_t i = 0; i < n; ++i) {
      supports[i] = static_cast<SupportCount>(1 + rng.UniformUint64(m));
    }
    auto groups = GroupsFromSupports(supports, m);
    ASSERT_TRUE(groups.ok());
    std::vector<BeliefInterval> intervals(n);
    for (size_t i = 0; i < n; ++i) {
      const double f =
          static_cast<double>(supports[i]) / static_cast<double>(m);
      // A mix of wide, tight, and non-stabbing intervals.
      const double below = 0.3 * rng.UniformDouble();
      const double above = 0.3 * rng.UniformDouble();
      double lo = std::max(0.0, f - below);
      double hi = std::min(1.0, f + above);
      if (rng.Bernoulli(0.15)) {  // displaced: may stab nothing
        lo = std::min(1.0, f + 0.001);
        hi = std::min(1.0, lo + 0.002);
      }
      intervals[i] = {lo, hi};
    }
    auto belief = BeliefFunction::Create(intervals);
    ASSERT_TRUE(belief.ok());
    auto graph = BipartiteGraph::Build(*groups, *belief);
    ASSERT_TRUE(graph.ok());
    const ReferenceAdjacency ref = BuildReferenceAdjacency(*groups, *belief);

    EXPECT_EQ(graph->num_edges(), ref.num_edges) << "trial=" << trial;
    for (ItemId a = 0; a < n; ++a) {
      BipartiteGraph::AdjacencyRow row = graph->items_of_anon(a);
      ASSERT_EQ(row.size(), ref.items_of_anon[a].size())
          << "trial=" << trial << " anon=" << a;
      EXPECT_TRUE(std::equal(row.begin(), row.end(),
                             ref.items_of_anon[a].begin()));
      EXPECT_EQ(graph->anon_degree(a), ref.items_of_anon[a].size());
    }
    for (ItemId x = 0; x < n; ++x) {
      BipartiteGraph::AdjacencyRow row = graph->anons_of_item(x);
      ASSERT_EQ(row.size(), ref.anons_of_item[x].size())
          << "trial=" << trial << " item=" << x;
      EXPECT_TRUE(std::equal(row.begin(), row.end(),
                             ref.anons_of_item[x].begin()));
      EXPECT_EQ(graph->item_outdegree(x), ref.anons_of_item[x].size());
    }
    // Row masks mirror the adjacency exactly (n <= 16 here).
    auto masks = graph->ToRowMasks();
    ASSERT_TRUE(masks.ok());
    for (ItemId a = 0; a < n; ++a) {
      uint64_t expected_mask = 0;
      for (ItemId x : ref.items_of_anon[a]) expected_mask |= (1ULL << x);
      EXPECT_EQ((*masks)[a], expected_mask);
      for (ItemId x = 0; x < n; ++x) {
        EXPECT_EQ(graph->HasEdge(a, x),
                  std::binary_search(ref.items_of_anon[a].begin(),
                                     ref.items_of_anon[a].end(), x));
      }
    }
    // The compressed structure agrees on outdegrees (pre-propagation).
    auto cs = ConsistencyStructure::Build(*groups, *belief);
    ASSERT_TRUE(cs.ok());
    for (ItemId x = 0; x < n; ++x) {
      EXPECT_EQ(cs->outdegree(x), ref.anons_of_item[x].size());
    }
  }
}

TEST(CsrGraphDifferentialTest, RowMaskBit63EdgeCase) {
  // 64 items: masks must use the full word, including bit 63.
  const size_t n = 64;
  std::vector<std::vector<ItemId>> adj(n);
  adj[0] = {0, 63};
  adj[63] = {62, 63};
  for (size_t a = 1; a < 63; ++a) adj[a] = {static_cast<ItemId>(a)};
  auto graph = BipartiteGraph::FromAdjacency(n, adj);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->has_row_masks());
  auto masks = graph->ToRowMasks();
  ASSERT_TRUE(masks.ok());
  EXPECT_EQ((*masks)[0], 1ULL | (1ULL << 63));
  EXPECT_EQ((*masks)[63], (1ULL << 62) | (1ULL << 63));
  EXPECT_TRUE(graph->HasEdge(0, 63));
  EXPECT_TRUE(graph->HasEdge(63, 63));
  EXPECT_FALSE(graph->HasEdge(63, 0));

  // 65 items: no masks; binary-search edge tests still work and
  // ToRowMasks reports OutOfRange.
  std::vector<std::vector<ItemId>> big(65);
  big[64] = {0, 64};
  auto wide = BipartiteGraph::FromAdjacency(65, big);
  ASSERT_TRUE(wide.ok());
  EXPECT_FALSE(wide->has_row_masks());
  EXPECT_TRUE(wide->HasEdge(64, 64));
  EXPECT_FALSE(wide->HasEdge(64, 1));
  EXPECT_FALSE(wide->ToRowMasks().ok());
}

// ------------------------------------------------ propagation structures

TEST(ConsistencyDifferentialTest, ItemSideForcingCascade) {
  // Staircase: n singleton groups, item i covers groups [0, i]. Item 0 is
  // forced first; each forcing empties one group and makes the next item
  // degree-1 in turn — a full cascade through FindFirstNonEmptyGroup with
  // an ever-longer emptied prefix.
  const size_t n = 48;
  const size_t m = 1000;
  std::vector<SupportCount> supports(n);
  std::vector<BeliefInterval> intervals(n);
  for (size_t i = 0; i < n; ++i) {
    supports[i] = static_cast<SupportCount>(10 * (i + 1));
    const double hi = static_cast<double>(10 * (i + 1)) / m;
    intervals[i] = {0.0, hi + 1e-9};
  }
  auto groups = GroupsFromSupports(supports, m);
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->num_groups(), n);
  auto belief = BeliefFunction::Create(intervals);
  ASSERT_TRUE(belief.ok());
  auto cs = ConsistencyStructure::Build(*groups, *belief);
  ASSERT_TRUE(cs.ok());
  auto stats = cs->PropagateDegreeOne();
  EXPECT_FALSE(stats.contradiction);
  EXPECT_EQ(stats.forced_pairs, n);
  for (ItemId x = 0; x < n; ++x) {
    EXPECT_TRUE(cs->item_forced(x)) << "item " << x;
    EXPECT_EQ(cs->outdegree(x), 1u);
  }
  for (size_t g = 0; g < n; ++g) EXPECT_EQ(cs->group_remaining(g), 0u);
}

TEST(ConsistencyDifferentialTest, AnonSideForcingCascade) {
  // Reversed staircase: item i covers groups [i, n-1], so group 0 is
  // covered by exactly one item while every item (but the last) still has
  // many candidates. The cascade runs entirely through the anonymized-side
  // rule and its segment-tree locate.
  const size_t n = 48;
  const size_t m = 1000;
  std::vector<SupportCount> supports(n);
  std::vector<BeliefInterval> intervals(n);
  for (size_t i = 0; i < n; ++i) {
    supports[i] = static_cast<SupportCount>(10 * (i + 1));
    const double lo = static_cast<double>(10 * (i + 1)) / m;
    intervals[i] = {lo - 1e-9, 1.0};
  }
  auto groups = GroupsFromSupports(supports, m);
  ASSERT_TRUE(groups.ok());
  auto belief = BeliefFunction::Create(intervals);
  ASSERT_TRUE(belief.ok());
  auto cs = ConsistencyStructure::Build(*groups, *belief);
  ASSERT_TRUE(cs.ok());
  auto stats = cs->PropagateDegreeOne();
  EXPECT_FALSE(stats.contradiction);
  EXPECT_EQ(stats.forced_pairs, n);
  for (ItemId x = 0; x < n; ++x) {
    EXPECT_TRUE(cs->item_forced(x)) << "item " << x;
  }
}

TEST(ConsistencyDifferentialTest, BeliefGroupsMatchesMapReference) {
  Rng rng(321);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.UniformUint64(30);
    const size_t m = 50;
    std::vector<SupportCount> supports(n);
    for (size_t i = 0; i < n; ++i) {
      supports[i] = static_cast<SupportCount>(1 + rng.UniformUint64(m));
    }
    auto groups = GroupsFromSupports(supports, m);
    ASSERT_TRUE(groups.ok());
    std::vector<BeliefInterval> intervals(n);
    for (size_t i = 0; i < n; ++i) {
      const double f =
          static_cast<double>(supports[i]) / static_cast<double>(m);
      if (rng.Bernoulli(0.2)) {
        // Displaced above f (likely dead); stay inside [0, 1].
        const double lo = std::min(1.0, f + 0.001);
        intervals[i] = {lo, std::min(1.0, lo + 0.001)};
      } else {
        // Coarse bounds so distinct items often share a range.
        const double lo = 0.2 * std::floor(f / 0.2);
        intervals[i] = {lo, std::min(1.0, lo + 0.2 + 0.1 * (i % 2))};
      }
    }
    auto belief = BeliefFunction::Create(intervals);
    ASSERT_TRUE(belief.ok());
    auto cs = ConsistencyStructure::Build(*groups, *belief);
    ASSERT_TRUE(cs.ok());

    // Reference: the previous std::map-based grouping on stab ranges.
    std::map<std::pair<size_t, size_t>, std::vector<ItemId>> by_range;
    std::vector<ItemId> dead;
    for (ItemId x = 0; x < n; ++x) {
      size_t lo = 0, hi = 0;
      if (groups->StabRange(intervals[x].lo, intervals[x].hi, &lo, &hi)) {
        by_range[{lo, hi}].push_back(x);
      } else {
        dead.push_back(x);
      }
    }
    std::vector<std::vector<ItemId>> expected;
    for (auto& [range, members] : by_range) expected.push_back(members);
    if (!dead.empty()) expected.push_back(dead);

    EXPECT_EQ(cs->BeliefGroups(), expected) << "trial=" << trial;
  }
}

// ------------------------------------------------------ cached α probes

TEST(AlphaProbeCacheTest, CachedSweepIsBitIdenticalToUncached) {
  const size_t n = 60;
  const size_t m = 500;
  std::vector<SupportCount> supports(n);
  Rng rng(11);
  for (size_t i = 0; i < n; ++i) {
    supports[i] = static_cast<SupportCount>(1 + rng.UniformUint64(m));
  }
  auto table = FrequencyTable::FromSupports(supports, m);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto base = MakeCompliantIntervalBelief(*table, groups.MedianGap());
  ASSERT_TRUE(base.ok());
  auto sweep = AlphaCompliancySweep::Create(*table, *base, 5, 17);
  ASSERT_TRUE(sweep.ok());
  const AlphaCompliancySweep::ProbeCache cache =
      sweep->MakeProbeCache(groups);

  std::vector<bool> interest(n, false);
  for (size_t i = 0; i < n; i += 3) interest[i] = true;

  for (double alpha : {0.0, 0.125, 0.3, 0.5, 0.8125, 1.0}) {
    auto plain = sweep->AverageOEstimate(groups, alpha);
    auto cached = sweep->AverageOEstimate(groups, cache, alpha);
    ASSERT_TRUE(plain.ok() && cached.ok());
    EXPECT_EQ(*plain, *cached) << "alpha=" << alpha;

    auto plain_items =
        sweep->AverageOEstimateForItems(groups, alpha, interest);
    auto cached_items =
        sweep->AverageOEstimateForItems(groups, cache, alpha, interest);
    ASSERT_TRUE(plain_items.ok() && cached_items.ok());
    EXPECT_EQ(*plain_items, *cached_items) << "alpha=" << alpha;

    // Thread count must not perturb the cached path either.
    exec::ExecContext ctx(exec::ExecOptions{.threads = 4});
    auto cached_mt = sweep->AverageOEstimate(groups, cache, alpha, {}, &ctx);
    ASSERT_TRUE(cached_mt.ok());
    EXPECT_EQ(*cached_mt, *cached) << "alpha=" << alpha;
  }

  // A cache of the wrong size is rejected rather than misused.
  AlphaCompliancySweep::ProbeCache bad;
  bad.base.resize(n - 1);
  bad.displaced.resize(n - 1);
  EXPECT_FALSE(sweep->AverageOEstimate(groups, bad, 0.5).ok());
}

TEST(AlphaProbeCacheTest, FromRangesRejectsMalformedInput) {
  auto groups = GroupsFromSupports({10, 20, 30}, 100);
  ASSERT_TRUE(groups.ok());
  std::vector<ItemStabRange> ranges(3);
  ranges[0] = {true, 0, 1};
  ranges[1] = {false, 0, 0};
  ranges[2] = {true, 2, 2};
  std::vector<bool> all(3, true);
  auto ok = ComputeOEstimateFromRanges(*groups, ranges, all);
  ASSERT_TRUE(ok.ok());

  ranges[2] = {true, 2, 5};  // hi outside the group domain
  EXPECT_FALSE(ComputeOEstimateFromRanges(*groups, ranges, all).ok());
  ranges[2] = {true, 2, 1};  // inverted
  EXPECT_FALSE(ComputeOEstimateFromRanges(*groups, ranges, all).ok());
  ranges.pop_back();  // wrong arity
  std::vector<bool> two(2, true);
  EXPECT_FALSE(ComputeOEstimateFromRanges(*groups, ranges, two).ok());
}

// ----------------------------------------------------------- scratch pool

TEST(ScratchPoolTest, ReusesRetiredBuffer) {
  exec::ScratchVec<double>::DrainThreadFreeList();
  const double* retired = nullptr;
  {
    exec::ScratchVec<double> a(1024);
    retired = a.data();
  }
  exec::ScratchVec<double> b(1024);
  EXPECT_EQ(b.data(), retired);
  exec::ScratchVec<double>::DrainThreadFreeList();
}

TEST(ScratchPoolTest, OversizedBuffersAreNotPooled) {
  exec::ScratchVec<double>::DrainThreadFreeList();
  const size_t huge = exec::kMaxRetainedBytes / sizeof(double) + 1;
  const double* retired = nullptr;
  {
    exec::ScratchVec<double> a(huge);
    retired = a.data();
  }
  exec::ScratchVec<double> b;
  EXPECT_EQ(b.size(), 0u);
  // The free list was empty, so b's buffer cannot be the huge one.
  b.resize(8);
  (void)retired;
  exec::ScratchVec<double>::DrainThreadFreeList();
}

// --------------------------------------------------------------- burn-in

TEST(SamplerOptionsTest, EffectiveBurnInClampsOverflowAndNaN) {
  SamplerOptions options;
  options.burn_in_sweeps = 300;
  options.burn_in_scale = 2.0;
  EXPECT_EQ(options.EffectiveBurnIn(100), 300u);   // floor wins
  EXPECT_EQ(options.EffectiveBurnIn(1000), 2000u); // scaled wins
  EXPECT_EQ(options.EffectiveBurnIn(0), 300u);

  options.burn_in_scale = 0.0;
  EXPECT_EQ(options.EffectiveBurnIn(std::numeric_limits<size_t>::max()),
            300u);

  // Products beyond the size_t range clamp instead of invoking UB.
  options.burn_in_scale = 1e300;
  EXPECT_EQ(options.EffectiveBurnIn(1000), kMaxBurnInSweeps);
  options.burn_in_scale = std::numeric_limits<double>::infinity();
  EXPECT_EQ(options.EffectiveBurnIn(1), kMaxBurnInSweeps);

  // A NaN product falls back to the unscaled floor.
  options.burn_in_scale = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(options.EffectiveBurnIn(1000), 300u);
}

TEST(SamplerOptionsTest, CreateRejectsNonFiniteBurnInScale) {
  auto table = FrequencyTable::FromSupports({10, 20, 30}, 100);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto belief = MakeCompliantIntervalBelief(*table, 0.01);
  ASSERT_TRUE(belief.ok());

  SamplerOptions options;
  options.burn_in_scale = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(MatchingSampler::Create(groups, *belief, options).ok());
  options.burn_in_scale = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(MatchingSampler::Create(groups, *belief, options).ok());
  options.burn_in_scale = -1.0;
  EXPECT_FALSE(MatchingSampler::Create(groups, *belief, options).ok());
  options.burn_in_scale = 2.0;
  EXPECT_TRUE(MatchingSampler::Create(groups, *belief, options).ok());
}

}  // namespace
}  // namespace anonsafe
