#include <gtest/gtest.h>

#include "core/graph_oestimate.h"
#include "core/exact_formulas.h"
#include "graph/edge_pruning.h"
#include "graph/permanent.h"
#include "relational/knowledge.h"
#include "relational/record_table.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

Result<RecordTable> PeopleTable() {
  // The Section 8.1 example: age bucket, ethnicity, car model.
  ANONSAFE_ASSIGN_OR_RETURN(
      RecordTable table,
      RecordTable::Create({{"age", 10}, {"ethnicity", 5}, {"car", 8}}));
  // person 0 "John": Chinese(2), Toyota(3), age bucket 4
  ANONSAFE_RETURN_IF_ERROR(table.AddRecord({4, 2, 3}));
  // person 1 "Mary": age bucket 6
  ANONSAFE_RETURN_IF_ERROR(table.AddRecord({6, 1, 0}));
  // person 2 "Bob"
  ANONSAFE_RETURN_IF_ERROR(table.AddRecord({3, 2, 3}));
  // person 3: same profile as John except the car
  ANONSAFE_RETURN_IF_ERROR(table.AddRecord({4, 2, 5}));
  return table;
}

// -------------------------------------------------------------- RecordTable

TEST(RecordTableTest, CreateValidatesSchema) {
  EXPECT_TRUE(RecordTable::Create({}).status().IsInvalidArgument());
  EXPECT_TRUE(RecordTable::Create({{"a", 0}}).status().IsInvalidArgument());
  EXPECT_TRUE(RecordTable::Create({{"a", 2}, {"a", 3}})
                  .status().IsInvalidArgument());
  auto ok = RecordTable::Create({{"a", 2}, {"b", 3}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_attributes(), 2u);
  auto idx = ok->AttributeIndex("b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_TRUE(ok->AttributeIndex("zzz").status().IsNotFound());
}

TEST(RecordTableTest, AddRecordValidates) {
  auto table = RecordTable::Create({{"a", 2}, {"b", 3}});
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->AddRecord({1}).IsInvalidArgument());
  EXPECT_TRUE(table->AddRecord({1, 3}).IsInvalidArgument());
  EXPECT_TRUE(table->AddRecord({1, 2}).ok());
  EXPECT_EQ(table->num_records(), 1u);
  EXPECT_EQ(table->value(0, 1), 2u);
}

TEST(RecordTableTest, GeneratePopulationShapeAndSkew) {
  Rng rng(3);
  auto pop = GeneratePopulation({{"x", 20}, {"y", 4}}, 2000, 1.2, &rng);
  ASSERT_TRUE(pop.ok());
  EXPECT_EQ(pop->num_records(), 2000u);
  // Skewed: value 0 of attribute x far more common than value 19.
  size_t v0 = 0, v19 = 0;
  for (size_t r = 0; r < 2000; ++r) {
    if (pop->value(r, 0) == 0) ++v0;
    if (pop->value(r, 0) == 19) ++v19;
  }
  EXPECT_GT(v0, 4 * (v19 + 1));
  EXPECT_TRUE(GeneratePopulation({{"x", 2}}, 10, -1.0, &rng)
                  .status().IsInvalidArgument());
}

// ---------------------------------------------------------- RecordPredicate

TEST(RecordPredicateTest, MatchSemantics) {
  auto table = PeopleTable();
  ASSERT_TRUE(table.ok());
  RecordPredicate p(3);
  EXPECT_TRUE(p.Matches(*table, 0));  // unconstrained matches everyone
  p.RestrictTo(1, {2});               // ethnicity Chinese
  p.RestrictTo(2, {3});               // car Toyota
  EXPECT_TRUE(p.Matches(*table, 0));   // John
  EXPECT_FALSE(p.Matches(*table, 1));  // Mary
  EXPECT_TRUE(p.Matches(*table, 2));   // Bob also fits the description
  EXPECT_FALSE(p.Matches(*table, 3));  // different car
}

TEST(RecordPredicateTest, RangeAndIntersection) {
  auto table = PeopleTable();
  ASSERT_TRUE(table.ok());
  RecordPredicate p(3);
  p.RestrictRange(0, 3, 6);  // age in [3, 6]
  EXPECT_TRUE(p.Matches(*table, 0));
  EXPECT_TRUE(p.Matches(*table, 1));
  p.RestrictRange(0, 5, 9);  // intersect: age in [5, 6]
  EXPECT_FALSE(p.Matches(*table, 0));
  EXPECT_TRUE(p.Matches(*table, 1));
  // Intersecting to emptiness is unsatisfiable.
  p.RestrictTo(0, {1});
  EXPECT_FALSE(p.Matches(*table, 1));
}

// ------------------------------------------------------ RelationalKnowledge

TEST(RelationalKnowledgeTest, Section81Example) {
  auto table = PeopleTable();
  ASSERT_TRUE(table.ok());
  RelationalKnowledge knowledge(4, 3);
  // The hacker knows John is Chinese owning a Toyota...
  knowledge.predicate(0).RestrictTo(1, {2});
  knowledge.predicate(0).RestrictTo(2, {3});
  // ...and Mary's age is between 5 and 7. Bob and person 3: nothing.
  knowledge.predicate(1).RestrictRange(0, 5, 7);

  auto graph = knowledge.BuildConsistencyGraph(*table);
  ASSERT_TRUE(graph.ok());
  // John's candidates: records matching Chinese+Toyota = {0 (John), 2}.
  EXPECT_EQ(graph->item_outdegree(0), 2u);
  // Mary's candidates: records with age in [5,7] = {1} only.
  EXPECT_EQ(graph->item_outdegree(1), 1u);
  // Bob and person 3 match everything.
  EXPECT_EQ(graph->item_outdegree(2), 4u);
  EXPECT_EQ(graph->item_outdegree(3), 4u);

  auto compliance = knowledge.ComplianceFraction(*table);
  ASSERT_TRUE(compliance.ok());
  EXPECT_DOUBLE_EQ(*compliance, 1.0);  // all constraints are true facts

  // The generic estimators run unchanged on the relational graph.
  auto oe = ComputeOEstimateOnGraph(*graph);
  ASSERT_TRUE(oe.ok());
  EXPECT_GT(oe->expected_cracks, 1.0);  // Mary is certainly cracked
  EXPECT_GE(oe->forced_items, 1u);
  auto exact = ExactExpectedCracksByPermanent(*graph);
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(*exact, oe->expected_cracks - 1e-9);
}

TEST(RelationalKnowledgeTest, SizeMismatchFails) {
  auto table = PeopleTable();
  ASSERT_TRUE(table.ok());
  RelationalKnowledge knowledge(3, 3);
  EXPECT_TRUE(knowledge.BuildConsistencyGraph(*table)
                  .status().IsInvalidArgument());
  EXPECT_TRUE(knowledge.ComplianceFraction(*table)
                  .status().IsInvalidArgument());
}

TEST(RelationalKnowledgeTest, IgnorantKnowledgeGivesLemma1) {
  Rng rng(5);
  auto pop = GeneratePopulation({{"x", 4}, {"y", 4}}, 8, 0.0, &rng);
  ASSERT_TRUE(pop.ok());
  RelationalKnowledge knowledge(8, 2);  // knows nothing about anyone
  auto graph = knowledge.BuildConsistencyGraph(*pop);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 64u);  // complete bipartite
  auto exact = ExactExpectedCracksByPermanent(*graph);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(*exact, 1.0, 1e-9);  // Lemma 1 carries over verbatim
}

TEST(AttributeKnowledgeTest, MoreAttributesMeansMoreRisk) {
  Rng rng(7);
  auto pop = GeneratePopulation(
      {{"a", 6}, {"b", 5}, {"c", 4}, {"d", 3}}, 60, 0.6, &rng);
  ASSERT_TRUE(pop.ok());
  double prev = 0.0;
  for (size_t known = 0; known <= 4; ++known) {
    Rng krng(100 + known);
    auto knowledge = MakeAttributeKnowledge(*pop, known, &krng);
    ASSERT_TRUE(knowledge.ok());
    auto compliance = knowledge->ComplianceFraction(*pop);
    ASSERT_TRUE(compliance.ok());
    EXPECT_DOUBLE_EQ(*compliance, 1.0);  // true facts only
    auto graph = knowledge->BuildConsistencyGraph(*pop);
    ASSERT_TRUE(graph.ok());
    auto oe = ComputeOEstimateOnGraph(*graph);
    ASSERT_TRUE(oe.ok());
    EXPECT_GE(oe->expected_cracks, prev - 1e-9)
        << "knowing more attributes reduced the risk?";
    prev = oe->expected_cracks;
  }
  EXPECT_GT(prev, 10.0);  // knowing all 4 attrs cracks most of 60 records
}

TEST(AttributeKnowledgeTest, ValidatesArguments) {
  Rng rng(9);
  auto pop = GeneratePopulation({{"a", 3}}, 10, 0.0, &rng);
  ASSERT_TRUE(pop.ok());
  EXPECT_TRUE(MakeAttributeKnowledge(*pop, 5, &rng)
                  .status().IsInvalidArgument());
  EXPECT_TRUE(MakeAlphaAttributeKnowledge(*pop, 1, 1.5, &rng)
                  .status().IsInvalidArgument());
  EXPECT_TRUE(MakeAlphaAttributeKnowledge(*pop, 0, 0.5, &rng)
                  .status().IsInvalidArgument());
}

TEST(AlphaAttributeKnowledgeTest, HitsRequestedCompliance) {
  Rng rng(11);
  auto pop = GeneratePopulation({{"a", 8}, {"b", 8}}, 100, 0.3, &rng);
  ASSERT_TRUE(pop.ok());
  for (double alpha : {0.2, 0.5, 0.9}) {
    Rng krng(static_cast<uint64_t>(alpha * 1000));
    auto knowledge = MakeAlphaAttributeKnowledge(*pop, 2, alpha, &krng);
    ASSERT_TRUE(knowledge.ok());
    auto measured = knowledge->ComplianceFraction(*pop);
    ASSERT_TRUE(measured.ok());
    EXPECT_NEAR(*measured, alpha, 0.02) << "alpha=" << alpha;
  }
}

TEST(RelationalSetDisclosureTest, TwinsFormIdentifiedPairs) {
  // Two identical records under full-attribute knowledge camouflage each
  // other (a set of size 2); a unique record is a certain crack.
  auto table = RecordTable::Create({{"a", 4}, {"b", 4}});
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->AddRecord({1, 1}).ok());
  ASSERT_TRUE(table->AddRecord({1, 1}).ok());  // twin of record 0
  ASSERT_TRUE(table->AddRecord({2, 3}).ok());  // unique
  Rng rng(13);
  auto knowledge = MakeAttributeKnowledge(*table, 2, &rng);
  ASSERT_TRUE(knowledge.ok());
  auto graph = knowledge->BuildConsistencyGraph(*table);
  ASSERT_TRUE(graph.ok());
  auto sets = AnalyzeSetDisclosure(*graph);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->identified_sets.size(), 2u);
  EXPECT_EQ(sets->identified_sets[0], (std::vector<ItemId>{0, 1}));
  EXPECT_EQ(sets->identified_sets[1], (std::vector<ItemId>{2}));
  EXPECT_EQ(sets->certain_cracks, 1u);
}

}  // namespace
}  // namespace anonsafe
