#include <gtest/gtest.h>

#include "belief/builders.h"
#include "core/oestimate.h"
#include "core/per_item_risk.h"
#include "data/frequency.h"
#include "datagen/profile.h"
#include "defense/scheme.h"
#include "defense/suppression.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

Result<defense::DefensePlan> SuppressionPlan(const FrequencyTable& table,
                                             double tolerance,
                                             double max_fraction = 0.5,
                                             double rerank_batch = 8.0) {
  defense::DefenseParams params;
  params.Set("tolerance", tolerance);
  params.Set("max_suppressed_fraction", max_fraction);
  params.Set("rerank_batch", rerank_batch);
  return defense::DefenseScheme::Find("suppression")->Plan(table, params);
}

// -------------------------------------------------------------- PerItemRisk

TEST(PerItemRiskTest, RanksSingletonsAboveCamouflagedItems) {
  // Items 0-3 share one frequency group; items 4 and 5 are singletons.
  auto table = FrequencyTable::FromSupports({5, 5, 5, 5, 2, 8}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto belief = MakePointValuedBelief(*table);
  ASSERT_TRUE(belief.ok());
  OEstimateOptions opt;
  opt.propagate = false;
  auto report = ComputePerItemRisk(groups, *belief, opt);
  ASSERT_TRUE(report.ok());

  ASSERT_EQ(report->ranked.size(), 6u);
  // The two singletons lead with probability 1.
  EXPECT_EQ(report->ranked[0].item, 4u);
  EXPECT_EQ(report->ranked[1].item, 5u);
  EXPECT_DOUBLE_EQ(report->ranked[0].crack_probability, 1.0);
  EXPECT_EQ(report->ranked[0].outdegree, 1u);
  // The camouflaged quartet follows at 1/4.
  for (size_t i = 2; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(report->ranked[i].crack_probability, 0.25);
  }
  EXPECT_NEAR(report->total_expected_cracks, 3.0, 1e-12);  // Lemma 3 g=3
}

TEST(PerItemRiskTest, SumsToAggregateOEstimate) {
  Rng rng(3);
  auto profile = FrequencyProfile::Create(
      300, {{10, 4}, {60, 3}, {150, 2}, {250, 1}});
  ASSERT_TRUE(profile.ok());
  auto table = FrequencyTable::FromSupports(profile->ItemSupports(), 300);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto belief = MakeCompliantIntervalBelief(*table, groups.MedianGap());
  ASSERT_TRUE(belief.ok());

  auto aggregate = ComputeOEstimate(groups, *belief);
  auto per_item = ComputePerItemRisk(groups, *belief);
  ASSERT_TRUE(aggregate.ok());
  ASSERT_TRUE(per_item.ok());
  EXPECT_NEAR(aggregate->expected_cracks, per_item->total_expected_cracks,
              1e-9);
}

TEST(PerItemRiskTest, ItemsAboveThreshold) {
  auto table = FrequencyTable::FromSupports({5, 5, 2, 8}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto belief = MakePointValuedBelief(*table);
  ASSERT_TRUE(belief.ok());
  OEstimateOptions opt;
  opt.propagate = false;
  auto report = ComputePerItemRisk(groups, *belief, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ItemsAbove(0.9), (std::vector<ItemId>{2, 3}));
  EXPECT_EQ(report->ItemsAbove(0.1).size(), 4u);
  EXPECT_TRUE(report->ItemsAbove(1.1).empty());
}

TEST(PerItemRiskTest, ForcedItemsFlagged) {
  // Figure 6(a) staircase: all forced under propagation.
  auto table = FrequencyTable::FromSupports({10, 20, 30, 40}, 100);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto staircase = BeliefFunction::Create(
      {{0.05, 0.15}, {0.05, 0.25}, {0.05, 0.35}, {0.05, 0.45}});
  ASSERT_TRUE(staircase.ok());
  auto report = ComputePerItemRisk(groups, *staircase);
  ASSERT_TRUE(report.ok());
  for (const ItemRisk& r : report->ranked) {
    EXPECT_TRUE(r.forced);
    EXPECT_DOUBLE_EQ(r.crack_probability, 1.0);
  }
}

// -------------------------------------------------------------- Suppression

TEST(SuppressionTest, PlanReachesTolerance) {
  // 16 frequency-unique items + a camouflaged mass of 24.
  std::vector<ProfileGroup> pg;
  for (size_t i = 0; i < 16; ++i) {
    pg.push_back({static_cast<SupportCount>(100 + 37 * i), 1});
  }
  pg.push_back({20, 24});
  auto profile = FrequencyProfile::Create(1000, pg);
  ASSERT_TRUE(profile.ok());
  auto table = FrequencyTable::FromSupports(profile->ItemSupports(), 1000);
  ASSERT_TRUE(table.ok());

  // budget = 4 cracks over n = 40
  auto plan = SuppressionPlan(*table, 0.1);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->oe_before, 4.0);
  EXPECT_LE(plan->oe_after, 4.0 + 1e-9);
  EXPECT_FALSE(plan->suppressed.empty());
  EXPECT_EQ(plan->items_after + plan->suppressed.size(),
            plan->items_before);
  // The suppressed items are the frequency-unique ones, not the mass.
  for (ItemId x : plan->suppressed) EXPECT_GE(x, 24u);
}

TEST(SuppressionTest, AlreadySafeSuppressesNothing) {
  auto table = FrequencyTable::FromSupports(
      std::vector<SupportCount>(30, 7), 100);  // one big group
  ASSERT_TRUE(table.ok());
  auto plan = SuppressionPlan(*table, 0.2);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->suppressed.empty());
  EXPECT_EQ(plan->items_after, 30u);
}

TEST(SuppressionTest, CapStopsHopelessCases) {
  // Everything frequency-unique and widely separated: suppression can
  // only chip away one certain crack per item; a tight tolerance with a
  // small cap must fail cleanly.
  std::vector<SupportCount> supports(20);
  for (size_t i = 0; i < 20; ++i) supports[i] = 10 + 40 * i;
  auto table = FrequencyTable::FromSupports(supports, 1000);
  ASSERT_TRUE(table.ok());
  // budget = 1 crack, cap at 20% of items
  EXPECT_TRUE(SuppressionPlan(*table, 0.05, /*max_fraction=*/0.2)
                  .status()
                  .IsFailedPrecondition());
}

TEST(SuppressionTest, ValidatesOptions) {
  auto table = FrequencyTable::FromSupports({1, 2}, 10);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(SuppressionPlan(*table, 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(SuppressionPlan(*table, 0.1, 0.5, /*rerank_batch=*/0.0)
                  .status()
                  .IsInvalidArgument());
}

TEST(ApplySuppressionTest, RemovesItemsAndEmptyTransactions) {
  Database db(4);
  ASSERT_TRUE(db.AddTransaction({0, 1}).ok());
  ASSERT_TRUE(db.AddTransaction({1}).ok());
  ASSERT_TRUE(db.AddTransaction({2, 3}).ok());
  auto out = ApplySuppression(db, {1});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_transactions(), 2u);  // {1} vanished entirely
  EXPECT_EQ(out->transaction(0), (Transaction{0}));
  auto table = FrequencyTable::Compute(*out);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->support(1), 0u);
  EXPECT_TRUE(ApplySuppression(db, {9}).status().IsInvalidArgument());
}

TEST(SuppressionIntegrationTest, AppliedDatabasePassesTolerance) {
  Rng rng(41);
  std::vector<ProfileGroup> pg;
  for (size_t i = 0; i < 12; ++i) {
    pg.push_back({static_cast<SupportCount>(50 + 23 * i), 1});
  }
  pg.push_back({10, 20});
  auto profile = FrequencyProfile::Create(500, pg);
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());
  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());

  const double tolerance = 0.15;
  auto plan = SuppressionPlan(*table, tolerance);
  ASSERT_TRUE(plan.ok());
  auto released = ApplySuppression(*db, plan->suppressed);
  ASSERT_TRUE(released.ok());

  // Re-assess the released copy over its surviving items.
  auto released_table = FrequencyTable::Compute(*released);
  ASSERT_TRUE(released_table.ok());
  std::vector<SupportCount> survivors;
  for (ItemId x = 0; x < released->num_items(); ++x) {
    if (released_table->support(x) > 0) {
      survivors.push_back(released_table->support(x));
    }
  }
  auto survivor_table = FrequencyTable::FromSupports(
      survivors, released->num_transactions());
  ASSERT_TRUE(survivor_table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*survivor_table);
  auto belief = MakeCompliantIntervalBelief(*survivor_table,
                                            groups.MedianGap());
  ASSERT_TRUE(belief.ok());
  auto oe = ComputeOEstimate(groups, *belief);
  ASSERT_TRUE(oe.ok());
  // Within the planned budget, with slack for dropped-empty-transaction
  // frequency shifts.
  double budget = tolerance * static_cast<double>(plan->items_before);
  EXPECT_LE(oe->expected_cracks, budget * 1.25 + 0.5);
}

}  // namespace
}  // namespace anonsafe
