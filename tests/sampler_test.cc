#include <gtest/gtest.h>

#include <cmath>

#include "belief/builders.h"
#include "core/direct_method.h"
#include "core/simulated.h"
#include "data/frequency.h"
#include "graph/bipartite_graph.h"
#include "graph/hopcroft_karp.h"
#include "graph/matching_sampler.h"
#include "util/rng.h"
#include "util/stats.h"

namespace anonsafe {
namespace {

// ------------------------------------------------------------------ Seeds

TEST(SamplerTest, CompliantBeliefSeedsWithIdentity) {
  auto table = FrequencyTable::FromSupports({5, 4, 5, 5, 3, 5}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = MakeCompliantIntervalBelief(*table, 0.05);
  ASSERT_TRUE(beta.ok());
  SamplerOptions opt;
  auto sampler = MatchingSampler::Create(groups, *beta, opt);
  ASSERT_TRUE(sampler.ok());
  EXPECT_TRUE(sampler->seed_is_perfect());
  EXPECT_TRUE(sampler->CurrentStateConsistent());
}

TEST(SamplerTest, NonCompliantBeliefUsesGreedySeed) {
  auto table = FrequencyTable::FromSupports({10, 20, 30}, 100);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  // Item 0 guesses wrong (onto group of item 1), others exact: a perfect
  // matching still exists? No: items 0 and 1 both only like anon 1.
  auto beta = BeliefFunction::Create(
      {{0.18, 0.22}, {0.18, 0.22}, {0.28, 0.32}});
  ASSERT_TRUE(beta.ok());
  SamplerOptions opt;
  auto sampler = MatchingSampler::Create(groups, *beta, opt);
  ASSERT_TRUE(sampler.ok());
  EXPECT_FALSE(sampler->seed_is_perfect());
  EXPECT_EQ(sampler->seed_size(), 2u);
  EXPECT_TRUE(sampler->CurrentStateConsistent());
}

TEST(SamplerTest, EmptyDomainFails) {
  auto table = FrequencyTable::FromSupports({}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = BeliefFunction::Create({});
  ASSERT_TRUE(beta.ok());
  SamplerOptions opt;
  EXPECT_TRUE(MatchingSampler::Create(groups, *beta, opt)
                  .status().IsInvalidArgument());
}

// ----------------------------------------------------- Statistical checks

TEST(SamplerTest, SamplesStayConsistentMatchings) {
  auto table = FrequencyTable::FromSupports({2, 3, 5, 5, 7, 7, 7}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = MakeCompliantIntervalBelief(*table, 0.21);
  ASSERT_TRUE(beta.ok());
  SamplerOptions opt;
  opt.num_samples = 50;
  opt.burn_in_sweeps = 20;
  opt.thinning_sweeps = 3;
  auto sampler = MatchingSampler::Create(groups, *beta, opt);
  ASSERT_TRUE(sampler.ok());
  std::vector<size_t> counts = sampler->SampleCrackCounts();
  EXPECT_EQ(counts.size(), 50u);
  EXPECT_TRUE(sampler->CurrentStateConsistent());
  for (size_t c : counts) EXPECT_LE(c, 7u);
}

TEST(SamplerTest, IgnorantBeliefMeanNearOne) {
  // Lemma 1: uniform perfect matchings of the complete graph crack one
  // item in expectation.
  std::vector<SupportCount> supports(12);
  for (size_t i = 0; i < 12; ++i) supports[i] = i + 1;
  auto table = FrequencyTable::FromSupports(supports, 50);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  SamplerOptions opt;
  opt.num_samples = 2000;
  opt.burn_in_sweeps = 50;
  opt.thinning_sweeps = 5;
  opt.exec.seed = 99;
  auto sampler =
      MatchingSampler::Create(groups, MakeIgnorantBelief(12), opt);
  ASSERT_TRUE(sampler.ok());
  std::vector<size_t> counts = sampler->SampleCrackCounts();
  double mean = 0.0;
  for (size_t c : counts) mean += static_cast<double>(c);
  mean /= static_cast<double>(counts.size());
  EXPECT_NEAR(mean, 1.0, 0.15);
}

class SamplerVsExactTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SamplerVsExactTest, MatchesPermanentExpectation) {
  // Random compliant interval beliefs on small domains: the sampler's
  // mean crack count must approach the exact permanent-based expectation.
  Rng rng(GetParam());
  const size_t n = 5 + rng.UniformUint64(4);
  std::vector<SupportCount> supports(n);
  for (size_t i = 0; i < n; ++i) supports[i] = 1 + rng.UniformUint64(12);
  auto table = FrequencyTable::FromSupports(supports, 20);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta =
      MakeCompliantIntervalBelief(*table, 0.05 + 0.2 * rng.UniformDouble());
  ASSERT_TRUE(beta.ok());

  auto exact = DirectExpectedCracks(groups, *beta);
  ASSERT_TRUE(exact.ok());

  SamplerOptions opt;
  opt.num_samples = 3000;
  opt.burn_in_sweeps = 60;
  opt.thinning_sweeps = 4;
  opt.exec.seed = GetParam() * 31 + 1;
  auto sampler = MatchingSampler::Create(groups, *beta, opt);
  ASSERT_TRUE(sampler.ok());
  std::vector<size_t> counts = sampler->SampleCrackCounts();
  double mean = 0.0;
  for (size_t c : counts) mean += static_cast<double>(c);
  mean /= static_cast<double>(counts.size());

  EXPECT_NEAR(mean, *exact, 0.25 + 0.1 * *exact) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerVsExactTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(SamplerTest, InterestMaskRestrictsCounts) {
  auto table = FrequencyTable::FromSupports({5, 5, 5, 5}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = MakePointValuedBelief(*table);
  ASSERT_TRUE(beta.ok());
  SamplerOptions opt;
  opt.num_samples = 200;
  auto sampler = MatchingSampler::Create(groups, *beta, opt);
  ASSERT_TRUE(sampler.ok());
  std::vector<bool> nobody(4, false);
  auto counts = sampler->SampleCrackCounts(nobody);
  ASSERT_TRUE(counts.ok());
  for (size_t c : *counts) EXPECT_EQ(c, 0u);
  std::vector<bool> wrong_size(3, true);
  EXPECT_TRUE(sampler->SampleCrackCounts(wrong_size)
                  .status().IsInvalidArgument());
}

TEST(SamplerTest, DeterministicAcrossRunsWithSameSeed) {
  auto table = FrequencyTable::FromSupports({2, 4, 6, 8}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = MakeCompliantIntervalBelief(*table, 0.3);
  ASSERT_TRUE(beta.ok());
  SamplerOptions opt;
  opt.num_samples = 100;
  opt.exec.seed = 12345;
  auto s1 = MatchingSampler::Create(groups, *beta, opt);
  auto s2 = MatchingSampler::Create(groups, *beta, opt);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->SampleCrackCounts(), s2->SampleCrackCounts());
}

TEST(SamplerTest, DistributionMatchesEnumerationOnTinyGraph) {
  // Beyond the mean: the sampled crack-count *distribution* must match
  // the exact distribution over all consistent matchings (total
  // variation distance small). Two groups of sizes 2 and 3, fully
  // point-valued: matchings factorize as S2 x S3.
  auto table = FrequencyTable::FromSupports({3, 3, 7, 7, 7}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = MakePointValuedBelief(*table);
  ASSERT_TRUE(beta.ok());

  auto exact = DirectCrackDistribution(groups, *beta);
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(exact->num_matchings, 12u);  // 2! * 3!

  SamplerOptions opt;
  opt.num_samples = 6000;
  opt.burn_in_sweeps = 50;
  opt.thinning_sweeps = 3;
  opt.exec.seed = 77;
  auto sampler = MatchingSampler::Create(groups, *beta, opt);
  ASSERT_TRUE(sampler.ok());
  std::vector<size_t> counts = sampler->SampleCrackCounts();
  std::vector<double> empirical(6, 0.0);
  for (size_t c : counts) empirical[c] += 1.0;
  for (double& p : empirical) p /= static_cast<double>(counts.size());

  double tv = 0.0;
  for (size_t c = 0; c < 6; ++c) {
    tv += std::abs(empirical[c] - exact->probability[c]);
  }
  tv /= 2.0;
  EXPECT_LT(tv, 0.04) << "total variation distance too large";
}

class GreedySeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedySeedTest, GreedyIntervalSeedIsMaximum) {
  // The sampler's exchange-greedy seed for interval structures must match
  // the Hopcroft-Karp maximum on the explicit graph — including under
  // non-compliant beliefs where the matching is not perfect.
  Rng rng(GetParam() * 271 + 9);
  const size_t n = 4 + rng.UniformUint64(20);
  std::vector<SupportCount> supports(n);
  for (size_t i = 0; i < n; ++i) supports[i] = 1 + rng.UniformUint64(30);
  auto table = FrequencyTable::FromSupports(supports, 40);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  // Wild intervals: arbitrary, frequently non-compliant.
  std::vector<BeliefInterval> intervals(n);
  for (size_t x = 0; x < n; ++x) {
    double a = rng.UniformDouble(), b = rng.UniformDouble();
    intervals[x] = {std::min(a, b), std::max(a, b)};
  }
  auto beta = BeliefFunction::Create(std::move(intervals));
  ASSERT_TRUE(beta.ok());

  SamplerOptions opt;
  opt.num_samples = 1;
  opt.burn_in_sweeps = 0;
  opt.burn_in_scale = 0.0;
  auto sampler = MatchingSampler::Create(groups, *beta, opt);
  ASSERT_TRUE(sampler.ok());

  auto graph = BipartiteGraph::Build(groups, *beta);
  ASSERT_TRUE(graph.ok());
  Matching hk = HopcroftKarp(*graph);
  EXPECT_EQ(sampler->seed_size(), hk.size) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedySeedTest,
                         ::testing::Range<uint64_t>(1, 21));

// --------------------------------------------------- SimulateExpectedCracks

TEST(SimulatedTest, MeanAndStdDevAcrossRuns) {
  auto table = FrequencyTable::FromSupports({2, 3, 5, 5, 7, 7}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = MakeCompliantIntervalBelief(*table, 0.15);
  ASSERT_TRUE(beta.ok());

  SimulationOptions opt;
  opt.exec.runs = 5;
  opt.sampler.num_samples = 400;
  opt.sampler.burn_in_sweeps = 40;
  opt.sampler.thinning_sweeps = 3;
  auto sim = SimulateExpectedCracks(groups, *beta, opt);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim->run_means.size(), 5u);
  EXPECT_TRUE(sim->seed_was_perfect);

  auto exact = DirectExpectedCracks(groups, *beta);
  ASSERT_TRUE(exact.ok());
  // Within one-ish standard deviation plus slack (the paper's Figure 10
  // criterion).
  EXPECT_NEAR(sim->mean, *exact, std::max(0.2, 3.0 * sim->stddev));
}

TEST(SimulatedTest, ZeroRunsRejected) {
  auto table = FrequencyTable::FromSupports({2, 3}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  SimulationOptions opt;
  opt.exec.runs = 0;
  EXPECT_TRUE(SimulateExpectedCracks(groups, MakeIgnorantBelief(2), opt)
                  .status().IsInvalidArgument());
}

}  // namespace
}  // namespace anonsafe
