#include <gtest/gtest.h>

#include "belief/builders.h"
#include "core/graph_oestimate.h"
#include "data/frequency.h"
#include "datagen/quest.h"
#include "graph/bipartite_graph.h"
#include "graph/permanent.h"
#include "powerset/pair_attack.h"
#include "powerset/pair_belief.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

/// Camouflage scenario: items 0 and 1 have identical supports (same
/// frequency group, indistinguishable at the item level), but item 0
/// co-occurs with item 2 while item 1 never does. Pair knowledge about
/// {0, 2} breaks the camouflage.
Database CamouflageDb() {
  Database db(3);
  EXPECT_TRUE(db.AddTransaction({0, 2}).ok());
  EXPECT_TRUE(db.AddTransaction({0, 2}).ok());
  EXPECT_TRUE(db.AddTransaction({1}).ok());
  EXPECT_TRUE(db.AddTransaction({1}).ok());
  EXPECT_TRUE(db.AddTransaction({2}).ok());
  EXPECT_TRUE(db.AddTransaction({0, 1, 2}).ok());
  return db;
}

// --------------------------------------------------------- PairSupportMatrix

TEST(PairSupportMatrixTest, CountsPairsAndDiagonal) {
  Database db = CamouflageDb();
  auto pairs = PairSupportMatrix::Compute(db);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->support(0, 2), 3u);
  EXPECT_EQ(pairs->support(2, 0), 3u);  // symmetric
  EXPECT_EQ(pairs->support(0, 1), 1u);
  EXPECT_EQ(pairs->support(1, 2), 1u);
  // Diagonal = item support.
  EXPECT_EQ(pairs->support(0, 0), 3u);
  EXPECT_EQ(pairs->support(1, 1), 3u);
  EXPECT_EQ(pairs->support(2, 2), 4u);
  EXPECT_DOUBLE_EQ(pairs->frequency(0, 2), 0.5);
}

TEST(PairSupportMatrixTest, Guards) {
  Database empty(2);
  EXPECT_TRUE(PairSupportMatrix::Compute(empty).status()
                  .IsInvalidArgument());
  Database db(10);
  ASSERT_TRUE(db.AddTransaction({0}).ok());
  EXPECT_TRUE(PairSupportMatrix::Compute(db, 5).status().IsOutOfRange());
}

// -------------------------------------------------------- PairBeliefFunction

TEST(PairBeliefTest, ConstrainAndLookup) {
  PairBeliefFunction belief(5);
  EXPECT_TRUE(belief.Constrain(1, 3, {0.2, 0.4}).ok());
  EXPECT_TRUE(belief.IsConstrained(3, 1));  // unordered
  EXPECT_EQ(belief.interval(3, 1), (BeliefInterval{0.2, 0.4}));
  EXPECT_EQ(belief.interval(0, 4), (BeliefInterval{0.0, 1.0}));
  EXPECT_EQ(belief.num_constraints(), 1u);

  EXPECT_TRUE(belief.Constrain(1, 1, {0.0, 1.0}).IsInvalidArgument());
  EXPECT_TRUE(belief.Constrain(1, 9, {0.0, 1.0}).IsInvalidArgument());
  EXPECT_TRUE(belief.Constrain(1, 2, {0.5, 0.4}).IsInvalidArgument());
}

TEST(PairBeliefTest, ComplianceFraction) {
  Database db = CamouflageDb();
  auto pairs = PairSupportMatrix::Compute(db);
  ASSERT_TRUE(pairs.ok());
  PairBeliefFunction belief(3);
  ASSERT_TRUE(belief.Constrain(0, 2, {0.4, 0.6}).ok());   // true f = 0.5 ok
  ASSERT_TRUE(belief.Constrain(1, 2, {0.5, 0.8}).ok());   // true f = 1/6 no
  auto alpha = belief.ComplianceFraction(*pairs);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 0.5);
}

TEST(PairBeliefTest, CompliantBuilderPicksTopPairs) {
  Database db = CamouflageDb();
  auto pairs = PairSupportMatrix::Compute(db);
  ASSERT_TRUE(pairs.ok());
  auto belief = MakeCompliantPairBelief(*pairs, 1, 0.05);
  ASSERT_TRUE(belief.ok());
  EXPECT_EQ(belief->num_constraints(), 1u);
  EXPECT_TRUE(belief->IsConstrained(0, 2));  // support 3 is the top pair
  auto alpha = belief->ComplianceFraction(*pairs);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 1.0);
}

TEST(PairBeliefTest, RandomBuilderRespectsMinSupport) {
  Database db = CamouflageDb();
  auto pairs = PairSupportMatrix::Compute(db);
  ASSERT_TRUE(pairs.ok());
  Rng rng(3);
  auto belief = MakeRandomPairBelief(*pairs, 10, 0.05, 2, &rng);
  ASSERT_TRUE(belief.ok());
  // Only {0,2} has pair support >= 2.
  EXPECT_EQ(belief->num_constraints(), 1u);
  EXPECT_TRUE(belief->IsConstrained(0, 2));
}

// ---------------------------------------------------------------- The attack

TEST(PairAttackTest, PairKnowledgeBreaksCamouflage) {
  Database db = CamouflageDb();
  auto table = FrequencyTable::Compute(db);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto pairs = PairSupportMatrix::Compute(db);
  ASSERT_TRUE(pairs.ok());

  // Item-level: exact frequencies known. Items 0 and 1 share a group, so
  // they protect each other: point-valued E(X) = 2 (Lemma 3: g = 2).
  auto item_belief = MakePointValuedBelief(*table);
  ASSERT_TRUE(item_belief.ok());
  auto graph = BipartiteGraph::Build(groups, *item_belief);
  ASSERT_TRUE(graph.ok());
  auto unconstrained = ExactExpectedCracksByPermanent(*graph);
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_NEAR(*unconstrained, 2.0, 1e-9);

  // Pair level: the hacker also knows items 0 and 2 co-occur ~50% of the
  // time. Only the identity assignment of {0, 1} satisfies it.
  PairBeliefFunction pair_belief(3);
  ASSERT_TRUE(pair_belief.Constrain(0, 2, {0.4, 0.6}).ok());

  auto constrained = EnumerateConstrainedCrackDistribution(
      *graph, *pairs, pair_belief);
  ASSERT_TRUE(constrained.ok());
  EXPECT_EQ(constrained->num_matchings, 1u);  // only the identity survives
  EXPECT_NEAR(constrained->expected, 3.0, 1e-9);

  // The AC-3 pruning reaches the same conclusion structurally.
  auto pruned = PruneWithPairBeliefs(*graph, *pairs, pair_belief);
  ASSERT_TRUE(pruned.ok());
  EXPECT_GT(pruned->pruned_edges, 0u);
  auto oe = ComputeOEstimateOnGraph(pruned->graph);
  ASSERT_TRUE(oe.ok());
  EXPECT_NEAR(oe->expected_cracks, 3.0, 1e-9);
}

TEST(PairAttackTest, UnconstrainedBeliefPrunesNothing) {
  Database db = CamouflageDb();
  auto table = FrequencyTable::Compute(db);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto pairs = PairSupportMatrix::Compute(db);
  ASSERT_TRUE(pairs.ok());
  auto graph = BipartiteGraph::Build(groups, MakeIgnorantBelief(3));
  ASSERT_TRUE(graph.ok());
  PairBeliefFunction empty_belief(3);
  auto pruned = PruneWithPairBeliefs(*graph, *pairs, empty_belief);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->pruned_edges, 0u);
  EXPECT_EQ(pruned->graph.num_edges(), graph->num_edges());
}

TEST(PairAttackTest, DomainMismatchFails) {
  Database db = CamouflageDb();
  auto pairs = PairSupportMatrix::Compute(db);
  ASSERT_TRUE(pairs.ok());
  auto graph = BipartiteGraph::FromAdjacency(2, {{0, 1}, {0, 1}});
  ASSERT_TRUE(graph.ok());
  PairBeliefFunction belief(2);
  EXPECT_TRUE(PruneWithPairBeliefs(*graph, *pairs, belief)
                  .status().IsInvalidArgument());
  EXPECT_TRUE(EnumerateConstrainedCrackDistribution(*graph, *pairs, belief)
                  .status().IsInvalidArgument());
}

class PairPruningSoundnessTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(PairPruningSoundnessTest, PruningPreservesConstrainedMatchings) {
  // Soundness: AC-3 never removes an edge used by any mapping that is
  // consistent with both levels — the constrained crack distribution is
  // identical before and after pruning.
  Rng rng(GetParam() * 131);
  QuestParams params;
  params.num_items = 8;
  params.num_transactions = 60;
  params.avg_txn_size = 3.0;
  params.seed = GetParam();
  auto db = GenerateQuestDatabase(params);
  ASSERT_TRUE(db.ok());
  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto pairs = PairSupportMatrix::Compute(*db);
  ASSERT_TRUE(pairs.ok());

  auto item_belief = MakeCompliantIntervalBelief(
      *table, 0.05 + 0.3 * rng.UniformDouble());
  ASSERT_TRUE(item_belief.ok());
  auto graph = BipartiteGraph::Build(groups, *item_belief);
  ASSERT_TRUE(graph.ok());

  auto pair_belief = MakeRandomPairBelief(
      *pairs, 4, 0.02 + 0.1 * rng.UniformDouble(), 1, &rng);
  ASSERT_TRUE(pair_belief.ok());

  auto before = EnumerateConstrainedCrackDistribution(*graph, *pairs,
                                                      *pair_belief);
  ASSERT_TRUE(before.ok());
  auto pruned = PruneWithPairBeliefs(*graph, *pairs, *pair_belief);
  ASSERT_TRUE(pruned.ok());
  auto after = EnumerateConstrainedCrackDistribution(pruned->graph, *pairs,
                                                     *pair_belief);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->num_matchings, after->num_matchings);
  EXPECT_NEAR(before->expected, after->expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairPruningSoundnessTest,
                         ::testing::Range<uint64_t>(1, 16));

class PairKnowledgeMonotonicityTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PairKnowledgeMonotonicityTest, MoreCompliantPairsMoreCracks) {
  // Adding compliant pair constraints can only shrink the mapping space
  // around the truth: expected cracks are non-decreasing in the number
  // of constraints.
  Rng rng(GetParam() * 733);
  QuestParams params;
  params.num_items = 7;
  params.num_transactions = 50;
  params.avg_txn_size = 3.0;
  params.seed = GetParam() + 100;
  auto db = GenerateQuestDatabase(params);
  ASSERT_TRUE(db.ok());
  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto pairs = PairSupportMatrix::Compute(*db);
  ASSERT_TRUE(pairs.ok());
  auto item_belief = MakeCompliantIntervalBelief(*table, 0.15);
  ASSERT_TRUE(item_belief.ok());
  auto graph = BipartiteGraph::Build(groups, *item_belief);
  ASSERT_TRUE(graph.ok());

  double prev = -1.0;
  for (size_t k : {0u, 2u, 5u, 10u}) {
    auto pair_belief = MakeCompliantPairBelief(*pairs, k, 0.01);
    ASSERT_TRUE(pair_belief.ok());
    auto dist = EnumerateConstrainedCrackDistribution(*graph, *pairs,
                                                      *pair_belief);
    ASSERT_TRUE(dist.ok());
    ASSERT_GT(dist->num_matchings, 0u);  // identity always survives
    EXPECT_GE(dist->expected, prev - 1e-9) << "k=" << k;
    prev = dist->expected;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairKnowledgeMonotonicityTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace anonsafe
