#include "serve/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "serve/protocol.h"
#include "serve/transport.h"
#include "tools/cli.h"
#include "util/json.h"

namespace anonsafe {
namespace serve {
namespace {

// The Figure 8 running example scale: 4 items, 10 transactions, two
// frequency groups.
constexpr char kDataset[] =
    "0 1 2\n0 1\n1 2 3\n0 2 3\n1 3\n0 1 3\n2 3\n0 3\n1 2\n0 1 2 3\n";

std::string WriteDatasetFile() {
  const std::string path = ::testing::TempDir() + "/serve_test.dat";
  std::ofstream out(path);
  out << kDataset;
  return path;
}

json::Value Send(Server& server, const std::string& line) {
  auto parsed = json::Value::Parse(server.HandleLine(line));
  EXPECT_TRUE(parsed.ok());
  return parsed.ok() ? *parsed : json::Value();
}

bool IsOk(const json::Value& response) {
  const json::Value* ok = response.Find("ok");
  return ok != nullptr && ok->is_bool() && ok->AsBool();
}

std::string ErrorCode(const json::Value& response) {
  const json::Value* error = response.Find("error");
  if (error == nullptr) return "";
  auto code = error->GetString("code");
  return code.ok() ? *code : "";
}

std::string LoadDataset(Server& server) {
  json::Value response = Send(
      server,
      "{\"schema_version\":1,\"id\":1,\"verb\":\"load_dataset\","
      "\"params\":{\"content\":\"" +
          [] {
            std::string escaped;
            for (char c : std::string(kDataset)) {
              if (c == '\n') {
                escaped += "\\n";
              } else {
                escaped += c;
              }
            }
            return escaped;
          }() +
          "\"}}");
  EXPECT_TRUE(IsOk(response));
  auto key = response.Find("result")->GetString("dataset");
  EXPECT_TRUE(key.ok());
  return key.ok() ? *key : "";
}

TEST(ServeProtocolTest, MalformedJsonIsParseError) {
  Server server;
  json::Value response = Send(server, "this is not json");
  EXPECT_FALSE(IsOk(response));
  EXPECT_EQ(ErrorCode(response), kErrParse);
  // A JSON scalar is equally not a request.
  EXPECT_EQ(ErrorCode(Send(server, "42")), kErrParse);
}

TEST(ServeProtocolTest, OversizedLineIsRejected) {
  ServerOptions options;
  options.max_line_bytes = 100;
  Server server(options);
  json::Value response = Send(server, std::string(200, 'x'));
  EXPECT_EQ(ErrorCode(response), kErrOversizedLine);
}

TEST(ServeProtocolTest, UnknownVerb) {
  Server server;
  json::Value response =
      Send(server, "{\"schema_version\":1,\"id\":7,\"verb\":\"frobnicate\"}");
  EXPECT_EQ(ErrorCode(response), kErrUnknownVerb);
  // The id is echoed so the client can correlate.
  EXPECT_EQ(response.Find("id")->AsDouble(), 7.0);
}

TEST(ServeProtocolTest, SleepVerbRequiresTestGate) {
  Server server;  // enable_test_verbs defaults to false
  json::Value response = Send(
      server,
      "{\"schema_version\":1,\"verb\":\"sleep\",\"params\":{\"millis\":1}}");
  EXPECT_EQ(ErrorCode(response), kErrUnknownVerb);
}

TEST(ServeProtocolTest, MissingOrWrongSchemaVersion) {
  Server server;
  EXPECT_EQ(ErrorCode(Send(server, "{\"verb\":\"metrics\"}")),
            kErrBadSchemaVersion);
  EXPECT_EQ(ErrorCode(Send(
                server, "{\"schema_version\":3,\"verb\":\"metrics\"}")),
            kErrBadSchemaVersion);
  EXPECT_EQ(
      ErrorCode(Send(server,
                     "{\"schema_version\":\"1\",\"verb\":\"metrics\"}")),
      kErrBadSchemaVersion);
}

TEST(ServeProtocolTest, MissingVerbAndBadParams) {
  Server server;
  EXPECT_EQ(ErrorCode(Send(server, "{\"schema_version\":1}")),
            kErrInvalidParams);
  EXPECT_EQ(ErrorCode(Send(server,
                           "{\"schema_version\":1,\"verb\":\"metrics\","
                           "\"params\":[]}")),
            kErrInvalidParams);
}

TEST(ServeTest, LoadAssessFlowAndNotFound) {
  Server server;
  const std::string key = LoadDataset(server);
  ASSERT_FALSE(key.empty());

  json::Value missing =
      Send(server,
           "{\"schema_version\":1,\"verb\":\"assess_risk\","
           "\"params\":{\"dataset\":\"nope\"}}");
  EXPECT_EQ(ErrorCode(missing), kErrNotFound);

  json::Value assess =
      Send(server,
           "{\"schema_version\":1,\"verb\":\"assess_risk\","
           "\"params\":{\"dataset\":\"" + key + "\"}}");
  ASSERT_TRUE(IsOk(assess));
  const json::Value* report = assess.Find("result")->Find("report");
  ASSERT_NE(report, nullptr);
  auto version = report->GetNumber("schema_version");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1.0);
  EXPECT_TRUE(report->Find("recipe") != nullptr);
}

TEST(ServeTest, RepeatedLoadHitsCache) {
  Server server;
  const std::string key1 = LoadDataset(server);

  json::Value second = Send(
      server,
      "{\"schema_version\":1,\"verb\":\"load_dataset\","
      "\"params\":{\"content\":\"0 1 2\\n0 1\\n1 2 3\\n0 2 3\\n1 3\\n"
      "0 1 3\\n2 3\\n0 3\\n1 2\\n0 1 2 3\\n\"}}");
  ASSERT_TRUE(IsOk(second));
  auto cached = second.Find("result")->GetBoolOr("cached", false);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(*cached);
  auto key2 = second.Find("result")->GetString("dataset");
  ASSERT_TRUE(key2.ok());
  EXPECT_EQ(*key2, key1);

  // The hit is observable in the metrics verb, which is how the
  // acceptance check verifies re-parse was skipped.
  json::Value metrics =
      Send(server, "{\"schema_version\":1,\"verb\":\"metrics\"}");
  ASSERT_TRUE(IsOk(metrics));
  auto prometheus = metrics.Find("result")->GetString("prometheus");
  ASSERT_TRUE(prometheus.ok());
  EXPECT_NE(prometheus->find("anonsafe_serve_dataset_cache_hits_total"),
            std::string::npos);
}

TEST(ServeTest, RepeatedAssessReusesRecipeArtifacts) {
  Server server;
  const std::string key = LoadDataset(server);
  const std::string request =
      "{\"schema_version\":1,\"verb\":\"assess_risk\","
      "\"params\":{\"dataset\":\"" + key + "\"}}";
  json::Value first = Send(server, request);
  json::Value second = Send(server, request);
  ASSERT_TRUE(IsOk(first));
  ASSERT_TRUE(IsOk(second));
  EXPECT_EQ(first.Find("result")->Dump(), second.Find("result")->Dump());

  json::Value metrics =
      Send(server, "{\"schema_version\":1,\"verb\":\"metrics\"}");
  auto prometheus = metrics.Find("result")->GetString("prometheus");
  ASSERT_TRUE(prometheus.ok());
  EXPECT_NE(prometheus->find("anonsafe_recipe_artifact_hits_total"),
            std::string::npos);
}

TEST(ServeTest, OEstimateAndSimilarityVerbs) {
  Server server;
  const std::string key = LoadDataset(server);

  json::Value oe = Send(server,
                        "{\"schema_version\":1,\"verb\":\"oestimate\","
                        "\"params\":{\"dataset\":\"" + key + "\"}}");
  ASSERT_TRUE(IsOk(oe));
  auto cracks = oe.Find("result")->GetNumber("expected_cracks");
  ASSERT_TRUE(cracks.ok());
  EXPECT_GE(*cracks, 0.0);

  json::Value similarity =
      Send(server,
           "{\"schema_version\":1,\"verb\":\"similarity\","
           "\"params\":{\"dataset\":\"" + key +
               "\",\"samples_per_fraction\":2}}");
  ASSERT_TRUE(IsOk(similarity));
  const json::Value* curve = similarity.Find("result")->Find("curve");
  ASSERT_NE(curve, nullptr);
  EXPECT_TRUE(curve->is_array());
  EXPECT_FALSE(curve->items().empty());
}

TEST(ServeTest, EstimatorFieldSelectsPlanner) {
  Server server;
  const std::string key = LoadDataset(server);

  json::Value assess =
      Send(server,
           "{\"schema_version\":1,\"verb\":\"assess_risk\","
           "\"params\":{\"dataset\":\"" + key +
               "\",\"estimator\":\"auto\"}}");
  ASSERT_TRUE(IsOk(assess));
  const json::Value* report = assess.Find("result")->Find("report");
  ASSERT_NE(report, nullptr);
  const json::Value* recipe = report->Find("recipe");
  ASSERT_NE(recipe, nullptr);
  auto estimator = recipe->GetString("estimator");
  ASSERT_TRUE(estimator.ok());
  EXPECT_EQ(*estimator, "auto");
  // The planner path tags the interval estimate with per-block
  // provenance; the report must carry it through.
  const json::Value* blocks = recipe->Find("interval_blocks");
  ASSERT_NE(blocks, nullptr);
  EXPECT_TRUE(blocks->is_array());
  EXPECT_FALSE(blocks->items().empty());

  // And the per-block counters are scrapeable through the metrics verb.
  json::Value metrics =
      Send(server, "{\"schema_version\":1,\"verb\":\"metrics\"}");
  ASSERT_TRUE(IsOk(metrics));
  auto prometheus = metrics.Find("result")->GetString("prometheus");
  ASSERT_TRUE(prometheus.ok());
  EXPECT_NE(prometheus->find("anonsafe_planner_blocks_total"),
            std::string::npos);
}

TEST(ServeTest, UnknownEstimatorIsInvalidParams) {
  Server server;
  const std::string key = LoadDataset(server);
  json::Value response =
      Send(server,
           "{\"schema_version\":1,\"verb\":\"assess_risk\","
           "\"params\":{\"dataset\":\"" + key +
               "\",\"estimator\":\"frobnicate\"}}");
  EXPECT_FALSE(IsOk(response));
  EXPECT_EQ(ErrorCode(response), kErrInvalidParams);
}

// The tentpole acceptance criterion: the serve response embeds the exact
// document the one-shot CLI prints, at any thread count.
TEST(ServeTest, AssessRiskBitIdenticalToCli) {
  const std::string path = WriteDatasetFile();

  CliInvocation cli;
  cli.command = "report";
  cli.positional = {path};
  cli.flags["json"] = "true";
  std::ostringstream cli_out;
  ASSERT_TRUE(RunCli(cli, cli_out).ok());
  std::string cli_line = cli_out.str();
  ASSERT_FALSE(cli_line.empty());
  ASSERT_EQ(cli_line.back(), '\n');
  cli_line.pop_back();

  for (size_t threads : {size_t{1}, size_t{8}}) {
    Server server;
    json::Value load =
        Send(server,
             "{\"schema_version\":1,\"verb\":\"load_dataset\","
             "\"params\":{\"path\":\"" + path + "\"}}");
    ASSERT_TRUE(IsOk(load));
    auto key = load.Find("result")->GetString("dataset");
    ASSERT_TRUE(key.ok());
    json::Value assess =
        Send(server, "{\"schema_version\":1,\"verb\":\"assess_risk\","
                     "\"params\":{\"dataset\":\"" + *key +
                         "\",\"threads\":" + std::to_string(threads) + "}}");
    ASSERT_TRUE(IsOk(assess));
    EXPECT_EQ(assess.Find("result")->Find("report")->Dump(), cli_line)
        << "threads=" << threads;
  }
}

TEST(ServeTest, AdversaryReportsBitIdenticalToCli) {
  // The adversary seam spans three surfaces — CLI flag, serve param,
  // report provenance. For every registered adversary the serve report
  // document must be byte-identical to `report --json --adversary=...`.
  const std::string path = WriteDatasetFile();
  for (const std::string spec :
       {std::string("interval"), std::string("probabilistic:span=1,sigma=0.5"),
        std::string("exact_support:k=2")}) {
    CliInvocation cli;
    cli.command = "report";
    cli.positional = {path};
    cli.flags["json"] = "true";
    cli.flags["adversary"] = spec;
    std::ostringstream cli_out;
    ASSERT_TRUE(RunCli(cli, cli_out).ok()) << spec;
    std::string cli_line = cli_out.str();
    ASSERT_FALSE(cli_line.empty()) << spec;
    cli_line.pop_back();  // trailing newline

    Server server;
    json::Value load =
        Send(server,
             "{\"schema_version\":1,\"verb\":\"load_dataset\","
             "\"params\":{\"path\":\"" + path + "\"}}");
    ASSERT_TRUE(IsOk(load)) << spec;
    auto key = load.Find("result")->GetString("dataset");
    ASSERT_TRUE(key.ok());
    json::Value assess =
        Send(server, "{\"schema_version\":1,\"verb\":\"assess_risk\","
                     "\"params\":{\"dataset\":\"" + *key +
                         "\",\"adversary\":\"" + spec + "\"}}");
    ASSERT_TRUE(IsOk(assess)) << spec;
    EXPECT_EQ(assess.Find("result")->Find("report")->Dump(), cli_line)
        << spec;
  }
}

TEST(ServeTest, ConcurrentClientsShareOneCachedDataset) {
  ServerOptions options;
  options.workers = 4;
  Server server(options);
  const std::string key = LoadDataset(server);
  const std::string request =
      "{\"schema_version\":1,\"verb\":\"assess_risk\","
      "\"params\":{\"dataset\":\"" + key + "\"}}";

  std::vector<std::string> responses(8);
  std::vector<std::thread> clients;
  for (size_t i = 0; i < responses.size(); ++i) {
    clients.emplace_back(
        [&, i] { responses[i] = server.HandleLine(request); });
  }
  for (std::thread& t : clients) t.join();
  for (const std::string& response : responses) {
    EXPECT_EQ(response, responses[0]);
  }
  auto first = json::Value::Parse(responses[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(IsOk(*first));
}

TEST(ServeTest, DeadlineCancelsLongRequest) {
  ServerOptions options;
  options.enable_test_verbs = true;
  Server server(options);
  const auto start = std::chrono::steady_clock::now();
  json::Value response =
      Send(server,
           "{\"schema_version\":1,\"verb\":\"sleep\","
           "\"params\":{\"millis\":60000,\"deadline_ms\":50}}");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(ErrorCode(response), kErrDeadlineExceeded);
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

TEST(ServeTest, QueueFullBackpressure) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 0;  // never wait: the second request is refused
  options.enable_test_verbs = true;
  Server server(options);

  std::thread occupant([&] {
    server.HandleLine(
        "{\"schema_version\":1,\"verb\":\"sleep\","
        "\"params\":{\"millis\":400}}");
  });
  while (server.outstanding() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  json::Value refused = Send(
      server,
      "{\"schema_version\":1,\"verb\":\"sleep\",\"params\":{\"millis\":1}}");
  EXPECT_EQ(ErrorCode(refused), kErrQueueFull);
  occupant.join();
}

TEST(ServeTest, ShutdownDrainsInFlightWork) {
  ServerOptions options;
  options.workers = 1;
  options.enable_test_verbs = true;
  Server server(options);

  std::string sleep_response;
  std::thread occupant([&] {
    sleep_response = server.HandleLine(
        "{\"schema_version\":1,\"verb\":\"sleep\","
        "\"params\":{\"millis\":200}}");
  });
  while (server.outstanding() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  json::Value drained =
      Send(server, "{\"schema_version\":1,\"verb\":\"shutdown\"}");
  ASSERT_TRUE(IsOk(drained));
  EXPECT_TRUE(server.draining());
  // Drain means drained: nothing admitted is still in flight when the
  // shutdown response exists.
  EXPECT_EQ(server.outstanding(), 0u);

  occupant.join();
  // The in-flight sleep completed successfully — nothing was dropped.
  auto sleep_parsed = json::Value::Parse(sleep_response);
  ASSERT_TRUE(sleep_parsed.ok());
  EXPECT_TRUE(IsOk(*sleep_parsed));

  // Post-shutdown compute requests are refused.
  json::Value late =
      Send(server,
           "{\"schema_version\":1,\"verb\":\"load_dataset\","
           "\"params\":{\"content\":\"0 1\\n\"}}");
  EXPECT_EQ(ErrorCode(late), kErrShuttingDown);
}

TEST(ServeTransportTest, StreamsSessionEndToEnd) {
  Server server;
  std::istringstream in(
      "{\"schema_version\":1,\"id\":1,\"verb\":\"load_dataset\","
      "\"params\":{\"content\":\"0 1 2\\n0 1\\n1 2\\n2 0\\n\"}}\n"
      "\n"
      "{\"schema_version\":1,\"id\":2,\"verb\":\"metrics\"}\n"
      "{\"schema_version\":1,\"id\":3,\"verb\":\"shutdown\"}\n"
      "{\"schema_version\":1,\"id\":4,\"verb\":\"metrics\"}\n");
  std::ostringstream out;
  ASSERT_TRUE(ServeStreams(server, in, out).ok());

  std::istringstream lines(out.str());
  std::vector<json::Value> responses;
  std::string line;
  while (std::getline(lines, line)) {
    auto parsed = json::Value::Parse(line);
    ASSERT_TRUE(parsed.ok());
    responses.push_back(*parsed);
  }
  // Blank input line skipped; the session stops at shutdown, so the
  // trailing metrics request is never read.
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(IsOk(responses[0]));
  EXPECT_TRUE(IsOk(responses[1]));
  EXPECT_TRUE(IsOk(responses[2]));
  EXPECT_EQ(responses[2].Find("id")->AsDouble(), 3.0);
}

TEST(ServeTransportTest, TcpSessionEndToEnd) {
  Server server;
  uint16_t port = 0;
  std::mutex mu;
  std::condition_variable cv;
  TcpServerOptions options;
  options.on_listening = [&](uint16_t bound) {
    std::lock_guard<std::mutex> lock(mu);
    port = bound;
    cv.notify_all();
  };
  Status serve_status = Status::OK();
  std::thread serving(
      [&] { serve_status = ServeTcp(server, options); });
  {
    std::unique_lock<std::mutex> lock(mu);
    if (!cv.wait_for(lock, std::chrono::seconds(5),
                     [&] { return port != 0; })) {
      serving.detach();
      GTEST_SKIP() << "TCP listen did not come up (sandboxed environment?)";
    }
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    server.HandleLine("{\"schema_version\":1,\"verb\":\"shutdown\"}");
    serving.join();
    GTEST_SKIP() << "loopback connect refused (sandboxed environment?)";
  }

  const std::string request =
      "{\"schema_version\":1,\"id\":1,\"verb\":\"metrics\"}\n"
      "{\"schema_version\":1,\"id\":2,\"verb\":\"shutdown\"}\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));

  std::string received;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    received.append(buf, static_cast<size_t>(n));
    if (std::count(received.begin(), received.end(), '\n') >= 2) break;
  }
  ::close(fd);
  serving.join();
  EXPECT_TRUE(serve_status.ok());

  std::istringstream lines(received);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  auto metrics = json::Value::Parse(line);
  ASSERT_TRUE(metrics.ok());
  EXPECT_TRUE(IsOk(*metrics));
  ASSERT_TRUE(std::getline(lines, line));
  auto drained = json::Value::Parse(line);
  ASSERT_TRUE(drained.ok());
  EXPECT_TRUE(IsOk(*drained));
}

// ------------------------------------------------ Request observability

// The timing-free shape of a span exported in a response's `trace` field.
std::string TraceShape(const json::Value& response) {
  const json::Value* trace = response.Find("trace");
  if (trace == nullptr) return "";
  const json::Value* spans = trace->Find("spans");
  if (spans == nullptr || !spans->is_array()) return "";
  std::string shape;
  for (const json::Value& span : spans->items()) {
    shape += span.GetStringOr("name", "?").value();
    shape += "@" + std::to_string(
                       static_cast<long long>(span.GetNumberOr("depth", -1)
                                                  .value()));
    const json::Value* parent = span.Find("parent");
    if (parent != nullptr && parent->is_number()) {
      shape += "<" + std::to_string(
                         static_cast<long long>(parent->AsDouble()));
    }
    if (const json::Value* annotations = span.Find("annotations")) {
      shape += annotations->Dump();
    }
    shape += ";";
  }
  return shape;
}

TEST(ServeObsTest, TraceFieldIsOptIn) {
  Server server;
  std::string key = LoadDataset(server);

  json::Value plain = Send(
      server, "{\"schema_version\":1,\"id\":2,\"verb\":\"assess_risk\","
              "\"params\":{\"dataset\":\"" + key + "\"}}");
  ASSERT_TRUE(IsOk(plain));
  EXPECT_EQ(plain.Find("trace"), nullptr);

  json::Value traced = Send(
      server, "{\"schema_version\":1,\"id\":3,\"verb\":\"assess_risk\","
              "\"params\":{\"dataset\":\"" + key + "\",\"trace\":true}}");
  ASSERT_TRUE(IsOk(traced));
  const json::Value* trace = traced.Find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->GetStringOr("trace_id", "").value(), "req-3");
  const json::Value* spans = trace->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  EXPECT_FALSE(spans->items().empty());
  EXPECT_EQ(spans->items()[0].GetStringOr("name", "").value(),
            "serve.assess_risk");

  // The trace rides on the envelope; the result stays bit-identical to
  // the untraced run.
  EXPECT_EQ(plain.Find("result")->Dump(), traced.Find("result")->Dump());
}

TEST(ServeObsTest, TracedSpanTreeIdenticalAtOneAndEightThreads) {
  // Fresh server per thread count: repeated assess_risk on one server
  // reuses cached recipe artifacts, which legitimately skips spans.
  auto traced_assess = [](size_t threads) {
    Server server;
    std::string key = LoadDataset(server);
    return Send(
        server, "{\"schema_version\":1,\"id\":2,\"verb\":\"assess_risk\","
                "\"params\":{\"dataset\":\"" + key +
                "\",\"trace\":true,\"threads\":" + std::to_string(threads) +
                "}}");
  };
  json::Value one = traced_assess(1);
  json::Value eight = traced_assess(8);
  ASSERT_TRUE(IsOk(one));
  ASSERT_TRUE(IsOk(eight));
  std::string shape_one = TraceShape(one);
  ASSERT_FALSE(shape_one.empty());
  EXPECT_EQ(shape_one, TraceShape(eight));
  // And the results themselves are bit-identical, as ever.
  EXPECT_EQ(one.Find("result")->Dump(), eight.Find("result")->Dump());
}

TEST(ServeObsTest, FlightRecorderRetainsOutcomes) {
  ServerOptions options;
  options.enable_test_verbs = true;
  options.workers = 1;
  options.queue_capacity = 0;
  Server server(options);
  std::string key = LoadDataset(server);

  // A deadline-exceeded request.
  Send(server, "{\"schema_version\":1,\"verb\":\"sleep\","
               "\"params\":{\"millis\":60000,\"deadline_ms\":50}}");
  // A queue-rejected request: occupy the single worker, then overflow.
  std::thread occupant([&] {
    server.HandleLine(
        "{\"schema_version\":1,\"verb\":\"sleep\","
        "\"params\":{\"millis\":300}}");
  });
  while (server.outstanding() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Send(server,
       "{\"schema_version\":1,\"verb\":\"sleep\",\"params\":{\"millis\":1}}");
  occupant.join();
  // And a parse error.
  server.HandleLine("not json");

  std::vector<std::string> outcomes;
  for (const RequestSummary& summary : server.flight_recorder().Snapshot()) {
    outcomes.push_back(summary.verb + ":" + summary.outcome);
  }
  auto has = [&](const std::string& entry) {
    return std::count(outcomes.begin(), outcomes.end(), entry) > 0;
  };
  EXPECT_TRUE(has("load_dataset:ok"));
  EXPECT_TRUE(has(std::string("sleep:") + kErrDeadlineExceeded));
  EXPECT_TRUE(has(std::string("sleep:") + kErrQueueFull));
  EXPECT_TRUE(has(std::string(":") + kErrParse));
  EXPECT_TRUE(has("sleep:ok"));
}

TEST(ServeObsTest, FlightRecorderEvictsOldestAndSkipsControlVerbs) {
  ServerOptions options;
  options.flight_recorder_capacity = 2;
  Server server(options);
  std::string key = LoadDataset(server);
  Send(server, "{\"schema_version\":1,\"id\":2,\"verb\":\"assess_risk\","
               "\"params\":{\"dataset\":\"" + key + "\"}}");
  // `metrics` and `debug` are observers, not requests worth debugging —
  // polling them must not evict real entries.
  Send(server, "{\"schema_version\":1,\"verb\":\"metrics\"}");
  Send(server, "{\"schema_version\":1,\"verb\":\"debug\"}");

  std::vector<RequestSummary> entries = server.flight_recorder().Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].verb, "load_dataset");
  EXPECT_EQ(entries[1].verb, "assess_risk");
  EXPECT_EQ(server.flight_recorder().total_recorded(), 2u);

  // A third real request evicts the oldest.
  Send(server, "{\"schema_version\":1,\"id\":3,\"verb\":\"assess_risk\","
               "\"params\":{\"dataset\":\"" + key + "\"}}");
  entries = server.flight_recorder().Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].verb, "assess_risk");
  EXPECT_EQ(entries[1].verb, "assess_risk");
}

TEST(ServeObsTest, DebugVerbReportsRecorderAndConfig) {
  ServerOptions options;
  options.workers = 3;
  options.slow_request_ms = 250;
  Server server(options);
  std::string key = LoadDataset(server);

  json::Value response =
      Send(server, "{\"schema_version\":1,\"id\":9,\"verb\":\"debug\"}");
  ASSERT_TRUE(IsOk(response));
  const json::Value* result = response.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->GetNumberOr("workers", 0).value(), 3.0);
  EXPECT_EQ(result->GetNumberOr("slow_request_ms", 0).value(), 250.0);
  EXPECT_EQ(result->GetNumberOr("outstanding", -1).value(), 0.0);
  EXPECT_FALSE(result->GetStringOr("log_level", "").value().empty());

  const json::Value* recorder = result->Find("flight_recorder");
  ASSERT_NE(recorder, nullptr);
  EXPECT_EQ(recorder->GetNumberOr("recorded", 0).value(), 1.0);
  const json::Value* requests = recorder->Find("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_TRUE(requests->is_array());
  ASSERT_EQ(requests->items().size(), 1u);
  const json::Value& entry = requests->items()[0];
  EXPECT_EQ(entry.GetStringOr("verb", "").value(), "load_dataset");
  EXPECT_EQ(entry.GetStringOr("outcome", "").value(), "ok");
  EXPECT_TRUE(entry.Find("total_ms") != nullptr);
}

TEST(ServeObsTest, AccessLogAndShutdownDump) {
  std::mutex log_mu;
  std::vector<std::string> lines;
  obs::LogLevel previous = obs::GetLogLevel();
  obs::SetLogLevel(obs::LogLevel::kInfo);
  obs::SetLogSinkForTest([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(log_mu);
    lines.push_back(line);
  });

  {
    Server server;
    std::string key = LoadDataset(server);
    Send(server, "{\"schema_version\":1,\"id\":2,\"verb\":\"assess_risk\","
                 "\"params\":{\"dataset\":\"" + key + "\"}}");
    Send(server, "{\"schema_version\":1,\"verb\":\"shutdown\"}");
  }
  obs::SetLogSinkForTest(nullptr);
  obs::SetLogLevel(previous);

  // One serve.request access-log line per request (including shutdown),
  // plus the flight-recorder dump emitted while draining.
  std::vector<json::Value> requests;
  const json::Value* dump = nullptr;
  std::vector<json::Value> parsed_lines;
  for (const std::string& line : lines) {
    auto parsed = json::Value::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    parsed_lines.push_back(std::move(*parsed));
  }
  for (const json::Value& v : parsed_lines) {
    std::string event = v.GetStringOr("event", "").value();
    if (event == "serve.request") requests.push_back(v);
    if (event == "serve.flight_recorder_dump") dump = &v;
  }
  ASSERT_EQ(requests.size(), 3u);
  EXPECT_EQ(requests[0].GetStringOr("verb", "").value(), "load_dataset");
  EXPECT_EQ(requests[1].GetStringOr("verb", "").value(), "assess_risk");
  EXPECT_EQ(requests[1].GetStringOr("outcome", "").value(), "ok");
  EXPECT_FALSE(requests[1].GetStringOr("estimator", "").value().empty());
  EXPECT_FALSE(requests[1].GetStringOr("dataset", "").value().empty());
  EXPECT_TRUE(requests[1].Find("queue_ms") != nullptr);
  EXPECT_TRUE(requests[1].Find("exec_ms") != nullptr);
  EXPECT_TRUE(requests[1].Find("total_ms") != nullptr);

  ASSERT_NE(dump, nullptr);
  EXPECT_EQ(dump->GetNumberOr("recorded", 0).value(), 2.0);
  const json::Value* dumped = dump->Find("requests");
  ASSERT_NE(dumped, nullptr);
  ASSERT_TRUE(dumped->is_array());
  EXPECT_EQ(dumped->items().size(), 2u);
}

TEST(ServeObsTest, SlowRequestThresholdDumpsTrace) {
  std::mutex log_mu;
  std::vector<std::string> lines;
  obs::LogLevel previous = obs::GetLogLevel();
  obs::SetLogLevel(obs::LogLevel::kWarn);  // warn only: no access log
  obs::SetLogSinkForTest([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(log_mu);
    lines.push_back(line);
  });

  ServerOptions options;
  options.enable_test_verbs = true;
  options.slow_request_ms = 10;
  {
    Server server(options);
    Send(server, "{\"schema_version\":1,\"verb\":\"sleep\","
                 "\"params\":{\"millis\":50}}");
  }
  obs::SetLogSinkForTest(nullptr);
  obs::SetLogLevel(previous);

  bool found = false;
  for (const std::string& line : lines) {
    auto parsed = json::Value::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    if (parsed->GetStringOr("event", "").value() != "serve.slow_request") {
      continue;
    }
    found = true;
    EXPECT_EQ(parsed->GetStringOr("verb", "").value(), "sleep");
    EXPECT_GE(parsed->GetNumberOr("exec_ms", 0).value(), 10.0);
    EXPECT_FALSE(parsed->GetStringOr("trace_id", "").value().empty());
    // The dumped table contains the verb's span.
    EXPECT_NE(parsed->GetStringOr("trace_table", "").value().find(
                  "serve.sleep"),
              std::string::npos);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace serve
}  // namespace anonsafe
