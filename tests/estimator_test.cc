#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "belief/builders.h"
#include "core/direct_method.h"
#include "core/recipe.h"
#include "data/frequency.h"
#include "estimator/closed_forms.h"
#include "estimator/estimators.h"
#include "estimator/planner.h"
#include "exec/exec.h"
#include "graph/bipartite_graph.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

Result<FrequencyGroups> GroupsFromSupports(std::vector<SupportCount> s,
                                           size_t m) {
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyTable t,
                            FrequencyTable::FromSupports(std::move(s), m));
  return FrequencyGroups::Build(t);
}

struct Instance {
  FrequencyTable table;
  FrequencyGroups groups;
  BeliefFunction belief;  // point-valued
};

Result<Instance> MakePointValuedInstance(std::vector<SupportCount> s,
                                         size_t m) {
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyTable t,
                            FrequencyTable::FromSupports(std::move(s), m));
  FrequencyGroups g = FrequencyGroups::Build(t);
  ANONSAFE_ASSIGN_OR_RETURN(BeliefFunction b, MakePointValuedBelief(t));
  return Instance{std::move(t), std::move(g), std::move(b)};
}

/// Two frequency groups of two anons each, with one exclusive item per
/// group and two seam items spanning both — the smallest chain that is
/// neither complete nor singleton.
struct ChainFixture {
  FrequencyGroups groups;
  BeliefFunction belief;
};

Result<ChainFixture> MakeChain() {
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyGroups groups,
                            GroupsFromSupports({10, 10, 20, 20}, 100));
  ANONSAFE_ASSIGN_OR_RETURN(
      BeliefFunction belief,
      BeliefFunction::Create({{0.05, 0.15},    // exclusive to group 0
                              {0.05, 0.25},    // seam
                              {0.05, 0.25},    // seam
                              {0.15, 0.25}})); // exclusive to group 1
  return ChainFixture{std::move(groups), std::move(belief)};
}

/// Twelve items over three groups forming ONE connected block that is
/// neither complete (two items have restricted intervals) nor a chain
/// (the middle items span all three groups): the planner must fall back
/// to the masked Ryser permanent or, beyond the cutoff, to an estimate.
Result<ChainFixture> MakeMessy() {
  std::vector<SupportCount> supports;
  for (SupportCount s : {10, 20, 30}) {
    for (int i = 0; i < 4; ++i) supports.push_back(s);
  }
  ANONSAFE_ASSIGN_OR_RETURN(
      FrequencyTable table,
      FrequencyTable::FromSupports(std::move(supports), 100));
  FrequencyGroups groups = FrequencyGroups::Build(table);
  std::vector<BeliefInterval> intervals(12, {0.1, 0.3});
  intervals[0] = {0.1, 0.1};
  intervals[11] = {0.3, 0.3};
  ANONSAFE_ASSIGN_OR_RETURN(BeliefFunction belief,
                            BeliefFunction::Create(std::move(intervals)));
  return ChainFixture{std::move(groups), std::move(belief)};
}

// ------------------------------------------------------------ enum names

TEST(EstimatorNamesTest, KindRoundTrip) {
  for (EstimatorKind kind :
       {EstimatorKind::kAuto, EstimatorKind::kOe, EstimatorKind::kExact,
        EstimatorKind::kSampler}) {
    auto parsed = ParseEstimatorKind(EstimatorKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  auto bogus = ParseEstimatorKind("bogus");
  ASSERT_FALSE(bogus.ok());
  EXPECT_TRUE(bogus.status().IsInvalidArgument());
}

TEST(EstimatorNamesTest, BlockMethodRoundTrip) {
  for (BlockMethod method :
       {BlockMethod::kSingleton, BlockMethod::kCompleteBipartite,
        BlockMethod::kChain, BlockMethod::kPermanent, BlockMethod::kOEstimate,
        BlockMethod::kSampler}) {
    auto parsed = ParseBlockMethod(BlockMethodName(method));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, method);
  }
  EXPECT_TRUE(ParseBlockMethod("").status().IsInvalidArgument());
}

// ---------------------------------------------------------- closed forms

TEST(ClosedFormsTest, CompleteBipartiteExpectedCracks) {
  EXPECT_EQ(CompleteBipartiteExpectedCracks(0, 0), 0.0);
  EXPECT_EQ(CompleteBipartiteExpectedCracks(0, 5), 0.0);
  EXPECT_EQ(CompleteBipartiteExpectedCracks(5, 5), 1.0);
  EXPECT_EQ(CompleteBipartiteExpectedCracks(1, 4), 0.25);
  EXPECT_EQ(CompleteBipartiteExpectedCracks(3, 4), 0.75);
}

// -------------------------------------------------------------- planning

TEST(PlannerTest, ValidateOptions) {
  PlannerOptions ok;
  EXPECT_TRUE(ValidatePlannerOptions(ok).ok());

  PlannerOptions zero_cutoff;
  zero_cutoff.ryser_cutoff = 0;
  EXPECT_TRUE(ValidatePlannerOptions(zero_cutoff).IsInvalidArgument());

  PlannerOptions huge_cutoff;
  huge_cutoff.ryser_cutoff = kMaxPermanentN + 1;
  EXPECT_TRUE(ValidatePlannerOptions(huge_cutoff).IsInvalidArgument());

  PlannerOptions bad_sampler;
  bad_sampler.block_sampler.num_samples = 0;
  EXPECT_TRUE(ValidatePlannerOptions(bad_sampler).IsInvalidArgument());
}

TEST(PlannerTest, PointValuedBeliefYieldsCompleteBlocks) {
  // Point-valued: every frequency group is its own complete block.
  auto inst = MakePointValuedInstance({10, 20, 20, 20, 30}, 100);
  ASSERT_TRUE(inst.ok());
  auto graph = BipartiteGraph::Build(inst->groups, inst->belief);
  ASSERT_TRUE(graph.ok());
  auto plan = PlanBlocks(*graph, inst->groups);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->blocks.size(), 3u);
  EXPECT_EQ(plan->blocks[0].method, BlockMethod::kSingleton);
  EXPECT_EQ(plan->blocks[1].method, BlockMethod::kCompleteBipartite);
  EXPECT_EQ(plan->blocks[1].items.size(), 3u);
  EXPECT_EQ(plan->blocks[2].method, BlockMethod::kSingleton);

  auto estimate = EstimatePlanned(*plan);
  ASSERT_TRUE(estimate.ok());
  EXPECT_TRUE(estimate->exact);
  // Lemma 3: one expected crack per group.
  EXPECT_EQ(estimate->expected_cracks, 3.0);
  ASSERT_EQ(estimate->blocks.size(), 3u);
  EXPECT_EQ(estimate->blocks[1].expected_cracks, 1.0);
}

TEST(PlannerTest, ChainBlockUsesClosedForm) {
  auto fixture = MakeChain();
  ASSERT_TRUE(fixture.ok());
  auto graph = BipartiteGraph::Build(fixture->groups, fixture->belief);
  ASSERT_TRUE(graph.ok());
  auto plan = PlanBlocks(*graph, fixture->groups);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->blocks.size(), 1u);
  EXPECT_EQ(plan->blocks[0].method, BlockMethod::kChain);
  EXPECT_TRUE(plan->blocks[0].exact);

  auto estimate = EstimatePlanned(*plan);
  ASSERT_TRUE(estimate.ok());
  // Exclusive items crack with 1/2 each, seam items with 1/4 each.
  EXPECT_EQ(estimate->expected_cracks, 1.5);

  auto direct = DirectExpectedCracks(fixture->groups, fixture->belief);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(estimate->expected_cracks, *direct);
}

TEST(PlannerTest, MatchesDirectOnRandomInstances) {
  Rng rng(20260805);
  size_t chains_seen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 2 + rng.UniformUint64(9);  // n in [2, 10]
    std::vector<SupportCount> supports(n);
    for (size_t i = 0; i < n; ++i) {
      supports[i] = static_cast<SupportCount>(1 + rng.UniformUint64(200));
    }
    auto table = FrequencyTable::FromSupports(std::move(supports), 1000);
    ASSERT_TRUE(table.ok());
    FrequencyGroups groups = FrequencyGroups::Build(*table);

    // Mix belief shapes: point-valued, uniform compliant width, and
    // per-item intervals stretching to an adjacent frequency group (the
    // construction that actually produces chain-shaped blocks — a
    // uniform width is symmetric and only merges complete blocks).
    Result<BeliefFunction> belief = Status::Internal("unset");
    const uint64_t shape = rng.UniformUint64(3);
    if (shape == 0) {
      belief = MakeCompliantIntervalBelief(*table, 0.0);
    } else if (shape == 1) {
      belief = MakeCompliantIntervalBelief(
          *table, groups.MedianGap() * rng.UniformDouble(0.2, 2.2));
    } else {
      std::vector<BeliefInterval> intervals(n);
      for (ItemId x = 0; x < n; ++x) {
        const size_t g = groups.group_of_item(x);
        double lo = groups.group_frequency(g);
        double hi = lo;
        if (g + 1 < groups.num_groups() && rng.Bernoulli(0.4)) {
          hi = groups.group_frequency(g + 1);
        } else if (g > 0 && rng.Bernoulli(0.4)) {
          lo = groups.group_frequency(g - 1);
        }
        intervals[x] = {lo, hi};
      }
      belief = BeliefFunction::Create(std::move(intervals));
    }
    ASSERT_TRUE(belief.ok());

    auto direct = DirectExpectedCracks(groups, *belief);
    ASSERT_TRUE(direct.ok());
    auto estimate = PlanAndEstimate(groups, *belief);
    ASSERT_TRUE(estimate.ok());
    EXPECT_TRUE(estimate->exact) << "trial " << trial;
    // Whole-graph permanents fit in 2^53 at n <= 10, so every leaf is one
    // correctly-rounded division on both sides: bit identity, not an
    // epsilon comparison.
    EXPECT_EQ(estimate->expected_cracks, *direct) << "trial " << trial;
    for (const BlockProvenance& block : estimate->blocks) {
      if (block.method == BlockMethod::kChain) ++chains_seen;
    }
  }
  // Make sure the chain closed form actually exercised.
  EXPECT_GT(chains_seen, 0u);
}

TEST(PlannerTest, MessyBlockUsesPermanentWithinCutoff) {
  auto messy = MakeMessy();
  ASSERT_TRUE(messy.ok());
  auto estimate = PlanAndEstimate(messy->groups, messy->belief);
  ASSERT_TRUE(estimate.ok());
  ASSERT_EQ(estimate->blocks.size(), 1u);
  EXPECT_EQ(estimate->blocks[0].method, BlockMethod::kPermanent);
  EXPECT_TRUE(estimate->exact);
  auto direct = DirectExpectedCracks(messy->groups, messy->belief);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(estimate->expected_cracks, *direct);
}

TEST(PlannerTest, RequireExactFailsBeyondCutoff) {
  auto messy = MakeMessy();
  ASSERT_TRUE(messy.ok());
  PlannerOptions options;
  options.ryser_cutoff = 4;  // the messy block has 12 items
  options.require_exact = true;
  auto estimate = PlanAndEstimate(messy->groups, messy->belief, options);
  ASSERT_FALSE(estimate.ok());
  EXPECT_TRUE(estimate.status().IsOutOfRange());
}

TEST(PlannerTest, OversizedBlockFallsBackToOEstimate) {
  auto messy = MakeMessy();
  ASSERT_TRUE(messy.ok());
  PlannerOptions options;
  options.ryser_cutoff = 4;
  auto estimate = PlanAndEstimate(messy->groups, messy->belief, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_FALSE(estimate->exact);
  ASSERT_EQ(estimate->blocks.size(), 1u);
  EXPECT_EQ(estimate->blocks[0].method, BlockMethod::kOEstimate);
  EXPECT_GT(estimate->expected_cracks, 0.0);
}

TEST(PlannerTest, SamplerFallbackIsDeterministicAndClose) {
  auto messy = MakeMessy();
  ASSERT_TRUE(messy.ok());
  PlannerOptions options;
  options.ryser_cutoff = 4;
  options.prefer_sampler = true;
  auto first = PlanAndEstimate(messy->groups, messy->belief, options);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->blocks.size(), 1u);
  EXPECT_EQ(first->blocks[0].method, BlockMethod::kSampler);
  EXPECT_FALSE(first->exact);
  auto direct = DirectExpectedCracks(messy->groups, messy->belief);
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR(first->expected_cracks, *direct, 0.5);

  auto second = PlanAndEstimate(messy->groups, messy->belief, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->expected_cracks, second->expected_cracks);

  // And determinism must hold across thread counts too.
  exec::ExecOptions eo;
  eo.threads = 4;
  exec::ExecContext ctx(eo);
  auto threaded = PlanAndEstimate(messy->groups, messy->belief, options, &ctx);
  ASSERT_TRUE(threaded.ok());
  EXPECT_EQ(first->expected_cracks, threaded->expected_cracks);
}

TEST(PlannerTest, ExactBeyondWholeGraphPermanent) {
  // Three independent messy 12-item clusters in disjoint frequency
  // bands: n = 36 > kMaxPermanentN, so the monolithic direct method is
  // structurally infeasible — yet every block is 12 items, so even
  // `require_exact` succeeds, with full per-block provenance.
  const size_t m = 10000;
  std::vector<SupportCount> supports;
  for (size_t c = 0; c < 3; ++c) {
    for (SupportCount s : {1000 * c + 100, 1000 * c + 200, 1000 * c + 300}) {
      for (int i = 0; i < 4; ++i) supports.push_back(s);
    }
  }
  auto table = FrequencyTable::FromSupports(std::move(supports), m);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  ASSERT_GT(groups.num_items(), kMaxPermanentN);
  std::vector<BeliefInterval> intervals(36);
  for (size_t c = 0; c < 3; ++c) {
    const double lo = static_cast<double>(1000 * c + 100) / m;
    const double hi = static_cast<double>(1000 * c + 300) / m;
    for (size_t i = 0; i < 12; ++i) intervals[c * 12 + i] = {lo, hi};
    intervals[c * 12] = {lo, lo};
    intervals[c * 12 + 11] = {hi, hi};
  }
  auto belief = BeliefFunction::Create(std::move(intervals));
  ASSERT_TRUE(belief.ok());

  PlannerOptions options;
  options.require_exact = true;
  auto estimate = PlanAndEstimate(groups, *belief, options);
  ASSERT_TRUE(estimate.ok());
  EXPECT_TRUE(estimate->exact);
  ASSERT_EQ(estimate->blocks.size(), 3u);
  for (const BlockProvenance& block : estimate->blocks) {
    EXPECT_EQ(block.size, 12u);
    EXPECT_EQ(block.method, BlockMethod::kPermanent);
    EXPECT_TRUE(block.exact);
  }
  // Identical cluster structure at three frequency scales: each block
  // contributes the same expectation, and the totals are exact sums of
  // per-block permanent ratios.
  EXPECT_EQ(estimate->blocks[0].expected_cracks,
            estimate->blocks[1].expected_cracks);
  EXPECT_EQ(estimate->blocks[0].expected_cracks,
            estimate->blocks[2].expected_cracks);
  EXPECT_NEAR(estimate->expected_cracks,
              3.0 * estimate->blocks[0].expected_cracks, 1e-12);

  // The whole-graph oracle really cannot answer this instance.
  auto direct = DirectExpectedCracks(groups, *belief);
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.status().IsOutOfRange());
}

// ----------------------------------------------------- crack distribution

TEST(PlannerTest, DistributionMatchesDirectEnumeration) {
  auto fixture = MakeChain();
  ASSERT_TRUE(fixture.ok());
  auto direct =
      DirectCrackDistribution(fixture->groups, fixture->belief);
  ASSERT_TRUE(direct.ok());
  auto planned =
      PlannedCrackDistribution(fixture->groups, fixture->belief);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->num_matchings, direct->num_matchings);
  ASSERT_EQ(planned->probability.size(), direct->probability.size());
  for (size_t c = 0; c < direct->probability.size(); ++c) {
    EXPECT_NEAR(planned->probability[c], direct->probability[c], 1e-12)
        << "c=" << c;
  }
  EXPECT_NEAR(planned->expected, direct->expected, 1e-12);
}

TEST(PlannerTest, DistributionRejectsZeroMaxMatchings) {
  auto fixture = MakeChain();
  ASSERT_TRUE(fixture.ok());
  auto planned =
      PlannedCrackDistribution(fixture->groups, fixture->belief, 0);
  ASSERT_FALSE(planned.ok());
  EXPECT_TRUE(planned.status().IsInvalidArgument());
  // The direct method rejects the same degenerate bound (it used to spin
  // up the whole graph build first).
  auto direct =
      DirectCrackDistribution(fixture->groups, fixture->belief, 0);
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.status().IsInvalidArgument());
}

// --------------------------------------------------------- MakeEstimator

TEST(MakeEstimatorTest, AdaptersReportNamesAndExactness) {
  auto fixture = MakeChain();
  ASSERT_TRUE(fixture.ok());
  auto direct = DirectExpectedCracks(fixture->groups, fixture->belief);
  ASSERT_TRUE(direct.ok());

  EstimatorConfig config;
  auto auto_est = MakeEstimator(EstimatorKind::kAuto, config);
  EXPECT_STREQ(auto_est->name(), "auto");
  auto auto_result = auto_est->Estimate(fixture->groups, fixture->belief);
  ASSERT_TRUE(auto_result.ok());
  EXPECT_TRUE(auto_result->exact);
  EXPECT_EQ(auto_result->expected_cracks, *direct);

  auto exact_est = MakeEstimator(EstimatorKind::kExact, config);
  EXPECT_STREQ(exact_est->name(), "exact");
  auto exact_result = exact_est->Estimate(fixture->groups, fixture->belief);
  ASSERT_TRUE(exact_result.ok());
  EXPECT_EQ(exact_result->expected_cracks, *direct);

  auto oe_est = MakeEstimator(EstimatorKind::kOe, config);
  EXPECT_STREQ(oe_est->name(), "oe");
  auto oe_result = oe_est->Estimate(fixture->groups, fixture->belief);
  ASSERT_TRUE(oe_result.ok());
  EXPECT_FALSE(oe_result->exact);
  EXPECT_GT(oe_result->expected_cracks, 0.0);

  auto sampler_est = MakeEstimator(EstimatorKind::kSampler, config);
  EXPECT_STREQ(sampler_est->name(), "sampler");
  auto sampler_result =
      sampler_est->Estimate(fixture->groups, fixture->belief);
  ASSERT_TRUE(sampler_result.ok());
  EXPECT_FALSE(sampler_result->exact);
  EXPECT_NEAR(sampler_result->expected_cracks, *direct, 0.5);
}

// ------------------------------------------------------------ recipe knob

TEST(RecipeEstimatorTest, AutoFillsIntervalProvenance) {
  // Many tied groups with a tiny tolerance so the recipe reaches the
  // interval check instead of stopping at step 2.
  std::vector<SupportCount> supports;
  for (size_t i = 0; i < 24; ++i) {
    supports.push_back(static_cast<SupportCount>(10 + 10 * (i / 4)));
  }
  auto table = FrequencyTable::FromSupports(std::move(supports), 1000);
  ASSERT_TRUE(table.ok());

  RecipeOptions options;
  options.tolerance = 0.05;
  options.estimator = EstimatorKind::kAuto;
  auto result = AssessRisk(*table, options);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->decision, RecipeDecision::kDiscloseAtPointValued);
  EXPECT_EQ(result->estimator, EstimatorKind::kAuto);
  EXPECT_FALSE(result->interval_blocks.empty());

  // The default path reports its kind and no provenance.
  RecipeOptions oe_options;
  oe_options.tolerance = 0.05;
  auto oe_result = AssessRisk(*table, oe_options);
  ASSERT_TRUE(oe_result.ok());
  EXPECT_EQ(oe_result->estimator, EstimatorKind::kOe);
  EXPECT_TRUE(oe_result->interval_blocks.empty());
  // Both paths bisect α on the same O-estimate machinery (§5.3), so the
  // final bound agrees even when the interval check differs.
  EXPECT_EQ(result->alpha_max, oe_result->alpha_max);
}

TEST(RecipeEstimatorTest, ValidatesPlannerOptions) {
  auto table = FrequencyTable::FromSupports({10, 20, 30}, 100);
  ASSERT_TRUE(table.ok());
  RecipeOptions options;
  options.estimator = EstimatorKind::kAuto;
  options.planner.ryser_cutoff = 0;
  auto result = AssessRisk(*table, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(RecipeEstimatorTest, ItemsVariantRejectsPlanner) {
  auto table = FrequencyTable::FromSupports({10, 20, 30}, 100);
  ASSERT_TRUE(table.ok());
  RecipeOptions options;
  options.estimator = EstimatorKind::kAuto;
  std::vector<bool> interest = {true, false, true};
  auto result = AssessRiskForItems(*table, interest, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace anonsafe
