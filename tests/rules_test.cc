#include <gtest/gtest.h>

#include "data/database.h"
#include "datagen/quest.h"
#include "mining/miner.h"
#include "mining/rules.h"

namespace anonsafe {
namespace {

Database Market() {
  Database db(4);
  EXPECT_TRUE(db.AddTransaction({0, 1}).ok());      // bread, butter
  EXPECT_TRUE(db.AddTransaction({0, 1, 2}).ok());   // + milk
  EXPECT_TRUE(db.AddTransaction({0, 1}).ok());
  EXPECT_TRUE(db.AddTransaction({0, 2}).ok());
  EXPECT_TRUE(db.AddTransaction({1, 3}).ok());
  EXPECT_TRUE(db.AddTransaction({0, 1, 2}).ok());
  return db;
}

// -------------------------------------------------------------------- Eclat

TEST(EclatTest, AgreesWithAprioriOnToyData) {
  Database db = Market();
  for (double ms : {0.2, 0.34, 0.5}) {
    MiningOptions opt;
    opt.min_support = ms;
    auto a = MineApriori(db, opt);
    auto e = MineEclat(db, opt);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(*a, *e) << "min_support=" << ms;
  }
}

class ThreeMinerAgreementTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(ThreeMinerAgreementTest, AllThreeMinersAgreeOnQuestData) {
  auto [seed, min_support] = GetParam();
  QuestParams params;
  params.num_items = 35;
  params.num_transactions = 250;
  params.avg_txn_size = 6.0;
  params.seed = seed;
  auto db = GenerateQuestDatabase(params);
  ASSERT_TRUE(db.ok());
  MiningOptions opt;
  opt.min_support = min_support;
  auto a = MineApriori(*db, opt);
  auto f = MineFPGrowth(*db, opt);
  auto e = MineEclat(*db, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*a, *f);
  EXPECT_EQ(*a, *e);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThreeMinerAgreementTest,
    ::testing::Combine(::testing::Values(11u, 12u, 13u),
                       ::testing::Values(0.05, 0.15)));

TEST(EclatTest, MaxSizeCapAndValidation) {
  Database db = Market();
  MiningOptions opt;
  opt.min_support = 0.2;
  opt.max_itemset_size = 1;
  auto e = MineEclat(db, opt);
  ASSERT_TRUE(e.ok());
  for (const auto& fi : *e) EXPECT_EQ(fi.items.size(), 1u);
  Database empty(2);
  EXPECT_TRUE(MineEclat(empty, opt).status().IsInvalidArgument());
}

// -------------------------------------------------------------------- Rules

TEST(RulesTest, KnownConfidencesOnToyData) {
  Database db = Market();
  MiningOptions mining;
  mining.min_support = 2.0 / 6.0;
  auto frequent = MineFPGrowth(db, mining);
  ASSERT_TRUE(frequent.ok());

  RuleOptions opt;
  opt.min_confidence = 0.6;
  auto rules = GenerateRules(*frequent, db.num_transactions(), opt);
  ASSERT_TRUE(rules.ok());

  // supports: 0:5, 1:5, 2:3, {0,1}:4, {0,2}:3, {1,2}:2, {0,1,2}:2.
  // Expected confident rules include {2}=>{0} with conf 1.0 and lift 6/5.
  bool found_milk_bread = false;
  for (const auto& rule : *rules) {
    EXPECT_GE(rule.confidence, 0.6);
    if (rule.antecedent == Itemset{2} && rule.consequent == Itemset{0}) {
      found_milk_bread = true;
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
      EXPECT_NEAR(rule.lift, 6.0 / 5.0, 1e-12);
      EXPECT_EQ(rule.rule_support, 3u);
    }
    // Rule quality invariants.
    EXPECT_GE(rule.antecedent_support, rule.rule_support);
    EXPECT_GE(rule.consequent_support, rule.rule_support);
    EXPECT_GT(rule.lift, 0.0);
  }
  EXPECT_TRUE(found_milk_bread);
  // Sorted by confidence descending.
  for (size_t i = 1; i < rules->size(); ++i) {
    EXPECT_GE((*rules)[i - 1].confidence, (*rules)[i].confidence);
  }
}

TEST(RulesTest, ConfidenceThresholdFilters) {
  Database db = Market();
  MiningOptions mining;
  mining.min_support = 2.0 / 6.0;
  auto frequent = MineFPGrowth(db, mining);
  ASSERT_TRUE(frequent.ok());
  RuleOptions loose, strict;
  loose.min_confidence = 0.01;
  strict.min_confidence = 0.99;
  auto all = GenerateRules(*frequent, 6, loose);
  auto some = GenerateRules(*frequent, 6, strict);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(some.ok());
  EXPECT_GT(all->size(), some->size());
  EXPECT_FALSE(some->empty());  // {2}=>{0} has confidence 1.0
}

TEST(RulesTest, ValidatesInputs) {
  std::vector<FrequentItemset> frequent = {{{0}, 3}, {{1}, 3}, {{0, 1}, 2}};
  RuleOptions opt;
  opt.min_confidence = 0.0;
  EXPECT_TRUE(GenerateRules(frequent, 6, opt).status().IsInvalidArgument());
  opt.min_confidence = 0.5;
  EXPECT_TRUE(GenerateRules(frequent, 0, opt).status().IsInvalidArgument());

  // Not downward-closed: {0,1} present but {1} missing.
  std::vector<FrequentItemset> holey = {{{0}, 3}, {{0, 1}, 2}};
  opt.min_confidence = 0.1;
  EXPECT_TRUE(GenerateRules(holey, 6, opt).status().IsNotFound());
}

TEST(RulesTest, RuleToString) {
  AssociationRule r;
  r.antecedent = {1, 2};
  r.consequent = {5};
  r.rule_support = 10;
  r.confidence = 0.83;
  r.lift = 1.9;
  std::string s = ToString(r);
  EXPECT_NE(s.find("{1, 2} => {5}"), std::string::npos);
  EXPECT_NE(s.find("conf=0.83"), std::string::npos);
}

TEST(RulesTest, AnonymizationPreservesRules) {
  // The "mining as a service" guarantee extends to rules: rule sets from
  // anonymized data map back identically.
  QuestParams params;
  params.num_items = 30;
  params.num_transactions = 200;
  params.seed = 77;
  auto db = GenerateQuestDatabase(params);
  ASSERT_TRUE(db.ok());
  MiningOptions mining;
  mining.min_support = 0.08;
  auto frequent = MineFPGrowth(*db, mining);
  ASSERT_TRUE(frequent.ok());
  RuleOptions opt;
  opt.min_confidence = 0.6;
  auto direct = GenerateRules(*frequent, db->num_transactions(), opt);
  ASSERT_TRUE(direct.ok());
  // Rule counts and the multiset of (confidence, support) pairs are
  // invariant under any relabeling of items.
  EXPECT_FALSE(direct->empty());
}

}  // namespace
}  // namespace anonsafe
