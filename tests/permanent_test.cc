#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "belief/builders.h"
#include "core/direct_method.h"
#include "data/frequency.h"
#include "graph/bipartite_graph.h"
#include "graph/permanent.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

/// Brute-force permanent by iterating all permutations (n <= 8).
double BruteForcePermanent(const std::vector<uint64_t>& rows) {
  const size_t n = rows.size();
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double total = 0.0;
  do {
    bool all = true;
    for (size_t i = 0; i < n && all; ++i) {
      all = (rows[i] >> perm[i]) & 1;
    }
    if (all) total += 1.0;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return total;
}

// --------------------------------------------------------------- Permanent

TEST(PermanentTest, KnownSmallMatrices) {
  // Empty matrix: permanent 1 by convention.
  auto empty = PermanentRyser({});
  ASSERT_TRUE(empty.ok());
  EXPECT_DOUBLE_EQ(*empty, 1.0);

  // 1x1.
  auto one = PermanentRyser({1});
  ASSERT_TRUE(one.ok());
  EXPECT_DOUBLE_EQ(*one, 1.0);
  auto zero = PermanentRyser({0});
  ASSERT_TRUE(zero.ok());
  EXPECT_DOUBLE_EQ(*zero, 0.0);

  // All-ones n x n: permanent = n!.
  for (size_t n = 2; n <= 8; ++n) {
    std::vector<uint64_t> rows(n, (1ULL << n) - 1);
    auto p = PermanentRyser(rows);
    ASSERT_TRUE(p.ok());
    double factorial = 1.0;
    for (size_t i = 2; i <= n; ++i) factorial *= static_cast<double>(i);
    EXPECT_DOUBLE_EQ(*p, factorial) << "n=" << n;
  }

  // Identity: permanent 1.
  std::vector<uint64_t> id = {1, 2, 4, 8};
  auto pid = PermanentRyser(id);
  ASSERT_TRUE(pid.ok());
  EXPECT_DOUBLE_EQ(*pid, 1.0);

  // Classic 3x3 example: [[1,1,0],[1,1,1],[0,1,1]] -> 3.
  auto p3 = PermanentRyser({0b011, 0b111, 0b110});
  ASSERT_TRUE(p3.ok());
  EXPECT_DOUBLE_EQ(*p3, 3.0);
}

TEST(PermanentTest, MatchesBruteForceOnRandomMatrices) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.UniformUint64(7);
    std::vector<uint64_t> rows(n, 0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (rng.Bernoulli(0.5)) rows[i] |= (1ULL << j);
      }
    }
    auto ryser = PermanentRyser(rows);
    ASSERT_TRUE(ryser.ok());
    EXPECT_DOUBLE_EQ(*ryser, BruteForcePermanent(rows)) << "trial " << trial;
  }
}

TEST(PermanentTest, SizeGuard) {
  std::vector<uint64_t> rows(kMaxPermanentN + 1, 1);
  EXPECT_TRUE(PermanentRyser(rows).status().IsOutOfRange());
}

TEST(PermanentTest, RejectsWideRows) {
  EXPECT_TRUE(PermanentRyser({0b100, 0b01}).status().IsInvalidArgument());
}

// ------------------------------------------------------------ Direct method

TEST(DirectMethodTest, CompleteGraphGivesLemma1) {
  // Ignorant belief => complete bipartite graph => E[X] = 1 (Lemma 1).
  for (size_t n : {2u, 3u, 5u, 8u}) {
    std::vector<SupportCount> supports(n);
    for (size_t i = 0; i < n; ++i) supports[i] = i + 1;
    auto table = FrequencyTable::FromSupports(supports, 100);
    ASSERT_TRUE(table.ok());
    FrequencyGroups groups = FrequencyGroups::Build(*table);
    auto direct = DirectExpectedCracks(groups, MakeIgnorantBelief(n));
    ASSERT_TRUE(direct.ok());
    EXPECT_NEAR(*direct, 1.0, 1e-9) << "n=" << n;
  }
}

TEST(DirectMethodTest, PointValuedGivesLemma3) {
  // Point-valued compliant belief => E[X] = number of groups (Lemma 3).
  auto table = FrequencyTable::FromSupports({5, 4, 5, 5, 3, 5}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = MakePointValuedBelief(*table);
  ASSERT_TRUE(beta.ok());
  auto direct = DirectExpectedCracks(groups, *beta);
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR(*direct, 3.0, 1e-9);
}

TEST(DirectMethodTest, NoPerfectMatchingFails) {
  auto table = FrequencyTable::FromSupports({10, 20}, 100);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = BeliefFunction::Create({{0.05, 0.15}, {0.05, 0.15}});
  ASSERT_TRUE(beta.ok());
  EXPECT_TRUE(DirectExpectedCracks(groups, *beta)
                  .status().IsFailedPrecondition());
}

// ------------------------------------------------- Enumeration cross-check

TEST(EnumerationTest, DistributionSumsToOneAndMatchesPermanent) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.UniformUint64(5);
    // Random supports with duplicates to get interesting group structure.
    std::vector<SupportCount> supports(n);
    for (size_t i = 0; i < n; ++i) supports[i] = 1 + rng.UniformUint64(4);
    auto table = FrequencyTable::FromSupports(supports, 10);
    ASSERT_TRUE(table.ok());
    FrequencyGroups groups = FrequencyGroups::Build(*table);
    auto beta = MakeCompliantIntervalBelief(*table,
                                            0.1 * rng.UniformDouble());
    ASSERT_TRUE(beta.ok());

    auto dist = DirectCrackDistribution(groups, *beta);
    ASSERT_TRUE(dist.ok());
    double total_p = 0.0;
    for (double p : dist->probability) total_p += p;
    EXPECT_NEAR(total_p, 1.0, 1e-9);
    EXPECT_GT(dist->num_matchings, 0u);

    auto direct = DirectExpectedCracks(groups, *beta);
    ASSERT_TRUE(direct.ok());
    EXPECT_NEAR(dist->expected, *direct, 1e-6) << "trial " << trial;
  }
}

TEST(EnumerationTest, MatchingCountEqualsPermanent) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.UniformUint64(5);
    std::vector<std::vector<ItemId>> adj(n);
    for (size_t a = 0; a < n; ++a) {
      for (size_t x = 0; x < n; ++x) {
        if (rng.Bernoulli(0.6)) adj[a].push_back(static_cast<ItemId>(x));
      }
    }
    auto g = BipartiteGraph::FromAdjacency(n, std::move(adj));
    ASSERT_TRUE(g.ok());
    auto perm = CountPerfectMatchings(*g);
    auto dist = EnumerateCrackDistribution(*g);
    ASSERT_TRUE(perm.ok());
    ASSERT_TRUE(dist.ok());
    EXPECT_NEAR(*perm, static_cast<double>(dist->num_matchings), 1e-6);
  }
}

TEST(EnumerationTest, AbortsOverBudget) {
  // Complete 8x8 graph has 40320 matchings; budget of 100 must abort.
  std::vector<std::vector<ItemId>> adj(8);
  for (size_t a = 0; a < 8; ++a) {
    for (size_t x = 0; x < 8; ++x) adj[a].push_back(static_cast<ItemId>(x));
  }
  auto g = BipartiteGraph::FromAdjacency(8, std::move(adj));
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(EnumerateCrackDistribution(*g, 100).status().IsOutOfRange());
}

}  // namespace
}  // namespace anonsafe
