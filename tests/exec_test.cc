#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/exec.h"
#include "exec/thread_pool.h"
#include "util/rng.h"

namespace anonsafe {
namespace exec {
namespace {

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, SpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  const int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  // The caller lends a hand, then waits for the workers to finish.
  while (pool.TryRunOneTask()) {
  }
  while (count.load() < kTasks) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(count.load(), kTasks);
  EXPECT_EQ(pool.ApproxPendingTasks(), 0u);
}

TEST(ThreadPoolTest, OnWorkerThreadDistinguishesCallers) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(2);
  std::atomic<bool> saw_worker{false};
  std::atomic<bool> done{false};
  pool.Submit([&] {
    saw_worker.store(ThreadPool::OnWorkerThread());
    done.store(true);
  });
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(saw_worker.load());
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

// ------------------------------------------------------ ParallelForChunks

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ExecOptions options;
  options.threads = 4;
  ExecContext ctx(options);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  Status st = ParallelForChunks(&ctx, n, 17,
                                [&](size_t begin, size_t end) -> Status {
                                  for (size_t i = begin; i < end; ++i) {
                                    hits[i].fetch_add(1);
                                  }
                                  return Status::OK();
                                });
  ASSERT_TRUE(st.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, NullContextRunsSequentiallyInOrder) {
  std::vector<size_t> begins;
  Status st = ParallelForChunks(nullptr, 10, 3,
                                [&](size_t begin, size_t) -> Status {
                                  begins.push_back(begin);
                                  return Status::OK();
                                });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(begins, (std::vector<size_t>{0, 3, 6, 9}));
}

TEST(ParallelForTest, ZeroItemsNeverInvokesBody) {
  ExecOptions options;
  options.threads = 4;
  ExecContext ctx(options);
  bool called = false;
  Status st = ParallelForChunks(&ctx, 0, 8, [&](size_t, size_t) -> Status {
    called = true;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, LowestChunkErrorWins) {
  ExecOptions options;
  options.threads = 4;
  ExecContext ctx(options);
  Status st = ParallelForChunks(&ctx, 8, 1,
                                [&](size_t begin, size_t) -> Status {
                                  if (begin >= 2) {
                                    return Status::InvalidArgument(
                                        "chunk " + std::to_string(begin));
                                  }
                                  return Status::OK();
                                });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("chunk 2"), std::string::npos) << st;
}

TEST(ParallelForTest, LowestChunkExceptionRethrownOnCaller) {
  ExecOptions options;
  options.threads = 4;
  ExecContext ctx(options);
  try {
    (void)ParallelForChunks(&ctx, 8, 1,
                            [&](size_t begin, size_t) -> Status {
                              if (begin == 3 || begin == 6) {
                                throw std::runtime_error(
                                    "boom " + std::to_string(begin));
                              }
                              return Status::OK();
                            });
    FAIL() << "expected the chunk exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

TEST(ParallelForTest, NestedRegionRunsInlineWithoutDeadlock) {
  ExecOptions options;
  options.threads = 2;
  ExecContext ctx(options);
  std::atomic<int> inner_total{0};
  Status st = ParallelForChunks(&ctx, 4, 1,
                                [&](size_t, size_t) -> Status {
                                  // A nested region on the same context
                                  // must run inline on pool workers.
                                  return ParallelForChunks(
                                      &ctx, 8, 2,
                                      [&](size_t b, size_t e) -> Status {
                                        inner_total.fetch_add(
                                            static_cast<int>(e - b));
                                        return Status::OK();
                                      });
                                });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ParallelForTest, CancellationSkipsRemainingChunks) {
  // Sequential context: cancellation after the first chunk must skip
  // every later chunk deterministically.
  ExecOptions options;
  options.threads = 1;
  ExecContext ctx(options);
  int executed = 0;
  Status st = ParallelForChunks(&ctx, 10, 1,
                                [&](size_t, size_t) -> Status {
                                  ++executed;
                                  ctx.RequestCancel();
                                  return Status::OK();
                                });
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_EQ(executed, 1);
}

// ----------------------------------------------------- Reductions & seeds

TEST(PairwiseSumTest, MatchesSequentialSum) {
  std::vector<double> values;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) values.push_back(rng.UniformDouble());
  double naive = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_NEAR(PairwiseSum(values), naive, 1e-9);
  EXPECT_EQ(PairwiseSum(nullptr, 0), 0.0);
  EXPECT_EQ(PairwiseSum(values.data(), 1), values[0]);
}

TEST(ParallelSumTest, BitIdenticalAcrossThreadCounts) {
  std::vector<double> values;
  Rng rng(5);
  for (int i = 0; i < 4096; ++i) values.push_back(rng.UniformDouble() - 0.5);
  auto sum_with = [&](size_t threads) {
    ExecOptions options;
    options.threads = threads;
    ExecContext ctx(options);
    auto r = ParallelSumChunks(&ctx, values.size(), 64,
                               [&](size_t b, size_t e) -> Result<double> {
                                 double s = 0.0;
                                 for (size_t i = b; i < e; ++i) {
                                   s += values[i];
                                 }
                                 return s;
                               });
    EXPECT_TRUE(r.ok());
    return *r;
  };
  double t1 = sum_with(1);
  double t2 = sum_with(2);
  double t8 = sum_with(8);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(ParallelSumTest, FirstChunkErrorWins) {
  ExecOptions options;
  options.threads = 4;
  ExecContext ctx(options);
  auto r = ParallelSumChunks(&ctx, 6, 1,
                             [&](size_t b, size_t) -> Result<double> {
                               if (b >= 1) {
                                 return Status::OutOfRange(
                                     "bad " + std::to_string(b));
                               }
                               return 1.0;
                             });
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bad 1"), std::string::npos);
}

TEST(SplitSeedTest, StreamsAreDistinctAndDeterministic) {
  std::set<uint64_t> seen;
  for (uint64_t s = 0; s < 256; ++s) seen.insert(SplitSeed(42, s));
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(SplitSeed(42, 7), SplitSeed(42, 7));
  EXPECT_NE(SplitSeed(42, 7), SplitSeed(43, 7));
}

TEST(ExecContextTest, StreamRngReproducible) {
  ExecOptions options;
  options.seed = 99;
  ExecContext a(options), b(options);
  Rng ra = a.StreamRng(3), rb = b.StreamRng(3);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ra.UniformUint64(1u << 30), rb.UniformUint64(1u << 30));
  }
}

TEST(ExecContextTest, ResolvesThreadsAndGrain) {
  ExecOptions seq;
  seq.threads = 1;
  ExecContext a(seq);
  EXPECT_EQ(a.num_threads(), 1u);
  EXPECT_EQ(a.pool(), nullptr);
  EXPECT_EQ(a.ResolveGrain(128), 128u);

  ExecOptions all;
  all.threads = 0;  // hardware concurrency
  ExecContext b(all);
  EXPECT_GE(b.num_threads(), 1u);

  ExecOptions pinned;
  pinned.threads = 3;
  pinned.grain = 7;
  ExecContext c(pinned);
  EXPECT_EQ(c.num_threads(), 3u);
  ASSERT_NE(c.pool(), nullptr);
  EXPECT_EQ(c.pool()->num_threads(), 3u);
  EXPECT_EQ(c.ResolveGrain(128), 7u);
}

TEST(NumChunksTest, DependsOnlyOnSizeAndGrain) {
  EXPECT_EQ(NumChunks(0, 8), 0u);
  EXPECT_EQ(NumChunks(1, 8), 1u);
  EXPECT_EQ(NumChunks(8, 8), 1u);
  EXPECT_EQ(NumChunks(9, 8), 2u);
  EXPECT_EQ(NumChunks(5, 0), 5u);  // grain 0 clamps to 1
}

}  // namespace
}  // namespace exec
}  // namespace anonsafe
