#include <gtest/gtest.h>

#include "belief/builders.h"
#include "core/direct_method.h"
#include "core/graph_oestimate.h"
#include "core/oestimate.h"
#include "data/frequency.h"
#include "graph/edge_pruning.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

/// Figure 6(b): four singleton frequency groups; items 1 and 2 cover
/// groups {0,1}, item 3 covers {1,2,3}, item 4 covers {2,3}. Every
/// perfect matching maps {1',2'} onto {1,2} and {3',4'} onto {3,4}; the
/// edge (2', 3) is irrelevant.
Result<BipartiteGraph> Figure6b() {
  return BipartiteGraph::FromAdjacency(
      4, {{0, 1}, {0, 1, 2}, {2, 3}, {2, 3}});
}

// ----------------------------------------------------------- MatchingCover

TEST(MatchingCoverTest, Figure6bPrunesIrrelevantEdge) {
  auto g = Figure6b();
  ASSERT_TRUE(g.ok());
  auto cover = ComputeMatchingCover(*g);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->pruned_edges, 1u);
  EXPECT_FALSE(cover->graph.HasEdge(1, 2));  // the paper's (2', 3)
  // All other edges survive.
  EXPECT_EQ(cover->graph.num_edges(), 8u);
  // Two identification components: {1,2} side and {3,4} side.
  EXPECT_EQ(cover->component_of_item[0], cover->component_of_item[1]);
  EXPECT_EQ(cover->component_of_item[2], cover->component_of_item[3]);
  EXPECT_NE(cover->component_of_item[0], cover->component_of_item[2]);
}

TEST(MatchingCoverTest, CompleteGraphKeepsEverything) {
  std::vector<std::vector<ItemId>> adj(4);
  for (size_t a = 0; a < 4; ++a) {
    for (size_t x = 0; x < 4; ++x) adj[a].push_back(static_cast<ItemId>(x));
  }
  auto g = BipartiteGraph::FromAdjacency(4, std::move(adj));
  ASSERT_TRUE(g.ok());
  auto cover = ComputeMatchingCover(*g);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(cover->pruned_edges, 0u);
  // A complete graph is one big identification component.
  for (size_t x = 1; x < 4; ++x) {
    EXPECT_EQ(cover->component_of_item[0], cover->component_of_item[x]);
  }
}

TEST(MatchingCoverTest, NoPerfectMatchingFails) {
  auto g = BipartiteGraph::FromAdjacency(2, {{0}, {0}});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(ComputeMatchingCover(*g).status().IsFailedPrecondition());
}

TEST(MatchingCoverTest, PrunedEdgesAreExactlyUnusableOnes) {
  // Property check against enumeration: an edge survives iff some
  // perfect matching uses it.
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = 2 + rng.UniformUint64(6);
    std::vector<std::vector<ItemId>> adj(n);
    for (size_t a = 0; a < n; ++a) {
      adj[a].push_back(static_cast<ItemId>(a));  // ensure perfect matching
      for (size_t x = 0; x < n; ++x) {
        if (rng.Bernoulli(0.4)) adj[a].push_back(static_cast<ItemId>(x));
      }
    }
    auto g = BipartiteGraph::FromAdjacency(n, std::move(adj));
    ASSERT_TRUE(g.ok());
    auto cover = ComputeMatchingCover(*g);
    ASSERT_TRUE(cover.ok());

    for (size_t a = 0; a < n; ++a) {
      for (ItemId x : g->items_of_anon(static_cast<ItemId>(a))) {
        // Count matchings through (a, x): force the edge by removing all
        // alternatives, then count perfect matchings of the rest.
        std::vector<std::vector<ItemId>> forced(n);
        for (size_t b = 0; b < n; ++b) {
          if (b == a) {
            forced[b] = {x};
            continue;
          }
          for (ItemId y : g->items_of_anon(static_cast<ItemId>(b))) {
            if (y != x) forced[b].push_back(y);
          }
        }
        auto fg = BipartiteGraph::FromAdjacency(n, std::move(forced));
        ASSERT_TRUE(fg.ok());
        auto count = CountPerfectMatchings(*fg);
        ASSERT_TRUE(count.ok());
        bool usable = *count > 0.0;
        EXPECT_EQ(cover->graph.HasEdge(static_cast<ItemId>(a), x), usable)
            << "trial " << trial << " edge (" << a << "," << x << ")";
      }
    }
  }
}

// ----------------------------------------------------------- SetDisclosure

TEST(SetDisclosureTest, Figure6bIdentifiesBothPairs) {
  auto g = Figure6b();
  ASSERT_TRUE(g.ok());
  auto sets = AnalyzeSetDisclosure(*g, /*small_set_threshold=*/2);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->identified_sets.size(), 2u);
  EXPECT_EQ(sets->identified_sets[0], (std::vector<ItemId>{0, 1}));
  EXPECT_EQ(sets->identified_sets[1], (std::vector<ItemId>{2, 3}));
  EXPECT_EQ(sets->certain_cracks, 0u);
  EXPECT_EQ(sets->small_sets, 2u);
  EXPECT_EQ(sets->items_in_small_sets, 4u);
}

TEST(SetDisclosureTest, StaircaseIsAllCertainCracks) {
  // Figure 6(a): propagation cracks everything; every set is a singleton.
  auto g = BipartiteGraph::FromAdjacency(
      4, {{0, 1, 2, 3}, {1, 2, 3}, {2, 3}, {3}});
  ASSERT_TRUE(g.ok());
  auto sets = AnalyzeSetDisclosure(*g);
  ASSERT_TRUE(sets.ok());
  EXPECT_EQ(sets->identified_sets.size(), 4u);
  EXPECT_EQ(sets->certain_cracks, 4u);
}

TEST(SetDisclosureTest, CompleteGraphIsOneBigSet) {
  std::vector<std::vector<ItemId>> adj(5);
  for (size_t a = 0; a < 5; ++a) {
    for (size_t x = 0; x < 5; ++x) adj[a].push_back(static_cast<ItemId>(x));
  }
  auto g = BipartiteGraph::FromAdjacency(5, std::move(adj));
  ASSERT_TRUE(g.ok());
  auto sets = AnalyzeSetDisclosure(*g);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->identified_sets.size(), 1u);
  EXPECT_EQ(sets->identified_sets[0].size(), 5u);
  EXPECT_EQ(sets->certain_cracks, 0u);
  EXPECT_EQ(sets->small_sets, 0u);
}

// ------------------------------------------------------- Graph O-estimates

TEST(GraphOEstimateTest, MatchesGroupFormOnIntervalBeliefs) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 5 + rng.UniformUint64(30);
    std::vector<SupportCount> supports(n);
    for (size_t i = 0; i < n; ++i) supports[i] = 1 + rng.UniformUint64(40);
    auto table = FrequencyTable::FromSupports(supports, 50);
    ASSERT_TRUE(table.ok());
    FrequencyGroups groups = FrequencyGroups::Build(*table);
    auto beta = MakeCompliantIntervalBelief(
        *table, 0.1 * rng.UniformDouble());
    ASSERT_TRUE(beta.ok());
    auto g = BipartiteGraph::Build(groups, *beta);
    ASSERT_TRUE(g.ok());

    for (bool propagate : {false, true}) {
      OEstimateOptions opt;
      opt.propagate = propagate;
      auto group_form = ComputeOEstimate(groups, *beta, opt);
      auto graph_form = ComputeOEstimateOnGraph(*g, opt);
      ASSERT_TRUE(group_form.ok());
      ASSERT_TRUE(graph_form.ok());
      EXPECT_NEAR(group_form->expected_cracks, graph_form->expected_cracks,
                  1e-9)
          << "trial " << trial << " propagate " << propagate;
    }
  }
}

TEST(GraphOEstimateTest, Figure6aPropagationOnExplicitGraph) {
  auto g = BipartiteGraph::FromAdjacency(
      4, {{0, 1, 2, 3}, {1, 2, 3}, {2, 3}, {3}});
  ASSERT_TRUE(g.ok());
  OEstimateOptions raw;
  raw.propagate = false;
  auto naive = ComputeOEstimateOnGraph(*g, raw);
  ASSERT_TRUE(naive.ok());
  EXPECT_NEAR(naive->expected_cracks, 25.0 / 12.0, 1e-12);
  auto propagated = ComputeOEstimateOnGraph(*g);
  ASSERT_TRUE(propagated.ok());
  EXPECT_NEAR(propagated->expected_cracks, 4.0, 1e-12);
  EXPECT_EQ(propagated->forced_items, 4u);
}

TEST(RefinedOEstimateTest, ExactOnFigure6b) {
  auto g = Figure6b();
  ASSERT_TRUE(g.ok());
  auto refined = ComputeRefinedOEstimateOnGraph(*g);
  ASSERT_TRUE(refined.ok());
  // Exact E(X) = 2 (four matchings with 4, 2, 2, 0 cracks).
  EXPECT_NEAR(refined->expected_cracks, 2.0, 1e-12);
  // Plain propagation cannot reach it.
  auto propagated = ComputeOEstimateOnGraph(*g);
  ASSERT_TRUE(propagated.ok());
  EXPECT_LT(propagated->expected_cracks, 2.0);
}

TEST(RefinedOEstimateTest, DominanceChainOnRandomInstances) {
  // naive <= propagated <= refined <= exact, on random compliant graphs.
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 3 + rng.UniformUint64(6);
    std::vector<SupportCount> supports(n);
    for (size_t i = 0; i < n; ++i) supports[i] = 1 + rng.UniformUint64(10);
    auto table = FrequencyTable::FromSupports(supports, 20);
    ASSERT_TRUE(table.ok());
    FrequencyGroups groups = FrequencyGroups::Build(*table);
    auto beta = MakeCompliantIntervalBelief(
        *table, 0.25 * rng.UniformDouble());
    ASSERT_TRUE(beta.ok());
    auto g = BipartiteGraph::Build(groups, *beta);
    ASSERT_TRUE(g.ok());

    OEstimateOptions raw;
    raw.propagate = false;
    auto naive = ComputeOEstimateOnGraph(*g, raw);
    auto propagated = ComputeOEstimateOnGraph(*g);
    auto refined = ComputeRefinedOEstimateOnGraph(*g);
    auto exact = ExactExpectedCracksByPermanent(*g);
    ASSERT_TRUE(naive.ok());
    ASSERT_TRUE(propagated.ok());
    ASSERT_TRUE(refined.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(naive->expected_cracks,
              propagated->expected_cracks + 1e-9);
    EXPECT_LE(propagated->expected_cracks,
              refined->expected_cracks + 1e-9);
    EXPECT_LE(refined->expected_cracks, *exact + 1e-6) << "trial " << trial;
  }
}

TEST(RefinedOEstimateTest, GroupFormConvenienceOverload) {
  auto table = FrequencyTable::FromSupports({5, 4, 5, 5, 3, 5}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = MakePointValuedBelief(*table);
  ASSERT_TRUE(beta.ok());
  auto refined = ComputeRefinedOEstimate(groups, *beta);
  ASSERT_TRUE(refined.ok());
  // Point-valued components are complete bipartite per group: refined
  // equals the exact g = 3 (Lemma 3).
  EXPECT_NEAR(refined->expected_cracks, 3.0, 1e-12);
}

}  // namespace
}  // namespace anonsafe
