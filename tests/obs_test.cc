#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/scoped_timer.h"
#include "obs/trace.h"
#include "util/json.h"

// Allocation counter for the disabled-mode zero-cost test. Overriding the
// global operators in this translation unit makes every heap allocation in
// the test binary observable.
namespace {
std::atomic<size_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace anonsafe {
namespace {

/// Restores the process-wide observability switches a test flipped.
struct ObsSwitchGuard {
  ~ObsSwitchGuard() {
    obs::SetMetricsEnabled(false);
    obs::SetTracingEnabled(false);
  }
};

// ----------------------------------------------------------------- Counter

TEST(MetricsTest, CounterIncrements) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("c_total");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(MetricsTest, RegistryIsIdempotentWithStablePointers) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("same_total");
  a->Increment(5);
  obs::Counter* b = registry.GetCounter("same_total");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b->value(), 5u);
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
}

TEST(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("r_total");
  obs::Gauge* g = registry.GetGauge("r_gauge");
  obs::Histogram* h = registry.GetHistogram("r_seconds", {1.0});
  c->Increment(3);
  g->Set(2.5);
  h->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  // Same pointers still valid and re-usable after Reset.
  EXPECT_EQ(registry.GetCounter("r_total"), c);
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  obs::MetricsRegistry registry;
  obs::Gauge* g = registry.GetGauge("depth");
  g->Set(1.5);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
  g->Add(-0.75);
  EXPECT_DOUBLE_EQ(g->value(), 0.75);
}

// --------------------------------------------------------------- Histogram

TEST(HistogramTest, BucketBoundsAreInclusiveUpper) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("b_seconds", {1.0, 2.0, 5.0});
  h->Observe(-1.0);  // below everything -> first bucket
  h->Observe(1.0);   // exactly on a bound -> that bucket (le semantics)
  h->Observe(2.0);
  h->Observe(2.0000001);
  h->Observe(5.0);
  h->Observe(6.0);  // above the last bound -> overflow bucket
  obs::Histogram::Snapshot snap = h->Snap();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);  // -1, 1
  EXPECT_EQ(snap.counts[1], 1u);  // 2
  EXPECT_EQ(snap.counts[2], 2u);  // 2.0000001, 5
  EXPECT_EQ(snap.counts[3], 1u);  // 6
  EXPECT_EQ(snap.count, 6u);
  EXPECT_NEAR(snap.sum, 15.0000001, 1e-6);
}

TEST(HistogramTest, QuantilesInterpolateWithinBucket) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("q_seconds", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(10.0);
  obs::Histogram::Snapshot snap = h->Snap();
  // rank(0.5) = 1.5 lands halfway through the (1, 2] bucket.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 1.5);
  // High quantiles land in the overflow bucket, which reports the largest
  // finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.95), 2.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 2.0);
  // Degenerate q values clamp instead of misbehaving.
  EXPECT_DOUBLE_EQ(snap.Quantile(-1.0), snap.Quantile(0.0));
  EXPECT_DOUBLE_EQ(snap.Quantile(2.0), snap.Quantile(1.0));
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("e_seconds", {1.0});
  EXPECT_DOUBLE_EQ(h->Snap().Quantile(0.5), 0.0);
}

TEST(HistogramTest, DefaultLatencyBucketsAreSorted) {
  std::vector<double> bounds = obs::Histogram::LatencySecondsBuckets();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  EXPECT_DOUBLE_EQ(bounds.back(), 60.0);
}

TEST(MetricsTest, ConcurrentRecordingLosesNothing) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("mt_total");
  obs::Histogram* h = registry.GetHistogram("mt_seconds", {0.5});
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, c, h] {
      for (int i = 0; i < kIterations; ++i) {
        c->Increment();
        h->Observe(0.25);
        // Concurrent registration of an existing name must also be safe.
        registry.GetCounter("mt_total");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kIterations);
  obs::Histogram::Snapshot snap = h->Snap();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(snap.counts[0], static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_NEAR(snap.sum, 0.25 * kThreads * kIterations, 1e-6);
}

// ------------------------------------------------------------------ Spans

TEST(TraceTest, SpanTreeNesting) {
  ObsSwitchGuard guard;
  obs::SetTracingEnabled(true);
  obs::Tracer& tracer = obs::Tracer::ThreadLocal();
  tracer.Clear();
  {
    obs::ScopedTimer root("test.root");
    {
      obs::ScopedTimer child("test.child");
      obs::ScopedTimer grandchild("test.grandchild");
      grandchild.Annotate("k", "v");
    }
    obs::ScopedTimer sibling("test.sibling");
  }
  const std::vector<obs::SpanNode>& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(tracer.num_open(), 0u);

  EXPECT_EQ(spans[0].name, "test.root");
  EXPECT_EQ(spans[0].parent, obs::kNoSpan);
  EXPECT_EQ(spans[0].depth, 0u);

  EXPECT_EQ(spans[1].name, "test.child");
  EXPECT_EQ(spans[1].parent, 0u);
  EXPECT_EQ(spans[1].depth, 1u);

  EXPECT_EQ(spans[2].name, "test.grandchild");
  EXPECT_EQ(spans[2].parent, 1u);
  EXPECT_EQ(spans[2].depth, 2u);
  ASSERT_EQ(spans[2].annotations.size(), 1u);
  EXPECT_EQ(spans[2].annotations[0].first, "k");
  EXPECT_EQ(spans[2].annotations[0].second, "v");

  EXPECT_EQ(spans[3].name, "test.sibling");
  EXPECT_EQ(spans[3].parent, 0u);
  EXPECT_EQ(spans[3].depth, 1u);

  for (const obs::SpanNode& span : spans) {
    EXPECT_TRUE(span.closed);
    EXPECT_GE(span.duration_seconds, 0.0);
  }
  // Children cannot outlast their parent.
  EXPECT_LE(spans[1].duration_seconds, spans[0].duration_seconds);
}

TEST(TraceTest, CloseSpanUnwindsNestedOpenSpans) {
  ObsSwitchGuard guard;
  obs::SetTracingEnabled(true);
  obs::Tracer& tracer = obs::Tracer::ThreadLocal();
  tracer.Clear();
  size_t outer = tracer.OpenSpan("outer");
  tracer.OpenSpan("inner");
  tracer.CloseSpan(outer);  // must close "inner" too
  EXPECT_EQ(tracer.num_open(), 0u);
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_TRUE(tracer.spans()[0].closed);
  EXPECT_TRUE(tracer.spans()[1].closed);
}

TEST(TraceTest, RenderTableIndentsByDepth) {
  ObsSwitchGuard guard;
  obs::SetTracingEnabled(true);
  obs::Tracer& tracer = obs::Tracer::ThreadLocal();
  tracer.Clear();
  {
    obs::ScopedTimer root("phase.outer");
    obs::ScopedTimer child("phase.inner");
    child.Annotate("items", "7");
  }
  std::string table = tracer.RenderTable();
  EXPECT_NE(table.find("phase.outer"), std::string::npos);
  EXPECT_NE(table.find("  phase.inner"), std::string::npos);
  EXPECT_NE(table.find("% of root"), std::string::npos);
  EXPECT_NE(table.find("items=7"), std::string::npos);
}

TEST(TraceTest, ToJsonListsSpansInPreorder) {
  ObsSwitchGuard guard;
  obs::SetTracingEnabled(true);
  obs::Tracer& tracer = obs::Tracer::ThreadLocal();
  tracer.Clear();
  {
    obs::ScopedTimer root("j.root");
    obs::ScopedTimer child("j.child");
  }
  std::string json = tracer.ToJson();
  size_t root_pos = json.find("\"j.root\"");
  size_t child_pos = json.find("\"j.child\"");
  EXPECT_NE(root_pos, std::string::npos);
  EXPECT_NE(child_pos, std::string::npos);
  EXPECT_LT(root_pos, child_pos);

  tracer.Clear();
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.ToJson(), "[]");
}

// ------------------------------------------------------------ ScopedTimer

TEST(ScopedTimerTest, RecordsHistogramAndCounterWhenMetricsOn) {
  ObsSwitchGuard guard;
  obs::SetMetricsEnabled(true);
  obs::Histogram* h = obs::TimerHistogram("test.metered_phase");
  obs::Counter* c = obs::TimerCounter("test.metered_phase");
  EXPECT_EQ(h->name(), "anonsafe_test_metered_phase_seconds");
  EXPECT_EQ(c->name(), "anonsafe_test_metered_phase_total");
  uint64_t histogram_before = h->count();
  uint64_t counter_before = c->value();
  { obs::ScopedTimer timer("test.metered_phase"); }
  EXPECT_EQ(h->count(), histogram_before + 1);
  EXPECT_EQ(c->value(), counter_before + 1);
}

TEST(ScopedTimerTest, StopIsIdempotent) {
  ObsSwitchGuard guard;
  obs::SetMetricsEnabled(true);
  obs::Counter* c = obs::TimerCounter("test.stop_once");
  uint64_t before = c->value();
  {
    obs::ScopedTimer timer("test.stop_once");
    timer.Stop();
    timer.Stop();
  }  // destructor must not double-record
  EXPECT_EQ(c->value(), before + 1);
}

TEST(ScopedTimerTest, CountIfAndGaugeIfAreGated) {
  ObsSwitchGuard guard;
  obs::SetMetricsEnabled(true);
  obs::CountIf("anonsafe_obs_test_gated_total", 2);
  obs::GaugeIf("anonsafe_obs_test_gated_gauge", 1.25);
  obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("anonsafe_obs_test_gated_total");
  obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("anonsafe_obs_test_gated_gauge");
  EXPECT_EQ(c->value(), 2u);
  EXPECT_DOUBLE_EQ(g->value(), 1.25);
  obs::SetMetricsEnabled(false);
  obs::CountIf("anonsafe_obs_test_gated_total", 5);
  obs::GaugeIf("anonsafe_obs_test_gated_gauge", 9.0);
  EXPECT_EQ(c->value(), 2u);
  EXPECT_DOUBLE_EQ(g->value(), 1.25);
}

TEST(ScopedTimerTest, DisabledModeAllocatesNothing) {
  ObsSwitchGuard guard;
  obs::SetMetricsEnabled(false);
  obs::SetTracingEnabled(false);
  // Warm up any lazy statics outside the measured window.
  { obs::ScopedTimer warmup("test.disabled_path"); }
  size_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    obs::ScopedTimer timer("test.disabled_path");
    obs::CountIf("anonsafe_obs_test_disabled_total");
    if (timer.tracing()) {
      timer.Annotate("iteration", std::to_string(i));
    }
  }
  EXPECT_EQ(g_allocation_count.load(std::memory_order_relaxed), before);
}

// ----------------------------------------------------------------- Export

TEST(ExportTest, JsonGolden) {
  obs::MetricsRegistry registry;
  registry.GetCounter("requests_total")->Increment(3);
  registry.GetGauge("queue_depth")->Set(1.5);
  obs::Histogram* h = registry.GetHistogram("latency_seconds", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(10.0);
  EXPECT_EQ(obs::ExportJson(registry),
            "{\n"
            "  \"counters\": [\n"
            "    {\"name\": \"requests_total\", \"value\": 3}\n"
            "  ],\n"
            "  \"gauges\": [\n"
            "    {\"name\": \"queue_depth\", \"value\": 1.5}\n"
            "  ],\n"
            "  \"histograms\": [\n"
            "    {\"name\": \"latency_seconds\", \"count\": 3, \"sum\": 12, "
            "\"p50\": 1.5, \"p95\": 2, \"p99\": 2, \"overflow\": 1, "
            "\"buckets\": "
            "[{\"le\": 1, \"count\": 1}, {\"le\": 2, \"count\": 1}, "
            "{\"le\": \"+Inf\", \"count\": 1}]}\n"
            "  ]\n"
            "}\n");
}

TEST(ExportTest, EmptyRegistryJsonIsValid) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(obs::ExportJson(registry),
            "{\n  \"counters\": [],\n  \"gauges\": [],\n"
            "  \"histograms\": []\n}\n");
}

TEST(ExportTest, PrometheusGolden) {
  obs::MetricsRegistry registry;
  registry.GetCounter("requests_total", "total requests")->Increment(3);
  registry.GetGauge("queue_depth")->Set(1.5);
  obs::Histogram* h = registry.GetHistogram("latency_seconds", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(10.0);
  EXPECT_EQ(obs::ExportPrometheus(registry),
            "# HELP requests_total total requests\n"
            "# TYPE requests_total counter\n"
            "requests_total 3\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 1.5\n"
            "# TYPE latency_seconds histogram\n"
            "latency_seconds_bucket{le=\"1\"} 1\n"
            "latency_seconds_bucket{le=\"2\"} 2\n"
            "latency_seconds_bucket{le=\"+Inf\"} 3\n"
            "latency_seconds_sum 12\n"
            "latency_seconds_count 3\n"
            "# TYPE latency_seconds_p50 gauge\n"
            "latency_seconds_p50 1.5\n"
            "# TYPE latency_seconds_p95 gauge\n"
            "latency_seconds_p95 2\n"
            "# TYPE latency_seconds_p99 gauge\n"
            "latency_seconds_p99 2\n");
}

TEST(ExportTest, PrometheusEscapesHostileHelpText) {
  obs::MetricsRegistry registry;
  registry.GetCounter("hostile_total",
                      "line one\nline \"two\" with \\ backslash")
      ->Increment();
  std::string text = obs::ExportPrometheus(registry);
  // The exposition format requires \n, \" and \\ escapes; a raw newline in
  // HELP would break every scraper.
  EXPECT_NE(text.find("# HELP hostile_total "
                      "line one\\nline \\\"two\\\" with \\\\ backslash\n"),
            std::string::npos);
  EXPECT_EQ(text.find("line one\nline"), std::string::npos);
}

TEST(ExportTest, LabeledCountersExport) {
  obs::MetricsRegistry registry;
  registry.GetCounter("other_total")->Increment(7);
  obs::Counter* ok = registry.GetCounterWithLabels(
      "requests_total", {{"verb", "assess_risk"}, {"outcome", "ok"}},
      "requests by verb/outcome");
  obs::Counter* bad = registry.GetCounterWithLabels(
      "requests_total", {{"verb", "assess_risk"}, {"outcome", "bad_request"}});
  ok->Increment(3);
  ok->Increment(2);
  bad->Increment();
  // Same (name, labels) key returns the same series.
  EXPECT_EQ(registry.GetCounterWithLabels(
                "requests_total",
                {{"verb", "assess_risk"}, {"outcome", "ok"}}),
            ok);

  std::string json = obs::ExportJson(registry);
  EXPECT_NE(json.find("{\"name\": \"requests_total\", \"labels\": "
                      "{\"verb\": \"assess_risk\", \"outcome\": "
                      "\"bad_request\"}, \"value\": 1}"),
            std::string::npos);
  EXPECT_NE(json.find("\"outcome\": \"ok\"}, \"value\": 5}"),
            std::string::npos);

  std::string prom = obs::ExportPrometheus(registry);
  // One HELP/TYPE header for the family, labeled series right after it.
  EXPECT_EQ(prom.find("# TYPE requests_total counter"),
            prom.rfind("# TYPE requests_total counter"));
  EXPECT_NE(
      prom.find("requests_total{verb=\"assess_risk\",outcome=\"ok\"} 5\n"),
      std::string::npos);
  EXPECT_NE(prom.find("requests_total{verb=\"assess_risk\","
                      "outcome=\"bad_request\"} 1\n"),
            std::string::npos);
}

TEST(ExportTest, PrometheusEscapesLabelValues) {
  obs::MetricsRegistry registry;
  registry
      .GetCounterWithLabels("evil_total", {{"verb", "a\"b\\c\nd"}})
      ->Increment();
  std::string prom = obs::ExportPrometheus(registry);
  EXPECT_NE(prom.find("evil_total{verb=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(ExportTest, ChromeTraceShape) {
  obs::Tracer tracer;
  tracer.Clear();
  size_t root = tracer.OpenSpan("assess_risk");
  size_t child = tracer.OpenSpan("oestimate");
  tracer.Annotate(child, "blocks", "4");
  tracer.CloseSpan(child);
  tracer.CloseSpan(root);

  std::string text = obs::ExportChromeTrace(tracer, "cli-assess");
  Result<json::Value> parsed = json::Value::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const json::Value& doc = parsed.value();
  EXPECT_EQ(doc.GetStringOr("displayTimeUnit", "").value(), "ms");
  const json::Value* other = doc.Find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->GetStringOr("trace_id", "").value(), "cli-assess");

  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Metadata event + one "X" event per span.
  ASSERT_EQ(events->items().size(), 3u);
  EXPECT_EQ(events->items()[0].GetStringOr("ph", "").value(), "M");
  const json::Value& root_event = events->items()[1];
  EXPECT_EQ(root_event.GetStringOr("ph", "").value(), "X");
  EXPECT_EQ(root_event.GetStringOr("name", "").value(), "assess_risk");
  const json::Value& child_event = events->items()[2];
  EXPECT_EQ(child_event.GetStringOr("name", "").value(), "oestimate");
  const json::Value* args = child_event.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->GetNumberOr("parent", -1).value(), 0.0);
  EXPECT_EQ(args->GetStringOr("blocks", "").value(), "4");
  EXPECT_EQ(args->GetStringOr("trace_id", "").value(), "cli-assess");
}

TEST(ExportTest, PrometheusPathReplacesExtension) {
  EXPECT_EQ(obs::PrometheusPathFor("metrics.json"), "metrics.prom");
  EXPECT_EQ(obs::PrometheusPathFor("out/m.json"), "out/m.prom");
  EXPECT_EQ(obs::PrometheusPathFor("noext"), "noext.prom");
  // A dot in a directory name is not an extension.
  EXPECT_EQ(obs::PrometheusPathFor("dir.v2/metrics"), "dir.v2/metrics.prom");
}

TEST(ExportTest, WriteMetricsFilesWritesBothSiblings) {
  obs::MetricsRegistry registry;
  registry.GetCounter("w_total")->Increment();
  const std::string json_path = testing::TempDir() + "/obs_export.json";
  ASSERT_TRUE(obs::WriteMetricsFiles(registry, json_path).ok());
  std::FILE* json = std::fopen(json_path.c_str(), "r");
  ASSERT_NE(json, nullptr);
  std::fclose(json);
  std::FILE* prom =
      std::fopen((testing::TempDir() + "/obs_export.prom").c_str(), "r");
  ASSERT_NE(prom, nullptr);
  std::fclose(prom);
  EXPECT_TRUE(
      obs::WriteMetricsFiles(registry, "/no/such/dir/x.json").IsIOError());
}

}  // namespace
}  // namespace anonsafe
