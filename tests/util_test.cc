#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "util/csv_writer.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace anonsafe {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::IOError("a"));
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  std::ostringstream oss;
  oss << Status::IOError("disk on fire");
  EXPECT_EQ(oss.str(), "IOError: disk on fire");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  ANONSAFE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

// ---------------------------------------------------------------- Result

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value_or(-1), 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-5);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> DoubledOrFail(int x) {
  ANONSAFE_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = DoubledOrFail(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(DoubledOrFail(0).status().IsOutOfRange());
}

TEST(ResultTest, ResultFromOkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(123), b(123), c(124);
  bool differs_from_c = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) differs_from_c = true;
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(RngTest, UniformUint64StaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
}

TEST(RngTest, UniformUint64HitsAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformUint64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesP) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(Mean(xs), 2.0, 0.1);
  EXPECT_NEAR(SampleStdDev(xs), 3.0, 0.1);
}

TEST(RngTest, PoissonMeanSmallAndLargeLambda) {
  Rng rng(19);
  for (double lambda : {2.5, 100.0}) {
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
      sum += static_cast<double>(rng.Poisson(lambda));
    }
    EXPECT_NEAR(sum / trials, lambda, lambda * 0.05 + 0.1);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / trials, 0.25, 0.02);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(29);
  std::vector<size_t> p = rng.Permutation(100);
  std::vector<size_t> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, SampleWithoutReplacementDistinctSortedInRange) {
  Rng rng(31);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    std::vector<size_t> s = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(s.size(), k);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
    for (size_t v : s) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(37);
  std::vector<size_t> s = rng.SampleWithoutReplacement(10, 10);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(RngTest, SampleWithoutReplacementUnbiasedish) {
  // Every element should be picked with probability k/n.
  Rng rng(41);
  const size_t n = 20, k = 5;
  std::vector<int> counts(n, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (size_t v : rng.SampleWithoutReplacement(n, k)) counts[v]++;
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / trials, 0.25, 0.03)
        << "element " << i;
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(43);
  Rng b = a.Fork();
  bool differs = false;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

// ----------------------------------------------------------------- Stats

TEST(StatsTest, EmptySample) {
  std::vector<double> xs;
  EXPECT_EQ(Mean(xs), 0.0);
  EXPECT_EQ(Median(xs), 0.0);
  EXPECT_EQ(SampleStdDev(xs), 0.0);
  EXPECT_EQ(Min(xs), 0.0);
  EXPECT_EQ(Max(xs), 0.0);
  EXPECT_EQ(Percentile(xs, 0.5), 0.0);
  EXPECT_EQ(Summarize(xs).count, 0u);
}

TEST(StatsTest, MeanMedianOddEven) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({5}), 5.0);
}

TEST(StatsTest, StdDevKnownValue) {
  // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is sqrt(32/7).
  EXPECT_NEAR(SampleStdDev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0),
              1e-12);
  EXPECT_EQ(SampleStdDev({42.0}), 0.0);
}

TEST(StatsTest, MinMaxPercentile) {
  std::vector<double> xs = {10, 0, 5, 2.5, 7.5};
  EXPECT_DOUBLE_EQ(Min(xs), 0.0);
  EXPECT_DOUBLE_EQ(Max(xs), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.25), 2.5);
}

TEST(StatsTest, PercentileEdgeCases) {
  // Empty and single-element inputs.
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 1.0), 7.0);
  // Out-of-range quantiles clamp to the extremes.
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0}, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0, 3.0}, 1.5), 3.0);
  // A NaN quantile degrades to the minimum instead of corrupting the
  // interpolation index.
  EXPECT_DOUBLE_EQ(
      Percentile({1.0, 2.0, 3.0}, std::numeric_limits<double>::quiet_NaN()),
      1.0);
  // Two elements interpolate linearly.
  EXPECT_DOUBLE_EQ(Percentile({10.0, 20.0}, 0.25), 12.5);
  // Unsorted input is sorted internally.
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 1.0), 3.0);
}

TEST(StatsTest, SummarizeAllFields) {
  Summary s = Summarize({1, 2, 3});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 1.0);
}

// ---------------------------------------------------------- TablePrinter

TEST(TablePrinterTest, AlignsAndRenders) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1.5"});
  t.AddRow({"beta", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name  |"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // Numeric cells are right-aligned: "22" should be preceded by spaces.
  EXPECT_NE(s.find("|    22 |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("only"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(static_cast<int64_t>(-7)), "-7");
  EXPECT_EQ(TablePrinter::Fmt(static_cast<size_t>(42)), "42");
  EXPECT_EQ(TablePrinter::FmtG(0.000123, 3), "0.000123");
}

// ------------------------------------------------------------- CsvWriter

TEST(CsvWriterTest, RendersHeaderAndRows) {
  CsvWriter w({"x", "y"});
  w.AddRow({"1", "2"});
  w.AddRow({"3", "4"});
  EXPECT_EQ(w.ToString(), "x,y\n1,2\n3,4\n");
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  CsvWriter w({"v"});
  w.AddRow({"has,comma"});
  w.AddRow({"has\"quote"});
  w.AddRow({"has\nnewline"});
  std::string s = w.ToString();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(s.find("\"has\nnewline\""), std::string::npos);
}

TEST(CsvWriterTest, EscapesCarriageReturn) {
  CsvWriter w({"v"});
  w.AddRow({"has\rreturn"});
  EXPECT_EQ(w.ToString(), "v\n\"has\rreturn\"\n");
}

TEST(CsvWriterTest, HeaderCellsAreEscapedToo) {
  CsvWriter w({"plain", "with,comma"});
  EXPECT_EQ(w.ToString(), "plain,\"with,comma\"\n");
}

TEST(CsvWriterTest, PadsShortAndDropsExtraCells) {
  CsvWriter w({"a", "b"});
  w.AddRow({"1"});
  w.AddRow({"1", "2", "3"});  // extra cell beyond the header is dropped
  EXPECT_EQ(w.ToString(), "a,b\n1,\n1,2\n");
}

TEST(CsvWriterTest, WriteFileRoundTrip) {
  CsvWriter w({"k", "v"});
  w.AddRow({"quoted", "x,y"});
  w.AddRow({"multi", "line\nvalue"});
  const std::string path = testing::TempDir() + "/util_csv_roundtrip.csv";
  ASSERT_TRUE(w.WriteFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), w.ToString());
}

TEST(CsvWriterTest, WriteFileFailsOnBadPath) {
  CsvWriter w({"v"});
  EXPECT_TRUE(w.WriteFile("/nonexistent_dir_xyz/file.csv").IsIOError());
}

}  // namespace
}  // namespace anonsafe
