// Protocol v2 coverage: the assess_risk_batch verb (bit-identity against
// sequential singles, per-item error envelopes, the v2 gate and the batch
// cap), server_info, per-tenant quotas, the v1 envelope regression
// guarantee, and pipelined/ordered responses over the epoll TCP loop.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "util/json.h"

namespace anonsafe {
namespace serve {
namespace {

constexpr char kDataset[] =
    "0 1 2\n0 1\n1 2 3\n0 2 3\n1 3\n0 1 3\n2 3\n0 3\n1 2\n0 1 2 3\n";

json::Value Send(Server& server, const std::string& line) {
  auto parsed = json::Value::Parse(server.HandleLine(line));
  EXPECT_TRUE(parsed.ok());
  return parsed.ok() ? *parsed : json::Value();
}

bool IsOk(const json::Value& response) {
  const json::Value* ok = response.Find("ok");
  return ok != nullptr && ok->is_bool() && ok->AsBool();
}

std::string ErrorCode(const json::Value& response) {
  const json::Value* error = response.Find("error");
  if (error == nullptr) return "";
  auto code = error->GetString("code");
  return code.ok() ? *code : "";
}

std::string EscapedDataset() {
  std::string escaped;
  for (char c : std::string(kDataset)) {
    if (c == '\n') {
      escaped += "\\n";
    } else {
      escaped += c;
    }
  }
  return escaped;
}

std::string LoadDataset(Server& server) {
  json::Value response =
      Send(server,
           "{\"schema_version\":2,\"id\":1,\"verb\":\"load_dataset\","
           "\"params\":{\"content\":\"" +
               EscapedDataset() + "\"}}");
  EXPECT_TRUE(IsOk(response));
  auto key = response.Find("result")->GetString("dataset");
  EXPECT_TRUE(key.ok());
  return key.ok() ? *key : "";
}

// The probe-grid items used by the bit-identity tests: distinct
// estimator/tolerance/seed combinations, plus a repeat of the first
// (exercising the intra-batch memo without changing the contract).
const char* const kProbeItems[] = {
    "{\"tolerance\":0.1}",
    "{\"tolerance\":0.25,\"estimator\":\"exact\"}",
    "{\"estimator\":\"sampler\",\"seed\":13}",
    "{\"tolerance\":0.1,\"include_similarity_curve\":false}",
    "{\"tolerance\":0.1}",
};

TEST(ServeBatchTest, BatchItemsBitIdenticalToSequentialSingles) {
  for (size_t threads : {size_t{1}, size_t{8}}) {
    Server server;
    const std::string key = LoadDataset(server);

    // Sequential singles, each its own request.
    std::vector<std::string> single_reports;
    for (const char* item : kProbeItems) {
      std::string params(item);
      params.insert(1, "\"dataset\":\"" + key + "\",");
      json::Value response =
          Send(server, "{\"schema_version\":1,\"verb\":\"assess_risk\","
                       "\"params\":" +
                           params + "}");
      ASSERT_TRUE(IsOk(response)) << item;
      single_reports.push_back(response.Find("result")->Find("report")->Dump());
    }

    // One batch round trip carrying the same grid.
    std::string items;
    for (const char* item : kProbeItems) {
      if (!items.empty()) items += ",";
      items += item;
    }
    json::Value batch = Send(
        server, "{\"schema_version\":2,\"verb\":\"assess_risk_batch\","
                "\"params\":{\"dataset\":\"" +
                    key + "\",\"threads\":" + std::to_string(threads) +
                    ",\"items\":[" + items + "]}}");
    ASSERT_TRUE(IsOk(batch));
    const json::Value* result = batch.Find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->GetString("dataset").value_or(""), key);
    const json::Value* out_items = result->Find("items");
    ASSERT_NE(out_items, nullptr);
    ASSERT_EQ(out_items->items().size(), single_reports.size());
    for (size_t i = 0; i < single_reports.size(); ++i) {
      const json::Value& env = out_items->items()[i];
      ASSERT_TRUE(IsOk(env)) << "item " << i;
      EXPECT_EQ(env.Find("report")->Dump(), single_reports[i])
          << "item " << i << " at threads=" << threads;
    }
  }
}

TEST(ServeBatchTest, PerItemErrorEnvelopes) {
  Server server;
  const std::string key = LoadDataset(server);
  json::Value batch = Send(
      server,
      "{\"schema_version\":2,\"verb\":\"assess_risk_batch\","
      "\"params\":{\"dataset\":\"" +
          key +
          "\",\"items\":["
          "{\"tolerance\":0.1},"              // fine
          "{\"estimator\":\"frobnicator\"},"  // unknown estimator
          "{\"tolerance\":\"loose\"},"        // wrong type
          "42,"                               // not an object
          "{\"deadline_ms\":5}"               // request-level param
          "]}}");
  ASSERT_TRUE(IsOk(batch));  // the batch itself succeeds
  const json::Value* items = batch.Find("result")->Find("items");
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->items().size(), 5u);
  EXPECT_TRUE(IsOk(items->items()[0]));
  for (size_t i = 1; i < 5; ++i) {
    const json::Value& env = items->items()[i];
    EXPECT_FALSE(IsOk(env)) << "item " << i;
    EXPECT_EQ(ErrorCode(env), kErrInvalidParams) << "item " << i;
  }
}

TEST(ServeBatchTest, BatchVerbRequiresV2Envelope) {
  Server server;
  const std::string key = LoadDataset(server);
  json::Value response = Send(
      server, "{\"schema_version\":1,\"verb\":\"assess_risk_batch\","
              "\"params\":{\"dataset\":\"" +
                  key + "\",\"items\":[{}]}}");
  // To a v1 client this server is indistinguishable from a v1 server,
  // where the verb does not exist.
  EXPECT_EQ(ErrorCode(response), kErrUnknownVerb);
  EXPECT_EQ(response.GetNumber("schema_version").value_or(0), 1.0);
}

TEST(ServeBatchTest, BatchLimitAndShapeErrors) {
  ServerOptions options;
  options.max_batch_items = 2;
  Server server(options);
  const std::string key = LoadDataset(server);
  EXPECT_EQ(ErrorCode(Send(
                server, "{\"schema_version\":2,\"verb\":\"assess_risk_batch\","
                        "\"params\":{\"dataset\":\"" +
                            key + "\",\"items\":[{},{},{}]}}")),
            kErrInvalidParams);
  EXPECT_EQ(ErrorCode(Send(
                server, "{\"schema_version\":2,\"verb\":\"assess_risk_batch\","
                        "\"params\":{\"dataset\":\"" +
                            key + "\",\"items\":[]}}")),
            kErrInvalidParams);
  EXPECT_EQ(ErrorCode(Send(
                server, "{\"schema_version\":2,\"verb\":\"assess_risk_batch\","
                        "\"params\":{\"dataset\":\"" +
                            key + "\",\"items\":{}}}")),
            kErrInvalidParams);
  EXPECT_EQ(ErrorCode(Send(
                server, "{\"schema_version\":2,\"verb\":\"assess_risk_batch\","
                        "\"params\":{\"items\":[{}]}}")),
            kErrInvalidParams);
  EXPECT_EQ(ErrorCode(Send(
                server, "{\"schema_version\":2,\"verb\":\"assess_risk_batch\","
                        "\"params\":{\"dataset\":\"nope\",\"items\":[{}]}}")),
            kErrNotFound);
}

TEST(ServeInfoTest, ServerInfoAdvertisesVersionsVerbsAndLimits) {
  ServerOptions options;
  options.max_batch_items = 33;
  Server server(options);
  json::Value response =
      Send(server, "{\"schema_version\":1,\"verb\":\"server_info\"}");
  ASSERT_TRUE(IsOk(response));
  const json::Value* result = response.Find("result");
  ASSERT_NE(result, nullptr);

  const json::Value* versions = result->Find("schema_versions");
  ASSERT_NE(versions, nullptr);
  ASSERT_EQ(versions->items().size(), 2u);
  EXPECT_EQ(versions->items()[0].AsDouble(), 1.0);
  EXPECT_EQ(versions->items()[1].AsDouble(), 2.0);

  const json::Value* verbs = result->Find("verbs");
  ASSERT_NE(verbs, nullptr);
  bool saw_batch = false;
  bool saw_sleep = false;
  for (const json::Value& verb : verbs->items()) {
    const std::string name = verb.GetString("verb").value_or("");
    if (name == "assess_risk_batch") {
      saw_batch = true;
      EXPECT_EQ(verb.GetNumber("min_schema_version").value_or(0), 2.0);
    }
    if (name == "sleep") saw_sleep = true;
  }
  EXPECT_TRUE(saw_batch);
  // Test-only verbs are not advertised when the gate is off.
  EXPECT_FALSE(saw_sleep);

  const json::Value* limits = result->Find("limits");
  ASSERT_NE(limits, nullptr);
  EXPECT_EQ(limits->GetNumber("max_batch_items").value_or(0), 33.0);
  EXPECT_EQ(limits->GetNumber("max_line_bytes").value_or(0),
            static_cast<double>(options.max_line_bytes));
}

TEST(ServeInfoTest, ServerInfoAdvertisesAdversaryRegistry) {
  Server server;
  json::Value response =
      Send(server, "{\"schema_version\":1,\"verb\":\"server_info\"}");
  ASSERT_TRUE(IsOk(response));
  const json::Value* adversaries =
      response.Find("result")->Find("adversaries");
  ASSERT_NE(adversaries, nullptr);
  ASSERT_EQ(adversaries->items().size(), 3u);
  // Registry order is part of the contract — clients may index it.
  EXPECT_EQ(adversaries->items()[0].GetString("name").value_or(""),
            "interval");
  EXPECT_EQ(adversaries->items()[1].GetString("name").value_or(""),
            "probabilistic");
  EXPECT_EQ(adversaries->items()[2].GetString("name").value_or(""),
            "exact_support");
  for (const json::Value& adv : adversaries->items()) {
    EXPECT_NE(adv.Find("weighted"), nullptr);
    EXPECT_NE(adv.Find("supports_exact"), nullptr);
    EXPECT_NE(adv.Find("params"), nullptr);
    EXPECT_FALSE(adv.GetString("summary").value_or("").empty());
  }
}

TEST(ServeAdversaryTest, UnknownAdversaryIsInvalidParams) {
  Server server;
  const std::string key = LoadDataset(server);
  EXPECT_EQ(ErrorCode(Send(
                server, "{\"schema_version\":1,\"verb\":\"assess_risk\","
                        "\"params\":{\"dataset\":\"" +
                            key + "\",\"adversary\":\"laplace\"}}")),
            kErrInvalidParams);
  // A known adversary with a malformed parameter is rejected the same
  // way — the spec parser validates against the registry entry.
  EXPECT_EQ(ErrorCode(Send(
                server, "{\"schema_version\":1,\"verb\":\"assess_risk\","
                        "\"params\":{\"dataset\":\"" +
                            key +
                            "\",\"adversary\":\"exact_support:k=0\"}}")),
            kErrInvalidParams);
}

TEST(ServeAdversaryTest, BatchAdversaryItemsBitIdenticalToSingles) {
  const char* const kAdversaryItems[] = {
      "{\"adversary\":\"interval\"}",
      "{\"adversary\":\"probabilistic:span=1,sigma=0.5\"}",
      "{\"adversary\":\"exact_support:k=2\"}",
  };
  Server server;
  const std::string key = LoadDataset(server);

  std::vector<std::string> single_reports;
  for (const char* item : kAdversaryItems) {
    std::string params(item);
    params.insert(1, "\"dataset\":\"" + key + "\",");
    json::Value response =
        Send(server, "{\"schema_version\":1,\"verb\":\"assess_risk\","
                     "\"params\":" +
                         params + "}");
    ASSERT_TRUE(IsOk(response)) << item;
    single_reports.push_back(response.Find("result")->Find("report")->Dump());
  }

  std::string items;
  for (const char* item : kAdversaryItems) {
    if (!items.empty()) items += ",";
    items += item;
  }
  json::Value batch = Send(
      server, "{\"schema_version\":2,\"verb\":\"assess_risk_batch\","
              "\"params\":{\"dataset\":\"" +
                  key + "\",\"items\":[" + items + "]}}");
  ASSERT_TRUE(IsOk(batch));
  const json::Value* results = batch.Find("result")->Find("items");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->items().size(), 3u);
  for (size_t i = 0; i < single_reports.size(); ++i) {
    const json::Value& entry = results->items()[i];
    ASSERT_TRUE(IsOk(entry)) << i;
    EXPECT_EQ(entry.Find("report")->Dump(), single_reports[i]) << i;
  }
}

TEST(ServeQuotaTest, TokenBucketRefillsAtConfiguredRate) {
  TenantQuotas quotas(/*rate=*/2.0, /*burst=*/2.0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(quotas.TryAcquireAt("a", t0));
  EXPECT_TRUE(quotas.TryAcquireAt("a", t0));
  EXPECT_FALSE(quotas.TryAcquireAt("a", t0));  // burst spent
  // An independent bucket: tenant b is unaffected by a's burn.
  EXPECT_TRUE(quotas.TryAcquireAt("b", t0));
  // Half a second at 2 tokens/s refills one token.
  EXPECT_TRUE(
      quotas.TryAcquireAt("a", t0 + std::chrono::milliseconds(500)));
  EXPECT_FALSE(
      quotas.TryAcquireAt("a", t0 + std::chrono::milliseconds(500)));
  EXPECT_EQ(quotas.num_tenants(), 2u);
}

TEST(ServeQuotaTest, QuotaExceededErrorAndExemptions) {
  ServerOptions options;
  options.enable_test_verbs = true;
  options.tenant_rate = 0.001;  // effectively no refill within the test
  options.tenant_burst = 2.0;
  Server server(options);

  const std::string sleep_a =
      "{\"schema_version\":2,\"tenant\":\"a\",\"verb\":\"sleep\","
      "\"params\":{\"millis\":0}}";
  EXPECT_TRUE(IsOk(Send(server, sleep_a)));
  EXPECT_TRUE(IsOk(Send(server, sleep_a)));
  json::Value rejected = Send(server, sleep_a);
  EXPECT_EQ(ErrorCode(rejected), kErrQuotaExceeded);

  // Observer verbs never spend the budget, and other tenants (including
  // the anonymous v1 bucket) are unaffected.
  EXPECT_TRUE(IsOk(Send(
      server, "{\"schema_version\":2,\"tenant\":\"a\",\"verb\":\"metrics\"}")));
  EXPECT_TRUE(IsOk(Send(
      server,
      "{\"schema_version\":2,\"tenant\":\"b\",\"verb\":\"sleep\","
      "\"params\":{\"millis\":0}}")));
  EXPECT_TRUE(IsOk(Send(
      server,
      "{\"schema_version\":1,\"verb\":\"sleep\",\"params\":{\"millis\":0}}")));
  // The refused request never reached admission, so the quota error wins
  // over queue_full even on a saturated server — and shutdown, a control
  // verb, always works.
  EXPECT_TRUE(IsOk(Send(server, "{\"schema_version\":2,\"tenant\":\"a\","
                                "\"verb\":\"shutdown\"}")));
}

TEST(ServeEnvelopeTest, V1ResponsesAreBitIdenticalToV1Server) {
  Server server;
  // Error envelope: exact bytes a v1-only server produced.
  EXPECT_EQ(server.HandleLine("{\"schema_version\":1,\"id\":7,"
                              "\"verb\":\"frobnicate\"}"),
            "{\"schema_version\":1,\"id\":7,\"ok\":false,\"error\":"
            "{\"code\":\"unknown_verb\",\"message\":"
            "\"unknown verb 'frobnicate'\"}}");
  // A v1 request naming a tenant keeps its v1 meaning: the unknown
  // top-level key is ignored, nothing is charged or echoed.
  json::Value response = Send(
      server, "{\"schema_version\":1,\"tenant\":\"a\",\"verb\":\"metrics\"}");
  EXPECT_TRUE(IsOk(response));
  EXPECT_EQ(response.GetNumber("schema_version").value_or(0), 1.0);
  // A v2 request gets the v2 stamp; an ill-typed tenant is a schema
  // error.
  EXPECT_EQ(Send(server, "{\"schema_version\":2,\"verb\":\"metrics\"}")
                .GetNumber("schema_version")
                .value_or(0),
            2.0);
  EXPECT_EQ(ErrorCode(Send(
                server, "{\"schema_version\":2,\"tenant\":5,"
                        "\"verb\":\"metrics\"}")),
            kErrInvalidParams);
}

// A client that sends its next request the moment the previous response
// arrives must never racily hit queue_full: the admission slot is freed
// before the response is delivered, so on the tightest possible server
// (one worker, zero queue) a strictly sequential client always fits.
TEST(ServeAdmissionTest, SlotIsFreeWhenTheResponseArrives) {
  ServerOptions options;
  options.enable_test_verbs = true;
  options.workers = 1;
  options.queue_capacity = 0;
  Server server(options);
  for (int i = 0; i < 100; ++i) {
    json::Value response =
        Send(server, "{\"schema_version\":1,\"verb\":\"sleep\","
                     "\"params\":{\"millis\":0}}");
    ASSERT_TRUE(IsOk(response)) << "request " << i << " was refused: "
                                << ErrorCode(response);
  }
}

TEST(ServeEventLoopTest, PipelinedRequestsAnsweredInOrder) {
  ServerOptions server_options;
  server_options.workers = 2;
  server_options.enable_test_verbs = true;
  Server server(server_options);
  uint16_t port = 0;
  std::mutex mu;
  std::condition_variable cv;
  TcpServerOptions options;
  options.on_listening = [&](uint16_t bound) {
    std::lock_guard<std::mutex> lock(mu);
    port = bound;
    cv.notify_all();
  };
  Status serve_status = Status::OK();
  std::thread serving([&] { serve_status = ServeTcp(server, options); });
  {
    std::unique_lock<std::mutex> lock(mu);
    if (!cv.wait_for(lock, std::chrono::seconds(5),
                     [&] { return port != 0; })) {
      serving.detach();
      GTEST_SKIP() << "TCP listen did not come up (sandboxed environment?)";
    }
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    server.HandleLine("{\"schema_version\":1,\"verb\":\"shutdown\"}");
    serving.join();
    GTEST_SKIP() << "loopback connect refused (sandboxed environment?)";
  }

  // Everything in one write: a burst of pipelined requests with distinct
  // ids (the slow one first), then the shutdown. Responses must come
  // back in request order even though verbs run on the runner pool.
  const std::string request =
      "{\"schema_version\":1,\"id\":1,\"verb\":\"sleep\","
      "\"params\":{\"millis\":50}}\n"
      "{\"schema_version\":1,\"id\":2,\"verb\":\"sleep\","
      "\"params\":{\"millis\":1}}\n"
      "{\"schema_version\":2,\"id\":3,\"verb\":\"server_info\"}\n"
      "{\"schema_version\":1,\"id\":4,\"verb\":\"shutdown\"}\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));

  std::string received;
  char buf[65536];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    received.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  serving.join();
  EXPECT_TRUE(serve_status.ok()) << serve_status.message();

  std::vector<json::Value> responses;
  size_t start = 0;
  for (size_t i = 0; i < received.size(); ++i) {
    if (received[i] != '\n') continue;
    auto parsed = json::Value::Parse(received.substr(start, i - start));
    ASSERT_TRUE(parsed.ok());
    responses.push_back(*parsed);
    start = i + 1;
  }
  ASSERT_EQ(responses.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(IsOk(responses[i])) << "response " << i;
    EXPECT_EQ(responses[i].GetNumber("id").value_or(0),
              static_cast<double>(i + 1));
  }
  // Version echo holds per request within one connection.
  EXPECT_EQ(responses[2].GetNumber("schema_version").value_or(0), 2.0);
  EXPECT_EQ(responses[3].GetNumber("schema_version").value_or(0), 1.0);
}

}  // namespace
}  // namespace serve
}  // namespace anonsafe
