#include <gtest/gtest.h>

#include <algorithm>

#include "data/database.h"
#include "datagen/quest.h"
#include "mining/itemset.h"
#include "mining/miner.h"

namespace anonsafe {
namespace {

Database Classic() {
  // The canonical Agrawal-Srikant style toy database.
  Database db(5);
  EXPECT_TRUE(db.AddTransaction({0, 1, 4}).ok());
  EXPECT_TRUE(db.AddTransaction({1, 3}).ok());
  EXPECT_TRUE(db.AddTransaction({1, 2}).ok());
  EXPECT_TRUE(db.AddTransaction({0, 1, 3}).ok());
  EXPECT_TRUE(db.AddTransaction({0, 2}).ok());
  EXPECT_TRUE(db.AddTransaction({1, 2}).ok());
  EXPECT_TRUE(db.AddTransaction({0, 2}).ok());
  EXPECT_TRUE(db.AddTransaction({0, 1, 2, 4}).ok());
  EXPECT_TRUE(db.AddTransaction({0, 1, 2}).ok());
  return db;
}

// ----------------------------------------------------------------- Itemset

TEST(ItemsetTest, SubsetCheck) {
  EXPECT_TRUE(IsSubsetOf({1, 3}, {0, 1, 2, 3}));
  EXPECT_FALSE(IsSubsetOf({1, 5}, {0, 1, 2, 3}));
  EXPECT_TRUE(IsSubsetOf({}, {0}));
  EXPECT_FALSE(IsSubsetOf({0}, {}));
}

TEST(ItemsetTest, CanonicalOrderSizeThenLex) {
  FrequentItemset a{{5}, 1}, b{{0, 1}, 1}, c{{0, 2}, 1};
  EXPECT_TRUE(CanonicalLess(a, b));
  EXPECT_TRUE(CanonicalLess(b, c));
  EXPECT_FALSE(CanonicalLess(c, b));
  std::vector<FrequentItemset> v = {c, a, b};
  SortCanonical(&v);
  EXPECT_EQ(v[0].items, (Itemset{5}));
  EXPECT_EQ(v[2].items, (Itemset{0, 2}));
}

TEST(ItemsetTest, ToStringForms) {
  EXPECT_EQ(ItemsetToString({1, 5, 9}), "{1, 5, 9}");
  EXPECT_EQ(ToString(FrequentItemset{{2}, 7}), "{2}:7");
}

TEST(ItemsetTest, HashDistinguishesSets) {
  ItemsetHash h;
  EXPECT_NE(h({1, 2}), h({2, 1, 1}));  // different vectors hash differently
  EXPECT_EQ(h({1, 2, 3}), h({1, 2, 3}));
}

// ------------------------------------------------------------------ Miners

TEST(MinerTest, ThresholdComputation) {
  MiningOptions opt;
  opt.min_support = 0.25;
  EXPECT_EQ(opt.AbsoluteThreshold(8), 2u);
  opt.min_support = 0.3;
  EXPECT_EQ(opt.AbsoluteThreshold(10), 3u);
  opt.min_support = 1e-9;
  EXPECT_EQ(opt.AbsoluteThreshold(10), 1u);
  opt.min_support = 1.0;
  EXPECT_EQ(opt.AbsoluteThreshold(10), 10u);
}

TEST(MinerTest, ValidatesInputs) {
  Database empty(3);
  MiningOptions opt;
  EXPECT_TRUE(MineApriori(empty, opt).status().IsInvalidArgument());
  EXPECT_TRUE(MineFPGrowth(empty, opt).status().IsInvalidArgument());
  Database db(2);
  ASSERT_TRUE(db.AddTransaction({0}).ok());
  opt.min_support = 0.0;
  EXPECT_TRUE(MineApriori(db, opt).status().IsInvalidArgument());
  opt.min_support = 1.5;
  EXPECT_TRUE(MineFPGrowth(db, opt).status().IsInvalidArgument());
}

TEST(MinerTest, AprioriKnownResult) {
  Database db = Classic();
  MiningOptions opt;
  opt.min_support = 4.0 / 9.0;  // absolute threshold 4
  auto result = MineApriori(db, opt);
  ASSERT_TRUE(result.ok());
  // Supports: 0:6, 1:7, 2:6, 3:2, 4:2; pairs {0,1}:4, {0,2}:4, {1,2}:4.
  std::vector<FrequentItemset> expected = {
      {{0}, 6}, {{1}, 7}, {{2}, 6}, {{0, 1}, 4}, {{0, 2}, 4}, {{1, 2}, 4}};
  SortCanonical(&expected);
  EXPECT_EQ(*result, expected);
}

TEST(MinerTest, AprioriAndFPGrowthAgreeOnClassic) {
  Database db = Classic();
  for (double ms : {0.2, 0.34, 0.5, 0.8}) {
    MiningOptions opt;
    opt.min_support = ms;
    auto a = MineApriori(db, opt);
    auto f = MineFPGrowth(db, opt);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(*a, *f) << "min_support=" << ms;
  }
}

class MinerAgreementTest : public ::testing::TestWithParam<
                               std::tuple<uint64_t, double>> {};

TEST_P(MinerAgreementTest, AprioriEqualsFPGrowthOnQuestData) {
  auto [seed, min_support] = GetParam();
  QuestParams params;
  params.num_items = 40;
  params.num_transactions = 300;
  params.avg_txn_size = 6.0;
  params.num_patterns = 20;
  params.avg_pattern_size = 3.0;
  params.seed = seed;
  auto db = GenerateQuestDatabase(params);
  ASSERT_TRUE(db.ok());

  MiningOptions opt;
  opt.min_support = min_support;
  auto a = MineApriori(*db, opt);
  auto f = MineFPGrowth(*db, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.ok());
  ASSERT_EQ(a->size(), f->size());
  EXPECT_EQ(*a, *f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MinerAgreementTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(0.05, 0.1, 0.2)));

TEST(MinerTest, MaxItemsetSizeCap) {
  Database db = Classic();
  MiningOptions opt;
  opt.min_support = 0.2;
  opt.max_itemset_size = 1;
  auto a = MineApriori(db, opt);
  auto f = MineFPGrowth(db, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.ok());
  for (const auto& fi : *a) EXPECT_EQ(fi.items.size(), 1u);
  EXPECT_EQ(*a, *f);

  opt.max_itemset_size = 2;
  a = MineApriori(db, opt);
  f = MineFPGrowth(db, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.ok());
  for (const auto& fi : *a) EXPECT_LE(fi.items.size(), 2u);
  EXPECT_EQ(*a, *f);
}

TEST(MinerTest, SupportsAreExact) {
  Database db = Classic();
  MiningOptions opt;
  opt.min_support = 0.1;
  auto result = MineFPGrowth(db, opt);
  ASSERT_TRUE(result.ok());
  // Spot-check by brute force.
  for (const auto& fi : *result) {
    size_t count = 0;
    for (const auto& txn : db.transactions()) {
      if (IsSubsetOf(fi.items, txn)) ++count;
    }
    EXPECT_EQ(fi.support, count) << ToString(fi);
  }
}

TEST(MinerTest, NoFrequentItemsAtImpossibleThreshold) {
  Database db = Classic();
  MiningOptions opt;
  opt.min_support = 1.0;
  auto a = MineApriori(db, opt);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->empty());
  auto f = MineFPGrowth(db, opt);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->empty());
}

TEST(MinerTest, SingleTransactionAllSubsetsFrequent) {
  Database db(3);
  ASSERT_TRUE(db.AddTransaction({0, 1, 2}).ok());
  MiningOptions opt;
  opt.min_support = 1.0;
  auto f = MineFPGrowth(db, opt);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->size(), 7u);  // all non-empty subsets of {0,1,2}
  auto a = MineApriori(db, opt);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, *f);
}

TEST(FrequentItemsTest, ReturnsFrequentSingletons) {
  Database db = Classic();
  auto items = FrequentItems(db, 6.0 / 9.0);
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(*items, (std::vector<ItemId>{0, 1, 2}));  // supports 6, 7, 6
}

}  // namespace
}  // namespace anonsafe
