#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "anonymize/anonymizer.h"
#include "belief/builders.h"
#include "belief/chain.h"
#include "core/direct_method.h"
#include "core/oestimate.h"
#include "data/frequency.h"
#include "datagen/profile.h"
#include "graph/bipartite_graph.h"
#include "graph/consistency.h"
#include "graph/hopcroft_karp.h"
#include "graph/permanent.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

/// Random supports with repeats (interesting group structure).
std::vector<SupportCount> RandomSupports(size_t n, size_t m, Rng* rng) {
  std::vector<SupportCount> supports(n);
  for (size_t i = 0; i < n; ++i) {
    supports[i] = 1 + rng->UniformUint64(m);
  }
  return supports;
}

/// Random compliant interval belief: per-item width in [0, spread].
Result<BeliefFunction> RandomCompliantBelief(const FrequencyTable& table,
                                             double spread, Rng* rng) {
  std::vector<BeliefInterval> intervals(table.num_items());
  for (ItemId x = 0; x < table.num_items(); ++x) {
    double f = table.frequency(x);
    double below = spread * rng->UniformDouble();
    double above = spread * rng->UniformDouble();
    intervals[x] = {std::max(0.0, f - below), std::min(1.0, f + above)};
  }
  return BeliefFunction::Create(std::move(intervals));
}

// ===================================================================
// Property: OE monotonicity in the belief refinement order (Lemma 8).
// ===================================================================

class Lemma8PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma8PropertyTest, WideningEveryIntervalNeverIncreasesOE) {
  Rng rng(GetParam());
  const size_t n = 5 + rng.UniformUint64(40);
  const size_t m = 100;
  auto table = FrequencyTable::FromSupports(RandomSupports(n, m, &rng), m);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);

  auto narrow = RandomCompliantBelief(*table, 0.05, &rng);
  ASSERT_TRUE(narrow.ok());
  // Widen each interval by random non-negative amounts.
  std::vector<BeliefInterval> widened = narrow->intervals();
  for (auto& iv : widened) {
    iv.lo = std::max(0.0, iv.lo - 0.2 * rng.UniformDouble());
    iv.hi = std::min(1.0, iv.hi + 0.2 * rng.UniformDouble());
  }
  auto wide = BeliefFunction::Create(std::move(widened));
  ASSERT_TRUE(wide.ok());
  ASSERT_TRUE(narrow->Refines(*wide));

  OEstimateOptions opt;
  opt.propagate = false;  // Lemma 8 is stated for raw outdegrees
  auto oe_narrow = ComputeOEstimate(groups, *narrow, opt);
  auto oe_wide = ComputeOEstimate(groups, *wide, opt);
  ASSERT_TRUE(oe_narrow.ok());
  ASSERT_TRUE(oe_wide.ok());
  EXPECT_GE(oe_narrow->expected_cracks, oe_wide->expected_cracks - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma8PropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

// ===================================================================
// Property: α-compliancy monotonicity (Lemma 10): removing items from
// the compliant set never increases the restricted OE.
// ===================================================================

class Lemma10PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma10PropertyTest, ShrinkingCompliantSetDecreasesOE) {
  Rng rng(GetParam() * 1009);
  const size_t n = 10 + rng.UniformUint64(30);
  const size_t m = 200;
  auto table = FrequencyTable::FromSupports(RandomSupports(n, m, &rng), m);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto base = RandomCompliantBelief(*table, 0.1, &rng);
  ASSERT_TRUE(base.ok());

  // Nested masks: big ⊃ small.
  std::vector<size_t> order = rng.Permutation(n);
  size_t big_count = n / 2 + rng.UniformUint64(n / 2);
  size_t small_count = rng.UniformUint64(big_count + 1);
  std::vector<bool> big(n, false), small(n, false);
  for (size_t i = 0; i < big_count; ++i) big[order[i]] = true;
  for (size_t i = 0; i < small_count; ++i) small[order[i]] = true;

  OEstimateOptions opt;
  opt.propagate = false;
  auto oe_big = ComputeOEstimateRestricted(groups, *base, big, opt);
  auto oe_small = ComputeOEstimateRestricted(groups, *base, small, opt);
  ASSERT_TRUE(oe_big.ok());
  ASSERT_TRUE(oe_small.ok());
  EXPECT_LE(oe_small->expected_cracks, oe_big->expected_cracks + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma10PropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

// ===================================================================
// Property: risk metrics are invariant under the anonymization
// permutation (the identity-surrogate convention is WLOG).
// ===================================================================

class PermutationInvarianceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(PermutationInvarianceTest, FrequencyProfileUnchanged) {
  Rng rng(GetParam() * 31 + 7);
  auto profile = FrequencyProfile::Create(
      100, {{5, 3}, {20, 2}, {60, 3}, {90, 1}});
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());
  Anonymizer mapping = Anonymizer::Random(db->num_items(), &rng);
  auto anon_db = mapping.AnonymizeDatabase(*db);
  ASSERT_TRUE(anon_db.ok());

  auto orig = FrequencyTable::Compute(*db);
  auto anon = FrequencyTable::Compute(*anon_db);
  ASSERT_TRUE(orig.ok());
  ASSERT_TRUE(anon.ok());
  FrequencyGroups go = FrequencyGroups::Build(*orig);
  FrequencyGroups ga = FrequencyGroups::Build(*anon);

  // Identical group structure: sizes, supports, gaps.
  ASSERT_EQ(go.num_groups(), ga.num_groups());
  for (size_t g = 0; g < go.num_groups(); ++g) {
    EXPECT_EQ(go.group_support(g), ga.group_support(g));
    EXPECT_EQ(go.group_size(g), ga.group_size(g));
  }
  EXPECT_EQ(go.MedianGap(), ga.MedianGap());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationInvarianceTest,
                         ::testing::Range<uint64_t>(1, 11));

// ===================================================================
// Property: propagation is sound — it never forces a pair that is
// absent from every perfect matching, and on compliant beliefs every
// forced pair is a certain crack. Verified against enumeration.
// ===================================================================

class PropagationSoundnessTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(PropagationSoundnessTest, ForcedCountMatchesCertainCracks) {
  Rng rng(GetParam() * 977 + 5);
  const size_t n = 3 + rng.UniformUint64(5);
  const size_t m = 30;
  auto table = FrequencyTable::FromSupports(RandomSupports(n, m, &rng), m);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = RandomCompliantBelief(*table, 0.15, &rng);
  ASSERT_TRUE(beta.ok());

  auto cs = ConsistencyStructure::Build(groups, *beta);
  ASSERT_TRUE(cs.ok());
  auto stats = cs->PropagateDegreeOne();
  ASSERT_FALSE(stats.contradiction);  // compliant => perfect matching

  auto dist = DirectCrackDistribution(groups, *beta);
  ASSERT_TRUE(dist.ok());
  // Count items cracked in EVERY perfect matching: under compliance a
  // forced item is always cracked, so forced <= certain cracks. The
  // minimum crack count over matchings bounds the certain cracks.
  size_t min_cracks = 0;
  for (size_t c = 0; c < dist->probability.size(); ++c) {
    if (dist->probability[c] > 0.0) {
      min_cracks = c;
      break;
    }
  }
  EXPECT_LE(stats.forced_pairs, min_cracks)
      << "propagation forced more pairs than the least-cracked matching";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationSoundnessTest,
                         ::testing::Range<uint64_t>(1, 26));

// ===================================================================
// Property: the compressed ConsistencyStructure and the explicit
// BipartiteGraph agree on every outdegree.
// ===================================================================

class RepresentationAgreementTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepresentationAgreementTest, OutdegreesAgree) {
  Rng rng(GetParam() * 13 + 3);
  const size_t n = 5 + rng.UniformUint64(60);
  const size_t m = 500;
  auto table = FrequencyTable::FromSupports(RandomSupports(n, m, &rng), m);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  // Mix of compliant and wild intervals.
  std::vector<BeliefInterval> intervals(n);
  for (size_t x = 0; x < n; ++x) {
    double a = rng.UniformDouble(), b = rng.UniformDouble();
    intervals[x] = {std::min(a, b), std::max(a, b)};
  }
  auto beta = BeliefFunction::Create(std::move(intervals));
  ASSERT_TRUE(beta.ok());

  auto cs = ConsistencyStructure::Build(groups, *beta);
  auto g = BipartiteGraph::Build(groups, *beta);
  ASSERT_TRUE(cs.ok());
  ASSERT_TRUE(g.ok());
  for (ItemId x = 0; x < n; ++x) {
    EXPECT_EQ(cs->outdegree(x), g->item_outdegree(x)) << "item " << x;
  }

  // And OE without propagation equals the literal Figure 5 sum.
  OEstimateOptions opt;
  opt.propagate = false;
  auto oe = ComputeOEstimate(groups, *beta, opt);
  ASSERT_TRUE(oe.ok());
  double manual = 0.0;
  for (ItemId x = 0; x < n; ++x) {
    if (g->item_outdegree(x) > 0) {
      manual += 1.0 / static_cast<double>(g->item_outdegree(x));
    }
  }
  EXPECT_NEAR(oe->expected_cracks, manual, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepresentationAgreementTest,
                         ::testing::Range<uint64_t>(1, 16));

// ===================================================================
// Property: on random chains, Lemma 6 equals the permanent-based
// direct method, and the OE relative error stays small (the Section
// 5.2 claim).
// ===================================================================

class RandomChainPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomChainPropertyTest, Lemma6MatchesDirectMethod) {
  Rng rng(GetParam() * 37);
  // Random feasible chain of length 2-3 with <= 12 items (permanent-safe).
  const size_t k = 2 + rng.UniformUint64(2);
  ChainSpec spec;
  spec.n.resize(k);
  spec.e.resize(k);
  spec.s.resize(k - 1);
  // Build by choosing flows first so feasibility is guaranteed:
  // L_i >= 0, R_i >= 0, n_i = e_i + R_{i-1} + L_i, s_i = L_i + R_i >= 1.
  size_t total = 0;
  size_t prev_r = 0;
  for (size_t i = 0; i < k; ++i) {
    size_t e = rng.UniformUint64(3);
    size_t l = (i + 1 < k) ? rng.UniformUint64(3) : 0;
    size_t r = (i + 1 < k) ? rng.UniformUint64(3) : 0;
    if (i + 1 < k && l + r == 0) l = 1;  // s_i >= 1
    spec.e[i] = e;
    spec.n[i] = e + prev_r + l;
    if (spec.n[i] == 0) {
      spec.e[i] += 1;
      spec.n[i] += 1;
    }
    if (i + 1 < k) spec.s[i] = l + r;
    prev_r = r;
    total += spec.n[i];
  }
  if (total > 12) {
    GTEST_SKIP() << "chain too large for the permanent oracle";
  }
  ASSERT_TRUE(ValidateChain(spec).ok());

  auto realized = RealizeChain(spec, 60);
  ASSERT_TRUE(realized.ok());
  auto table = FrequencyTable::FromSupports(realized->item_supports,
                                            realized->num_transactions);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);

  auto formula = ChainExactExpectedCracks(spec);
  auto direct = DirectExpectedCracks(groups, realized->belief);
  ASSERT_TRUE(formula.ok());
  ASSERT_TRUE(direct.ok()) << direct.status();
  EXPECT_NEAR(*formula, *direct, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainPropertyTest,
                         ::testing::Range<uint64_t>(1, 31));

// ===================================================================
// Property: profile generation realizes supports exactly, for random
// profiles (the substitution argument of DESIGN.md depends on this).
// ===================================================================

class ProfileRealizationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProfileRealizationTest, GeneratedSupportsEqualProfile) {
  Rng rng(GetParam() * 101);
  const size_t m = 50 + rng.UniformUint64(200);
  const size_t g = 2 + rng.UniformUint64(6);
  std::vector<ProfileGroup> groups;
  std::set<SupportCount> used;
  uint64_t occurrences = 0;
  for (size_t i = 0; i < g; ++i) {
    SupportCount s = 1 + rng.UniformUint64(m);
    if (used.count(s)) continue;
    used.insert(s);
    size_t size = 1 + rng.UniformUint64(5);
    groups.push_back({s, size});
    occurrences += s * size;
  }
  // Ensure coverage feasibility.
  if (occurrences < m) {
    SupportCount filler = m;
    if (!used.count(filler)) groups.push_back({filler, 1});
  }
  auto profile = FrequencyProfile::Create(m, groups);
  ASSERT_TRUE(profile.ok());

  auto db = GenerateDatabase(*profile, &rng);
  if (!db.ok()) {
    // Only legitimate failure: not enough occurrences to cover m.
    EXPECT_TRUE(db.status().IsInvalidArgument());
    return;
  }
  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());
  std::vector<SupportCount> expected = profile->ItemSupports();
  for (ItemId x = 0; x < db->num_items(); ++x) {
    EXPECT_EQ(table->support(x), expected[x]);
  }
  for (const auto& txn : db->transactions()) EXPECT_FALSE(txn.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileRealizationTest,
                         ::testing::Range<uint64_t>(1, 21));

// ===================================================================
// Property: Hopcroft–Karp finds a perfect matching iff the permanent
// is positive (small graphs).
// ===================================================================

class MatchingExistenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchingExistenceTest, HopcroftKarpAgreesWithPermanent) {
  Rng rng(GetParam() * 7919);
  const size_t n = 2 + rng.UniformUint64(7);
  std::vector<std::vector<ItemId>> adj(n);
  for (size_t a = 0; a < n; ++a) {
    for (size_t x = 0; x < n; ++x) {
      if (rng.Bernoulli(0.35)) adj[a].push_back(static_cast<ItemId>(x));
    }
  }
  auto g = BipartiteGraph::FromAdjacency(n, std::move(adj));
  ASSERT_TRUE(g.ok());
  Matching matching = HopcroftKarp(*g);
  auto permanent = CountPerfectMatchings(*g);
  ASSERT_TRUE(permanent.ok());
  EXPECT_EQ(matching.IsPerfect(), *permanent > 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingExistenceTest,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace anonsafe
