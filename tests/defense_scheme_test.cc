#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/database.h"
#include "data/frequency.h"
#include "defense/k_anonymity.h"
#include "defense/scheme.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

using defense::DefenseParams;
using defense::DefensePlan;
using defense::DefenseScheme;

FrequencyTable Fixture() {
  // Supports 10, 11, 12 (tight run) and 40 over m = 100: two natural
  // merge clusters, a frequency-unique item for suppression to target.
  auto table = FrequencyTable::FromSupports({10, 11, 12, 40}, 100);
  EXPECT_TRUE(table.ok());
  return *table;
}

// ----------------------------------------------------------------- Params

TEST(DefenseParamsTest, SetFindGet) {
  DefenseParams p;
  p.Set("k", 4.0);
  p.Set("iters", 24.0);
  p.Set("k", 6.0);  // replaces in place, keeps insertion order
  ASSERT_NE(p.Find("k"), nullptr);
  EXPECT_EQ(*p.Find("k"), 6.0);
  EXPECT_EQ(p.Find("nope"), nullptr);
  EXPECT_EQ(p.GetOr("iters", 1.0), 24.0);
  EXPECT_EQ(p.GetOr("nope", 1.0), 1.0);
  auto got = p.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 6.0);
  EXPECT_TRUE(p.Get("nope").status().IsInvalidArgument());
  EXPECT_EQ(p.ToString(), "k=6,iters=24");
}

TEST(DefenseParamsTest, JsonRoundTrip) {
  DefenseParams p;
  p.Set("tolerance", 0.1);
  p.Set("rerank_batch", 8.0);
  auto back = DefenseParams::FromJson(p.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->values, p.values);
  EXPECT_EQ(back->ToJson().Dump(), p.ToJson().Dump());
}

// --------------------------------------------------------------- Registry

TEST(DefenseRegistryTest, FixedOrderAndLookup) {
  const auto& all = DefenseScheme::All();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_STREQ(all[0]->name(), "k_anonymity");
  EXPECT_STREQ(all[1]->name(), "group_merge");
  EXPECT_STREQ(all[2]->name(), "suppression");
  for (const DefenseScheme* s : all) {
    EXPECT_EQ(DefenseScheme::Find(s->name()), s);
  }
  EXPECT_EQ(DefenseScheme::Find("differential_privacy"), nullptr);
}

TEST(DefenseRegistryTest, ParamSpacesAreDeterministicAndTyped) {
  FrequencyTable table = Fixture();
  for (const DefenseScheme* s : DefenseScheme::All()) {
    auto grid1 = s->ParamSpace(table);
    auto grid2 = s->ParamSpace(table);
    ASSERT_EQ(grid1.size(), grid2.size()) << s->name();
    for (size_t i = 0; i < grid1.size(); ++i) {
      EXPECT_EQ(grid1[i].values, grid2[i].values) << s->name();
    }
    EXPECT_FALSE(grid1.empty()) << s->name();
  }
}

TEST(DefenseRegistryTest, ParamSpaceEmptyWhenNothingToDefend) {
  // A single frequency group: no merge thresholds exist. The k ladder
  // still offers rungs (they are identity plans), but never beyond n.
  auto table = FrequencyTable::FromSupports({5, 5, 5}, 50);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(
      DefenseScheme::Find("group_merge")->ParamSpace(*table).empty());
  for (const DefenseParams& p :
       DefenseScheme::Find("k_anonymity")->ParamSpace(*table)) {
    EXPECT_LE(p.GetOr("k", 0.0), 3.0);
  }
}

TEST(DefenseRegistryTest, UnknownParameterRejected) {
  FrequencyTable table = Fixture();
  for (const DefenseScheme* s : DefenseScheme::All()) {
    DefenseParams p;
    p.Set("bogus", 1.0);
    auto plan = s->Plan(table, p);
    ASSERT_FALSE(plan.ok()) << s->name();
    EXPECT_TRUE(plan.status().IsInvalidArgument()) << s->name();
    EXPECT_NE(plan.status().message().find("bogus"), std::string::npos);
  }
}

// ----------------------------------------------------------- Plan behavior

TEST(DefensePlanBehaviorTest, GroupMergeGapPlan) {
  FrequencyTable table = Fixture();
  DefenseParams p;
  p.Set("gap", 0.02);
  auto plan = DefenseScheme::Find("group_merge")->Plan(table, p);
  ASSERT_TRUE(plan.ok());

  EXPECT_EQ(plan->scheme, "group_merge");
  // The tight run {10, 11, 12} merges to its weighted median.
  EXPECT_EQ(plan->new_supports, (std::vector<SupportCount>{11, 11, 11, 40}));
  EXPECT_EQ(plan->groups_before, 4u);
  EXPECT_EQ(plan->groups_after, 2u);
  EXPECT_EQ(plan->l1_distortion, 2u);
  EXPECT_EQ(plan->merged_gap, 0.02);
}

TEST(DefensePlanBehaviorTest, GroupMergeTolerancePlanPassesCriterion) {
  FrequencyTable table = Fixture();
  DefenseParams p;
  p.Set("tolerance", 0.3);
  p.Set("point_valued", 1.0);
  auto plan = DefenseScheme::Find("group_merge")->Plan(table, p);
  ASSERT_TRUE(plan.ok());

  // Point-valued criterion: g <= tau * n groups after the merge.
  auto merged = FrequencyTable::FromSupports(plan->new_supports,
                                             table.num_transactions());
  ASSERT_TRUE(merged.ok());
  EXPECT_LE(FrequencyGroups::Build(*merged).num_groups(),
            static_cast<size_t>(0.3 * static_cast<double>(
                                          table.num_items())) +
                1);
}

TEST(DefensePlanBehaviorTest, GroupMergeRequiresExactlyOneCriterion) {
  FrequencyTable table = Fixture();
  const DefenseScheme* s = DefenseScheme::Find("group_merge");
  DefenseParams none;
  EXPECT_TRUE(s->Plan(table, none).status().IsInvalidArgument());
  DefenseParams both;
  both.Set("gap", 0.02);
  both.Set("tolerance", 0.1);
  EXPECT_TRUE(s->Plan(table, both).status().IsInvalidArgument());
}

TEST(DefensePlanBehaviorTest, KAnonymityPlanReachesK) {
  FrequencyTable table = Fixture();
  DefenseParams p;
  p.Set("k", 3.0);
  auto plan = DefenseScheme::Find("k_anonymity")->Plan(table, p);
  ASSERT_TRUE(plan.ok());

  EXPECT_EQ(plan->scheme, "k_anonymity");
  auto merged = FrequencyTable::FromSupports(plan->new_supports,
                                             table.num_transactions());
  ASSERT_TRUE(merged.ok());
  EXPECT_GE(FrequencyKAnonymity(FrequencyGroups::Build(*merged)), 3u);
}

TEST(DefensePlanBehaviorTest, KAnonymityValidation) {
  FrequencyTable table = Fixture();
  const DefenseScheme* s = DefenseScheme::Find("k_anonymity");
  DefenseParams zero;
  zero.Set("k", 0.0);
  EXPECT_TRUE(s->Plan(table, zero).status().IsInvalidArgument());
  DefenseParams huge;
  huge.Set("k", 99.0);
  EXPECT_TRUE(s->Plan(table, huge).status().IsInvalidArgument());
  DefenseParams missing;  // missing "k"
  EXPECT_TRUE(s->Plan(table, missing).status().IsInvalidArgument());
}

TEST(DefensePlanBehaviorTest, SuppressionPlanAccounting) {
  FrequencyTable table = Fixture();
  DefenseParams p;
  p.Set("tolerance", 0.3);
  auto plan = DefenseScheme::Find("suppression")->Plan(table, p);
  ASSERT_TRUE(plan.ok());

  EXPECT_EQ(plan->scheme, "suppression");
  EXPECT_EQ(plan->items_before, 4u);
  EXPECT_EQ(plan->items_after, 4u - plan->suppressed.size());
  EXPECT_FALSE(plan->suppressed.empty());
  // The remaining OE fits the budget tau * n over the ORIGINAL domain.
  EXPECT_LE(plan->oe_after, 0.3 * 4.0);
  EXPECT_GT(plan->oe_before, plan->oe_after);
  EXPECT_GT(plan->occurrence_loss, 0.0);
}

TEST(DefenseWrapperTest, SuppressionSurfacesResidualRanking) {
  // The residual SubdomainRisk ranking used to be computed and dropped;
  // the plan now carries it: every surviving item, ranked, none of the
  // suppressed ones.
  FrequencyTable table = Fixture();
  DefenseParams p;
  p.Set("tolerance", 0.3);
  auto plan = DefenseScheme::Find("suppression")->Plan(table, p);
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->suppressed.empty());
  EXPECT_EQ(plan->residual_ranked.size(), plan->items_after);
  for (ItemId dropped : plan->suppressed) {
    for (ItemId kept : plan->residual_ranked) {
      EXPECT_NE(kept, dropped);
    }
  }
}

// ------------------------------------------------------------------ Apply

Database ApplyFixtureDb() {
  auto db = Database::FromTransactions(
      4, {{0, 1, 2}, {0, 1}, {1, 2, 3}, {0, 2, 3}, {1, 3}, {0, 1, 3},
          {2, 3}, {0, 3}, {1, 2}, {0, 1, 2, 3}});
  EXPECT_TRUE(db.ok());
  return *db;
}

TEST(DefenseApplyTest, ApplyIsDeterministicPerSeed) {
  Database db = ApplyFixtureDb();
  auto table = FrequencyTable::Compute(db);
  ASSERT_TRUE(table.ok());
  const DefenseScheme* s = DefenseScheme::Find("k_anonymity");
  DefenseParams p;
  p.Set("k", 2.0);
  auto plan = s->Plan(*table, p);
  ASSERT_TRUE(plan.ok());

  Rng rng_a(2027), rng_b(2027), rng_c(99);
  auto a = s->Apply(db, *plan, &rng_a);
  auto b = s->Apply(db, *plan, &rng_b);
  auto c = s->Apply(db, *plan, &rng_c);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->transactions(), b->transactions());
  // Different seed may pick different transactions, but the realized
  // supports match the plan either way.
  auto ta = FrequencyTable::Compute(*a);
  auto tc = FrequencyTable::Compute(*c);
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(ta->supports(), plan->new_supports);
  EXPECT_EQ(tc->supports(), plan->new_supports);
}

TEST(DefenseApplyTest, ApplyRejectsForeignPlan) {
  Database db = ApplyFixtureDb();
  auto table = FrequencyTable::Compute(db);
  ASSERT_TRUE(table.ok());
  DefenseParams p;
  p.Set("k", 2.0);
  auto plan = DefenseScheme::Find("k_anonymity")->Plan(*table, p);
  ASSERT_TRUE(plan.ok());
  Rng rng(1);
  auto applied = DefenseScheme::Find("suppression")->Apply(db, *plan, &rng);
  ASSERT_FALSE(applied.ok());
  EXPECT_TRUE(applied.status().IsInvalidArgument());
  EXPECT_NE(applied.status().message().find("k_anonymity"),
            std::string::npos);
}

TEST(DefenseApplyTest, SuppressionApplyDropsItems) {
  // Walk the scheme's own tolerance ladder and take the first feasible
  // plan that actually suppresses — robust to ladder retuning.
  auto db_r = Database::FromTransactions(
      5, {{0, 1, 2}, {0, 1}, {1, 2, 3}, {0, 2, 3}, {1, 3}, {0, 1, 3},
          {2, 3}, {0, 3}, {1, 2}, {0, 1, 2, 3}, {1, 2, 3, 4}, {0, 4}});
  ASSERT_TRUE(db_r.ok());
  Database db = *db_r;
  auto table = FrequencyTable::Compute(db);
  ASSERT_TRUE(table.ok());
  const DefenseScheme* s = DefenseScheme::Find("suppression");
  defense::DefensePlan plan_value;
  bool found = false;
  for (const DefenseParams& p : s->ParamSpace(*table)) {
    auto plan = s->Plan(*table, p);
    if (plan.ok() && !plan->suppressed.empty()) {
      plan_value = *plan;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  const defense::DefensePlan* plan = &plan_value;
  Rng rng(1);
  auto applied = DefenseScheme::Find("suppression")->Apply(db, *plan, &rng);
  ASSERT_TRUE(applied.ok());
  auto after = FrequencyTable::Compute(*applied);
  ASSERT_TRUE(after.ok());
  for (ItemId dropped : plan->suppressed) {
    EXPECT_EQ(after->supports()[dropped], 0u);
  }
}

// ----------------------------------------------------------- Plan ToJson

TEST(DefensePlanTest, ToJsonIsDeterministic) {
  FrequencyTable table = Fixture();
  DefenseParams p;
  p.Set("gap", 0.02);
  auto plan = DefenseScheme::Find("group_merge")->Plan(table, p);
  ASSERT_TRUE(plan.ok());
  std::string a = plan->ToJson().Dump();
  std::string b = plan->ToJson().Dump();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"scheme\":\"group_merge\""), std::string::npos);
  EXPECT_NE(a.find("\"params\":{\"gap\":"), std::string::npos);
}

}  // namespace
}  // namespace anonsafe
