#include <gtest/gtest.h>

#include "belief/builders.h"
#include "data/frequency.h"
#include "graph/bipartite_graph.h"
#include "graph/consistency.h"
#include "graph/hopcroft_karp.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

Result<FrequencyGroups> GroupsFromSupports(std::vector<SupportCount> s,
                                           size_t m) {
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyTable t,
                            FrequencyTable::FromSupports(std::move(s), m));
  return FrequencyGroups::Build(t);
}

// The staircase of Figure 6(a): items 1..4 with outdegrees 1,2,3,4 over
// four singleton frequency groups. Item i's interval covers groups 0..i.
struct Staircase {
  FrequencyGroups groups;
  BeliefFunction belief;
};

Result<Staircase> MakeStaircase() {
  ANONSAFE_ASSIGN_OR_RETURN(FrequencyGroups groups,
                            GroupsFromSupports({10, 20, 30, 40}, 100));
  // Frequencies 0.1 .. 0.4; item i covers frequencies up to 0.1*(i+1).
  ANONSAFE_ASSIGN_OR_RETURN(
      BeliefFunction belief,
      BeliefFunction::Create({{0.05, 0.15},
                              {0.05, 0.25},
                              {0.05, 0.35},
                              {0.05, 0.45}}));
  return Staircase{std::move(groups), std::move(belief)};
}

// ---------------------------------------------------------- BipartiteGraph

TEST(BipartiteGraphTest, BuildFromBeliefMatchesStabbing) {
  auto st = MakeStaircase();
  ASSERT_TRUE(st.ok());
  auto g = BipartiteGraph::Build(st->groups, st->belief);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_items(), 4u);
  EXPECT_EQ(g->num_edges(), 10u);  // 1+2+3+4
  EXPECT_EQ(g->item_outdegree(0), 1u);
  EXPECT_EQ(g->item_outdegree(3), 4u);
  EXPECT_TRUE(g->HasEdge(0, 3));   // anon 0 (f=.1) consistent with item 3
  EXPECT_FALSE(g->HasEdge(3, 0));  // anon 3 (f=.4) not with item 0
  EXPECT_EQ(g->anon_degree(0), 4u);
  EXPECT_EQ(g->anon_degree(3), 1u);
}

TEST(BipartiteGraphTest, IgnorantBeliefIsCompleteBipartite) {
  auto groups = GroupsFromSupports({5, 5, 7}, 10);
  ASSERT_TRUE(groups.ok());
  BeliefFunction beta = MakeIgnorantBelief(3);
  auto g = BipartiteGraph::Build(*groups, beta);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 9u);
}

TEST(BipartiteGraphTest, EdgeBudgetEnforced) {
  auto groups = GroupsFromSupports({5, 5, 7}, 10);
  ASSERT_TRUE(groups.ok());
  BeliefFunction beta = MakeIgnorantBelief(3);
  EXPECT_TRUE(BipartiteGraph::Build(*groups, beta, /*max_edges=*/8)
                  .status().IsOutOfRange());
}

TEST(BipartiteGraphTest, DomainMismatchFails) {
  auto groups = GroupsFromSupports({5, 5}, 10);
  ASSERT_TRUE(groups.ok());
  BeliefFunction beta = MakeIgnorantBelief(3);
  EXPECT_TRUE(BipartiteGraph::Build(*groups, beta)
                  .status().IsInvalidArgument());
}

TEST(BipartiteGraphTest, FromAdjacencyValidatesAndDeduplicates) {
  auto g = BipartiteGraph::FromAdjacency(2, {{0, 0, 1}, {1}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_TRUE(BipartiteGraph::FromAdjacency(2, {{0, 5}, {}})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(BipartiteGraph::FromAdjacency(2, {{0}})
                  .status().IsInvalidArgument());
}

TEST(BipartiteGraphTest, RowMasks) {
  auto g = BipartiteGraph::FromAdjacency(3, {{0, 2}, {1}, {0, 1, 2}});
  ASSERT_TRUE(g.ok());
  auto rows = g->ToRowMasks();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0], 0b101u);
  EXPECT_EQ((*rows)[1], 0b010u);
  EXPECT_EQ((*rows)[2], 0b111u);
}

// ------------------------------------------------------------ HopcroftKarp

TEST(HopcroftKarpTest, PerfectMatchingOnCompleteGraph) {
  auto g = BipartiteGraph::FromAdjacency(
      4, {{0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}, {0, 1, 2, 3}});
  ASSERT_TRUE(g.ok());
  Matching m = HopcroftKarp(*g);
  EXPECT_TRUE(m.IsPerfect());
  EXPECT_TRUE(IsValidMatching(*g, m));
}

TEST(HopcroftKarpTest, MaximumOnDeficientGraph) {
  // Anon 0 and 1 both only like item 0: maximum matching has size 2.
  auto g = BipartiteGraph::FromAdjacency(3, {{0}, {0}, {1, 2}});
  ASSERT_TRUE(g.ok());
  Matching m = HopcroftKarp(*g);
  EXPECT_EQ(m.size, 2u);
  EXPECT_FALSE(m.IsPerfect());
  EXPECT_TRUE(IsValidMatching(*g, m));
}

TEST(HopcroftKarpTest, EmptyGraphNoMatching) {
  auto g = BipartiteGraph::FromAdjacency(2, {{}, {}});
  ASSERT_TRUE(g.ok());
  Matching m = HopcroftKarp(*g);
  EXPECT_EQ(m.size, 0u);
  EXPECT_TRUE(IsValidMatching(*g, m));
}

TEST(HopcroftKarpTest, AugmentingPathCase) {
  // Requires augmentation: greedy 0->a fails unless flipped.
  auto g = BipartiteGraph::FromAdjacency(3, {{0, 1}, {0}, {1, 2}});
  ASSERT_TRUE(g.ok());
  Matching m = HopcroftKarp(*g);
  EXPECT_TRUE(m.IsPerfect());
  EXPECT_TRUE(IsValidMatching(*g, m));
  EXPECT_EQ(m.item_of_anon[1], 0u);
}

TEST(HopcroftKarpTest, RandomGraphsMatchingValid) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 1 + rng.UniformUint64(20);
    std::vector<std::vector<ItemId>> adj(n);
    for (size_t a = 0; a < n; ++a) {
      for (size_t x = 0; x < n; ++x) {
        if (rng.Bernoulli(0.3)) adj[a].push_back(static_cast<ItemId>(x));
      }
    }
    auto g = BipartiteGraph::FromAdjacency(n, std::move(adj));
    ASSERT_TRUE(g.ok());
    Matching m = HopcroftKarp(*g);
    EXPECT_TRUE(IsValidMatching(*g, m));
    EXPECT_LE(m.size, n);
  }
}

// ---------------------------------------------------- ConsistencyStructure

TEST(ConsistencyTest, OutdegreesMatchExplicitGraph) {
  auto st = MakeStaircase();
  ASSERT_TRUE(st.ok());
  auto cs = ConsistencyStructure::Build(st->groups, st->belief);
  ASSERT_TRUE(cs.ok());
  auto g = BipartiteGraph::Build(st->groups, st->belief);
  ASSERT_TRUE(g.ok());
  for (ItemId x = 0; x < 4; ++x) {
    EXPECT_EQ(cs->outdegree(x), g->item_outdegree(x)) << "item " << x;
  }
  EXPECT_FALSE(cs->contradiction());
  EXPECT_EQ(cs->num_dead_items(), 0u);
}

TEST(ConsistencyTest, Figure6aPropagationForcesEverything) {
  // The paper's Figure 6(a): propagation cascades 1', 2', 3', 4' onto
  // items 1..4; the number of cracks is 4, not the naive 25/12.
  auto st = MakeStaircase();
  ASSERT_TRUE(st.ok());
  auto cs = ConsistencyStructure::Build(st->groups, st->belief);
  ASSERT_TRUE(cs.ok());
  auto stats = cs->PropagateDegreeOne();
  EXPECT_FALSE(stats.contradiction);
  EXPECT_EQ(stats.forced_pairs, 4u);
  for (ItemId x = 0; x < 4; ++x) {
    EXPECT_TRUE(cs->item_forced(x));
    EXPECT_EQ(cs->outdegree(x), 1u);
  }
}

TEST(ConsistencyTest, PropagationIsIdempotent) {
  auto st = MakeStaircase();
  ASSERT_TRUE(st.ok());
  auto cs = ConsistencyStructure::Build(st->groups, st->belief);
  ASSERT_TRUE(cs.ok());
  auto first = cs->PropagateDegreeOne();
  auto second = cs->PropagateDegreeOne();
  EXPECT_EQ(first.forced_pairs, 4u);
  EXPECT_EQ(second.forced_pairs, 0u);
}

TEST(ConsistencyTest, Figure6bTightPairsNotForced) {
  // Figure 6(b): {1',2'} must map to {1,2} and {3',4'} to {3,4}, but no
  // single vertex has degree 1, so degree-1 propagation (deliberately)
  // does nothing — the O-estimate keeps counting the irrelevant edge.
  auto groups = GroupsFromSupports({10, 20, 30, 40}, 100);
  ASSERT_TRUE(groups.ok());
  auto belief = BeliefFunction::Create({{0.05, 0.25},
                                        {0.05, 0.25},
                                        {0.15, 0.45},
                                        {0.25, 0.45}});
  ASSERT_TRUE(belief.ok());
  auto cs = ConsistencyStructure::Build(*groups, *belief);
  ASSERT_TRUE(cs.ok());
  auto stats = cs->PropagateDegreeOne();
  EXPECT_EQ(stats.forced_pairs, 0u);
  EXPECT_EQ(cs->outdegree(2), 3u);  // the "irrelevant" edge still counted
}

TEST(ConsistencyTest, DeadItemsDetected) {
  auto groups = GroupsFromSupports({10, 20}, 100);
  ASSERT_TRUE(groups.ok());
  // Item 1's interval stabs no group.
  auto belief = BeliefFunction::Create({{0.05, 0.25}, {0.5, 0.6}});
  ASSERT_TRUE(belief.ok());
  auto cs = ConsistencyStructure::Build(*groups, *belief);
  ASSERT_TRUE(cs.ok());
  EXPECT_TRUE(cs->contradiction());
  EXPECT_EQ(cs->num_dead_items(), 1u);
  EXPECT_TRUE(cs->item_dead(1));
  EXPECT_EQ(cs->outdegree(1), 0u);
  EXPECT_EQ(cs->outdegree(0), 2u);
}

TEST(ConsistencyTest, HallViolationFlagged) {
  // Two anon items in one group but only one item covers it.
  auto groups = GroupsFromSupports({10, 10, 30}, 100);
  ASSERT_TRUE(groups.ok());
  auto belief = BeliefFunction::Create(
      {{0.05, 0.15}, {0.25, 0.35}, {0.25, 0.35}});
  ASSERT_TRUE(belief.ok());
  auto cs = ConsistencyStructure::Build(*groups, *belief);
  ASSERT_TRUE(cs.ok());
  auto stats = cs->PropagateDegreeOne();
  EXPECT_TRUE(stats.contradiction);
}

TEST(ConsistencyTest, BeliefGroupsGroupIdenticalRanges) {
  auto groups = GroupsFromSupports({10, 20, 30}, 100);
  ASSERT_TRUE(groups.ok());
  auto belief = BeliefFunction::Create({{0.05, 0.25},
                                        {0.05, 0.25},
                                        {0.15, 0.35}});
  ASSERT_TRUE(belief.ok());
  auto cs = ConsistencyStructure::Build(*groups, *belief);
  ASSERT_TRUE(cs.ok());
  auto bg = cs->BeliefGroups();
  ASSERT_EQ(bg.size(), 2u);
  EXPECT_EQ(bg[0], (std::vector<ItemId>{0, 1}));
  EXPECT_EQ(bg[1], (std::vector<ItemId>{2}));
}

TEST(ConsistencyTest, BigMartGroupingFromPaper) {
  // Belief function h of Figure 2 over the BigMart frequencies: item 0
  // covers everything, items 1 and 3 cover {0.4..0.5-ish}, item 4 covers
  // only 0.3..0.4, items 2 and 5 are points at 0.5.
  auto groups = GroupsFromSupports({5, 4, 5, 5, 3, 5}, 10);
  ASSERT_TRUE(groups.ok());
  auto h = BeliefFunction::Create({{0.0, 1.0},
                                   {0.4, 0.5},
                                   {0.5, 0.5},
                                   {0.4, 0.6},
                                   {0.1, 0.4},
                                   {0.5, 0.5}});
  ASSERT_TRUE(h.ok());
  auto cs = ConsistencyStructure::Build(*groups, *h);
  ASSERT_TRUE(cs.ok());
  // Outdegrees: item0: all 6; item1: {0.4,0.5} -> 1+4=5; item2: 4;
  // item3: 5; item4: {0.3,0.4} -> 1+1=2; item5: 4.
  EXPECT_EQ(cs->outdegree(0), 6u);
  EXPECT_EQ(cs->outdegree(1), 5u);
  EXPECT_EQ(cs->outdegree(2), 4u);
  EXPECT_EQ(cs->outdegree(3), 5u);
  EXPECT_EQ(cs->outdegree(4), 2u);
  EXPECT_EQ(cs->outdegree(5), 4u);
  // Items 1 and 3 share a belief group despite different intervals —
  // the paper's observation about Figure 3(b).
  auto bg = cs->BeliefGroups();
  bool found_13 = false;
  for (const auto& members : bg) {
    if (members == std::vector<ItemId>{1, 3}) found_13 = true;
  }
  EXPECT_TRUE(found_13);
}

}  // namespace
}  // namespace anonsafe
