// Compile-level check of the umbrella header plus a miniature end-to-end
// flow touching one symbol from every exported module, so an include or
// link regression in any public header breaks this test first.

#include "anonsafe.h"

// The umbrella is the public surface and only the public surface:
// implementation machinery must not ride in transitively.
#ifdef ANONSAFE_CORE_ALPHA_SWEEP_H_
#error "anonsafe.h leaks core/alpha_sweep.h (recipe internals)"
#endif
#ifdef ANONSAFE_EXEC_SCRATCH_H_
#error "anonsafe.h leaks exec/scratch.h (scratch-pool internals)"
#endif

#include <gtest/gtest.h>

#include <sstream>

namespace anonsafe {
namespace {

TEST(UmbrellaTest, WholeApiFlows) {
  Rng rng(1);

  // datagen + data
  auto profile = FrequencyProfile::Create(60, {{5, 3}, {20, 2}, {40, 1}});
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());
  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);

  // anonymize
  Anonymizer mapping = Anonymizer::Random(db->num_items(), &rng);
  auto released = mapping.AnonymizeDatabase(*db);
  ASSERT_TRUE(released.ok());

  // mining (+ rules)
  MiningOptions mining;
  mining.min_support = 0.05;
  auto patterns = MineEclat(*db, mining);
  ASSERT_TRUE(patterns.ok());
  RuleOptions rule_options;
  rule_options.min_confidence = 0.3;
  auto rules = GenerateRules(*patterns, db->num_transactions(),
                             rule_options);
  ASSERT_TRUE(rules.ok());

  // belief + chain
  auto belief = MakeCompliantIntervalBelief(*table, groups.MedianGap());
  ASSERT_TRUE(belief.ok());
  ChainSpec chain;
  chain.n = {5, 3};
  chain.e = {3, 2};
  chain.s = {3};
  ASSERT_TRUE(ValidateChain(chain).ok());

  // graph stack
  auto graph = BipartiteGraph::Build(groups, *belief);
  ASSERT_TRUE(graph.ok());
  Matching matching = HopcroftKarp(*graph);
  EXPECT_TRUE(matching.IsPerfect());
  auto cover = ComputeMatchingCover(*graph);
  ASSERT_TRUE(cover.ok());
  auto permanent = CountPerfectMatchings(*graph);
  ASSERT_TRUE(permanent.ok());
  EXPECT_GE(*permanent, 1.0);

  // core estimators
  auto oe = ComputeOEstimate(groups, *belief);
  ASSERT_TRUE(oe.ok());
  auto refined = ComputeRefinedOEstimateOnGraph(*graph);
  ASSERT_TRUE(refined.ok());
  auto risk = ComputePerItemRisk(groups, *belief);
  ASSERT_TRUE(risk.ok());
  EXPECT_NEAR(risk->total_expected_cracks, oe->expected_cracks, 1e-9);
  RecipeOptions recipe;
  recipe.tolerance = 0.5;
  auto verdict = AssessRisk(*table, recipe);
  ASSERT_TRUE(verdict.ok());

  // relational
  auto population = GeneratePopulation({{"a", 3}, {"b", 4}}, 6, 0.5, &rng);
  ASSERT_TRUE(population.ok());
  RelationalKnowledge knowledge(6, 2);
  auto relational_graph = knowledge.BuildConsistencyGraph(*population);
  ASSERT_TRUE(relational_graph.ok());

  // powerset
  auto pair_supports = PairSupportMatrix::Compute(*db);
  ASSERT_TRUE(pair_supports.ok());
  PairBeliefFunction pair_belief(db->num_items());
  ASSERT_TRUE(pair_belief.Constrain(0, 1, {0.0, 1.0}).ok());

  // defense
  defense::DefenseParams merge_params;
  merge_params.Set("gap", 0.0);
  auto plan =
      defense::DefenseScheme::Find("group_merge")->Plan(*table, merge_params);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->l1_distortion, 0u);

  // util output
  TablePrinter printer({"k", "v"});
  printer.AddRow({"oe", TablePrinter::Fmt(oe->expected_cracks, 3)});
  EXPECT_FALSE(printer.ToString().empty());

  // json + obs
  json::Value doc = json::Value::Object();
  doc.Set("oe", json::Value(oe->expected_cracks));
  EXPECT_TRUE(json::Value::Parse(doc.Dump()).ok());

  // serve (streams transport keeps this hermetic)
  serve::Server server;
  std::istringstream requests(
      "{\"schema_version\":1,\"verb\":\"metrics\"}\n"
      "{\"schema_version\":1,\"verb\":\"shutdown\"}\n");
  std::ostringstream responses;
  EXPECT_TRUE(serve::ServeStreams(server, requests, responses).ok());
  EXPECT_FALSE(responses.str().empty());

  // obs: the serve session above recorded request metrics.
  EXPECT_FALSE(obs::ExportPrometheus(obs::MetricsRegistry::Global())
                   .empty());
}

}  // namespace
}  // namespace anonsafe
