#include <gtest/gtest.h>

#include <sstream>

#include "data/database.h"
#include "data/fimi_io.h"
#include "data/frequency.h"
#include "data/sampling.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

Database BigMart() {
  // A 6-item example in the spirit of the paper's Figure 1: frequencies
  // 0.5, 0.4, 0.5, 0.5, 0.3, 0.5 over 10 transactions.
  Database db(6);
  auto add = [&](Transaction t) { EXPECT_TRUE(db.AddTransaction(t).ok()); };
  // supports: item0:5 item1:4 item2:5 item3:5 item4:3 item5:5
  add({0, 1, 2});
  add({0, 1, 3, 5});
  add({0, 2, 4});
  add({0, 3, 5});
  add({0, 1, 2, 4});
  add({1, 3, 5});
  add({2, 3, 4});
  add({2, 5});
  add({3, 5});
  add({0});  // placeholder; adjusted below
  return db;
}

// ---------------------------------------------------------------- Database

TEST(DatabaseTest, AddTransactionValidates) {
  Database db(3);
  EXPECT_TRUE(db.AddTransaction({0, 1}).ok());
  EXPECT_TRUE(db.AddTransaction({}).IsInvalidArgument());
  EXPECT_TRUE(db.AddTransaction({0, 3}).IsInvalidArgument());
  EXPECT_EQ(db.num_transactions(), 1u);
}

TEST(DatabaseTest, SortsAndDeduplicates) {
  Database db(5);
  ASSERT_TRUE(db.AddTransaction({4, 2, 2, 0, 4}).ok());
  EXPECT_EQ(db.transaction(0), (Transaction{0, 2, 4}));
}

TEST(DatabaseTest, TotalSizeAndContains) {
  Database db(4);
  ASSERT_TRUE(db.AddTransaction({0, 1}).ok());
  ASSERT_TRUE(db.AddTransaction({1, 2, 3}).ok());
  EXPECT_EQ(db.TotalSize(), 5u);
  EXPECT_TRUE(db.Contains(0, 1));
  EXPECT_FALSE(db.Contains(0, 2));
  EXPECT_TRUE(db.Contains(1, 3));
}

TEST(DatabaseTest, FromTransactionsPropagatesErrors) {
  auto bad = Database::FromTransactions(2, {{0}, {5}});
  EXPECT_FALSE(bad.ok());
  auto good = Database::FromTransactions(2, {{0}, {1, 0}});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->num_transactions(), 2u);
}

TEST(DatabaseTest, DebugStringMentionsCounts) {
  Database db(7);
  ASSERT_TRUE(db.AddTransaction({0, 1, 2}).ok());
  std::string s = db.DebugString();
  EXPECT_NE(s.find("n=7"), std::string::npos);
  EXPECT_NE(s.find("m=1"), std::string::npos);
}

// ---------------------------------------------------------- FrequencyTable

TEST(FrequencyTableTest, CountsSupports) {
  Database db = BigMart();
  auto table = FrequencyTable::Compute(db);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_transactions(), 10u);
  EXPECT_EQ(table->support(0), 6u);  // 5 listed + placeholder {0}
  EXPECT_EQ(table->support(1), 4u);
  EXPECT_EQ(table->support(4), 3u);
  EXPECT_DOUBLE_EQ(table->frequency(1), 0.4);
  EXPECT_DOUBLE_EQ(table->frequency(4), 0.3);
}

TEST(FrequencyTableTest, EmptyDatabaseFails) {
  Database db(3);
  EXPECT_TRUE(FrequencyTable::Compute(db).status().IsInvalidArgument());
}

TEST(FrequencyTableTest, FromSupportsValidates) {
  EXPECT_TRUE(FrequencyTable::FromSupports({1, 2}, 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(FrequencyTable::FromSupports({5}, 4)
                  .status()
                  .IsInvalidArgument());
  auto ok = FrequencyTable::FromSupports({0, 2, 4}, 4);
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok->frequency(2), 1.0);
  EXPECT_DOUBLE_EQ(ok->frequency(0), 0.0);
}

// --------------------------------------------------------- FrequencyGroups

TEST(FrequencyGroupsTest, GroupsByEqualSupport) {
  auto table = FrequencyTable::FromSupports({5, 4, 5, 5, 3, 5}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups fg = FrequencyGroups::Build(*table);
  // Paper Section 3.2: groups {0,2,3,5} (0.5), {1} (0.4), {4} (0.3).
  ASSERT_EQ(fg.num_groups(), 3u);
  EXPECT_EQ(fg.group_support(0), 3u);
  EXPECT_EQ(fg.group_support(1), 4u);
  EXPECT_EQ(fg.group_support(2), 5u);
  EXPECT_EQ(fg.group_items(2), (std::vector<ItemId>{0, 2, 3, 5}));
  EXPECT_EQ(fg.group_of_item(4), 0u);
  EXPECT_EQ(fg.group_of_item(1), 1u);
  EXPECT_EQ(fg.group_of_item(3), 2u);
  EXPECT_EQ(fg.num_singleton_groups(), 2u);
  EXPECT_EQ(fg.group_size(2), 4u);
}

TEST(FrequencyGroupsTest, GapsAndMedian) {
  auto table = FrequencyTable::FromSupports({1, 3, 7, 8}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups fg = FrequencyGroups::Build(*table);
  std::vector<double> gaps = fg.FrequencyGaps();
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_NEAR(gaps[0], 0.2, 1e-12);
  EXPECT_NEAR(gaps[1], 0.4, 1e-12);
  EXPECT_NEAR(gaps[2], 0.1, 1e-12);
  EXPECT_NEAR(fg.MedianGap(), 0.2, 1e-12);
  Summary s = fg.GapSummary();
  EXPECT_NEAR(s.mean, 0.7 / 3.0, 1e-12);
  EXPECT_NEAR(s.min, 0.1, 1e-12);
  EXPECT_NEAR(s.max, 0.4, 1e-12);
}

TEST(FrequencyGroupsTest, SingleGroupHasNoGaps) {
  auto table = FrequencyTable::FromSupports({2, 2, 2}, 4);
  ASSERT_TRUE(table.ok());
  FrequencyGroups fg = FrequencyGroups::Build(*table);
  EXPECT_EQ(fg.num_groups(), 1u);
  EXPECT_TRUE(fg.FrequencyGaps().empty());
  EXPECT_EQ(fg.MedianGap(), 0.0);
}

TEST(FrequencyGroupsTest, RangeItemCountPrefixSums) {
  auto table = FrequencyTable::FromSupports({1, 1, 2, 3, 3, 3}, 4);
  ASSERT_TRUE(table.ok());
  FrequencyGroups fg = FrequencyGroups::Build(*table);
  ASSERT_EQ(fg.num_groups(), 3u);
  EXPECT_EQ(fg.RangeItemCount(0, 0), 2u);
  EXPECT_EQ(fg.RangeItemCount(0, 1), 3u);
  EXPECT_EQ(fg.RangeItemCount(0, 2), 6u);
  EXPECT_EQ(fg.RangeItemCount(1, 2), 4u);
  EXPECT_EQ(fg.RangeItemCount(2, 2), 3u);
}

TEST(FrequencyGroupsTest, StabRangeFindsContiguousGroups) {
  // Frequencies: 0.1, 0.25, 0.5, 0.75 over m=20.
  auto table = FrequencyTable::FromSupports({2, 5, 10, 15}, 20);
  ASSERT_TRUE(table.ok());
  FrequencyGroups fg = FrequencyGroups::Build(*table);
  size_t lo = 99, hi = 99;
  ASSERT_TRUE(fg.StabRange(0.0, 1.0, &lo, &hi));
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 3u);
  ASSERT_TRUE(fg.StabRange(0.2, 0.6, &lo, &hi));
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 2u);
  // Inclusive endpoints.
  ASSERT_TRUE(fg.StabRange(0.25, 0.5, &lo, &hi));
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 2u);
  // Point query.
  ASSERT_TRUE(fg.StabRange(0.5, 0.5, &lo, &hi));
  EXPECT_EQ(lo, 2u);
  EXPECT_EQ(hi, 2u);
  // Falls between groups.
  EXPECT_FALSE(fg.StabRange(0.3, 0.4, &lo, &hi));
  // Entirely below / above.
  EXPECT_FALSE(fg.StabRange(0.0, 0.05, &lo, &hi));
  EXPECT_FALSE(fg.StabRange(0.8, 1.0, &lo, &hi));
  // Inverted interval.
  EXPECT_FALSE(fg.StabRange(0.6, 0.2, &lo, &hi));
}

TEST(FrequencyGroupsTest, FindGroupBySupport) {
  auto table = FrequencyTable::FromSupports({2, 5, 10}, 20);
  ASSERT_TRUE(table.ok());
  FrequencyGroups fg = FrequencyGroups::Build(*table);
  EXPECT_EQ(fg.FindGroupBySupport(5), 1u);
  EXPECT_EQ(fg.FindGroupBySupport(10), 2u);
  EXPECT_EQ(fg.FindGroupBySupport(7), fg.num_groups());
}

// ----------------------------------------------------------------- FIMI IO

TEST(FimiIoTest, RoundTripThroughStreams) {
  Database db(4);
  ASSERT_TRUE(db.AddTransaction({0, 2}).ok());
  ASSERT_TRUE(db.AddTransaction({1, 2, 3}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteFimi(db, out).ok());
  std::istringstream in(out.str());
  auto loaded = ReadFimi(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->database.num_transactions(), 2u);
  EXPECT_EQ(loaded->database.num_items(), 4u);
}

TEST(FimiIoTest, RemapsSparseLabels) {
  std::istringstream in("100 205\n205 999\n");
  auto loaded = ReadFimi(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->database.num_items(), 3u);
  EXPECT_EQ(loaded->labels, (std::vector<int64_t>{100, 205, 999}));
  // Item "205" maps to dense id 1 and appears in both transactions.
  auto table = FrequencyTable::Compute(loaded->database);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->support(1), 2u);
}

TEST(FimiIoTest, SkipsBlankLinesAndDeduplicates) {
  std::istringstream in("1 1 2\n\n\n3\n");
  auto loaded = ReadFimi(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->database.num_transactions(), 2u);
  EXPECT_EQ(loaded->database.transaction(0).size(), 2u);
}

TEST(FimiIoTest, RejectsMalformedInput) {
  std::istringstream bad_token("1 two 3\n");
  EXPECT_TRUE(ReadFimi(bad_token).status().IsInvalidArgument());
  std::istringstream negative("1 -2\n");
  EXPECT_TRUE(ReadFimi(negative).status().IsInvalidArgument());
}

TEST(FimiIoTest, FileRoundTrip) {
  Database db(3);
  ASSERT_TRUE(db.AddTransaction({0, 1, 2}).ok());
  const std::string path = testing::TempDir() + "/anonsafe_fimi_test.dat";
  ASSERT_TRUE(WriteFimiFile(db, path).ok());
  auto loaded = ReadFimiFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->database.num_transactions(), 1u);
  EXPECT_TRUE(ReadFimiFile("/no/such/file").status().IsIOError());
}

TEST(ConcatDatabasesTest, PoolsTransactionsInOrder) {
  Database a(3), b(3);
  ASSERT_TRUE(a.AddTransaction({0, 1}).ok());
  ASSERT_TRUE(b.AddTransaction({2}).ok());
  ASSERT_TRUE(b.AddTransaction({1, 2}).ok());
  auto pooled = ConcatDatabases({&a, &b});
  ASSERT_TRUE(pooled.ok());
  EXPECT_EQ(pooled->num_transactions(), 3u);
  EXPECT_EQ(pooled->transaction(0), (Transaction{0, 1}));
  EXPECT_EQ(pooled->transaction(2), (Transaction{1, 2}));
  // Supports add up across partners.
  auto table = FrequencyTable::Compute(*pooled);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->support(2), 2u);
}

TEST(ConcatDatabasesTest, Validation) {
  Database a(3), c(4);
  ASSERT_TRUE(a.AddTransaction({0}).ok());
  ASSERT_TRUE(c.AddTransaction({0}).ok());
  EXPECT_TRUE(ConcatDatabases({}).status().IsInvalidArgument());
  EXPECT_TRUE(ConcatDatabases({&a, &c}).status().IsInvalidArgument());
}

TEST(FimiIoTest, RandomDatabaseRoundTripsExactly) {
  // Property: write-then-read of any dense-id database reproduces the
  // transactions verbatim (dense ids are written in increasing order of
  // first appearance, which for a dense database is the identity).
  Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t n = 2 + rng.UniformUint64(20);
    Database db(n);
    // Guarantee every item appears, in id order first (identity remap).
    Transaction all(n);
    for (size_t i = 0; i < n; ++i) all[i] = static_cast<ItemId>(i);
    db.AddTransactionUnchecked(all);
    for (int t = 0; t < 30; ++t) {
      size_t size = 1 + rng.UniformUint64(n);
      std::vector<size_t> picks = rng.SampleWithoutReplacement(n, size);
      Transaction txn(picks.begin(), picks.end());
      db.AddTransactionUnchecked(std::move(txn));
    }
    std::ostringstream out;
    ASSERT_TRUE(WriteFimi(db, out).ok());
    std::istringstream in(out.str());
    auto loaded = ReadFimi(in);
    ASSERT_TRUE(loaded.ok());
    ASSERT_EQ(loaded->database.num_transactions(), db.num_transactions());
    for (size_t t = 0; t < db.num_transactions(); ++t) {
      EXPECT_EQ(loaded->database.transaction(t), db.transaction(t));
    }
  }
}

// ---------------------------------------------------------------- Sampling

TEST(SamplingTest, SampleSizeAndDomainPreserved) {
  Rng rng(5);
  Database db(10);
  for (int t = 0; t < 50; ++t) {
    ASSERT_TRUE(db.AddTransaction({static_cast<ItemId>(t % 10)}).ok());
  }
  auto sample = SampleTransactions(db, 20, &rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->num_transactions(), 20u);
  EXPECT_EQ(sample->num_items(), 10u);
}

TEST(SamplingTest, InvalidSizes) {
  Rng rng(5);
  Database db(2);
  ASSERT_TRUE(db.AddTransaction({0}).ok());
  EXPECT_TRUE(SampleTransactions(db, 0, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(SampleTransactions(db, 2, &rng).status().IsInvalidArgument());
}

TEST(SamplingTest, FractionRoundsAndClamps) {
  Rng rng(5);
  Database db(2);
  for (int t = 0; t < 10; ++t) ASSERT_TRUE(db.AddTransaction({0}).ok());
  auto s = SampleFraction(db, 0.35, &rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_transactions(), 4u);  // round(3.5) = 4
  auto tiny = SampleFraction(db, 0.001, &rng);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->num_transactions(), 1u);  // at least one
  EXPECT_TRUE(SampleFraction(db, 0.0, &rng).status().IsInvalidArgument());
  EXPECT_TRUE(SampleFraction(db, 1.5, &rng).status().IsInvalidArgument());
}

TEST(SamplingTest, FullFractionIsWholeDatabase) {
  Rng rng(5);
  Database db(3);
  for (int t = 0; t < 7; ++t) {
    ASSERT_TRUE(db.AddTransaction({static_cast<ItemId>(t % 3)}).ok());
  }
  auto s = SampleFraction(db, 1.0, &rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_transactions(), 7u);
  // Sampling without replacement at 100% preserves supports exactly.
  auto full = FrequencyTable::Compute(db);
  auto samp = FrequencyTable::Compute(*s);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(samp.ok());
  for (ItemId x = 0; x < 3; ++x) {
    EXPECT_EQ(full->support(x), samp->support(x));
  }
}

}  // namespace
}  // namespace anonsafe
