// Deliberate edge-path coverage: each test exercises one code path the
// mainline suites do not reach (guards, degenerate inputs, rendering
// corners), so regressions in rarely-taken branches still fail fast.

#include <gtest/gtest.h>

#include <cstdint>

#include "belief/builders.h"
#include "core/risk_report.h"
#include "data/frequency.h"
#include "datagen/profile.h"
#include "graph/bipartite_graph.h"
#include "graph/consistency.h"
#include "graph/matching_sampler.h"
#include "mining/rules.h"
#include "powerset/support_oracle.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace anonsafe {
namespace {

TEST(TablePrinterEdgeTest, SeparatorsRenderBetweenRows) {
  TablePrinter t({"a"});
  t.AddRow({"x"});
  t.AddSeparator();
  t.AddRow({"y"});
  std::string s = t.ToString();
  // Header sep + mid sep + trailing sep = at least 4 separator lines.
  size_t count = 0, pos = 0;
  while ((pos = s.find("+---", pos)) != std::string::npos) {
    ++count;
    pos += 4;
  }
  EXPECT_GE(count, 4u);
  EXPECT_EQ(t.num_rows(), 3u);  // separator counts as a row slot
}

TEST(BipartiteGraphEdgeTest, RowMasksRejectWideGraphs) {
  std::vector<std::vector<ItemId>> adj(65);
  for (size_t a = 0; a < 65; ++a) adj[a] = {static_cast<ItemId>(a)};
  auto g = BipartiteGraph::FromAdjacency(65, std::move(adj));
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->ToRowMasks().status().IsOutOfRange());
}

TEST(ConsistencyEdgeTest, BeliefGroupsIncludeDeadBucket) {
  auto table = FrequencyTable::FromSupports({10, 20, 30}, 100);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  // Items 0 and 1 share a range; item 2 stabs nothing (dead).
  auto belief = BeliefFunction::Create(
      {{0.05, 0.35}, {0.05, 0.35}, {0.5, 0.6}});
  ASSERT_TRUE(belief.ok());
  auto cs = ConsistencyStructure::Build(groups, *belief);
  ASSERT_TRUE(cs.ok());
  auto bg = cs->BeliefGroups();
  ASSERT_EQ(bg.size(), 2u);
  EXPECT_EQ(bg[0], (std::vector<ItemId>{0, 1}));
  EXPECT_EQ(bg[1], (std::vector<ItemId>{2}));  // the dead bucket, last
}

TEST(ProfileEdgeTest, ScalingUpPreservesStructure) {
  auto p = FrequencyProfile::Create(100, {{3, 2}, {40, 1}, {90, 3}});
  ASSERT_TRUE(p.ok());
  auto up = p->Scaled(10.0);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up->num_transactions(), 1000u);
  EXPECT_EQ(up->num_groups(), 3u);
  EXPECT_EQ(up->groups()[0].support, 30u);
  EXPECT_EQ(up->groups()[2].support, 900u);
}

TEST(ResultEdgeTest, MoveAndMutateThroughAccessors) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(r.ok());
  r->push_back(4);                    // operator-> mutation
  (*r)[0] = 9;                        // operator* mutation
  EXPECT_EQ(r.value().size(), 4u);
  std::vector<int> moved = std::move(r).value();  // rvalue value()
  EXPECT_EQ(moved, (std::vector<int>{9, 2, 3, 4}));
}

TEST(RngEdgeTest, UniformIntFullSpan) {
  Rng rng(1);
  // lo == INT64_MIN, hi == INT64_MAX exercises the span-overflow branch.
  int64_t v = rng.UniformInt(INT64_MIN, INT64_MAX);
  (void)v;  // any value is valid; the test is that it terminates
  // Degenerate single-point range.
  EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(SamplerEdgeTest, EffectiveBurnInScaling) {
  SamplerOptions opt;
  opt.burn_in_sweeps = 300;
  opt.burn_in_scale = 2.0;
  EXPECT_EQ(opt.EffectiveBurnIn(10), 300u);     // minimum dominates
  EXPECT_EQ(opt.EffectiveBurnIn(1000), 2000u);  // scaling dominates
  opt.burn_in_scale = 0.0;
  EXPECT_EQ(opt.EffectiveBurnIn(1000000), 300u);  // scaling disabled
}

TEST(RulesEdgeTest, OversizedItemsetsSkipped) {
  // A frequent itemset above max_itemset_size produces no rules even
  // though its subsets are present.
  std::vector<FrequentItemset> frequent = {
      {{0}, 5}, {{1}, 5}, {{2}, 5},
      {{0, 1}, 4}, {{0, 2}, 4}, {{1, 2}, 4},
      {{0, 1, 2}, 3}};
  RuleOptions opt;
  opt.min_confidence = 0.01;
  opt.max_itemset_size = 2;
  auto rules = GenerateRules(frequent, 10, opt);
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : *rules) {
    EXPECT_LE(rule.antecedent.size() + rule.consequent.size(), 2u);
  }
}

TEST(RiskReportEdgeTest, BreachingSampleFractionWarning) {
  // A dataset risky enough for an alpha bound whose small samples already
  // reach alpha_max: the report must carry the DO-NOT-DISCLOSE warning.
  Rng rng(31);
  std::vector<ProfileGroup> pg;
  for (size_t i = 0; i < 30; ++i) {
    pg.push_back({static_cast<SupportCount>(40 + 29 * i), 1});
  }
  auto profile = FrequencyProfile::Create(1000, pg);
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());

  RiskReportOptions options;
  options.recipe.tolerance = 0.05;
  options.similarity.sample_fractions = {0.5, 0.9};
  options.similarity.samples_per_fraction = 3;
  auto report = BuildRiskReport(*db, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->recipe.decision, RecipeDecision::kAlphaBound);
  if (report->breaching_sample_fraction > 0.0) {
    EXPECT_NE(report->ToText().find("DO NOT DISCLOSE"), std::string::npos);
  } else {
    EXPECT_NE(report->ToText().find("better-than-similar"),
              std::string::npos);
  }
}

TEST(SupportOracleEdgeTest, LargeTransactionCountWordBoundaries) {
  // 130 transactions spans three 64-bit words; supports must be exact at
  // the word boundaries (transactions 63, 64, 127, 128).
  Database db(2);
  for (int t = 0; t < 130; ++t) {
    Transaction txn;
    txn.push_back(0);
    if (t == 63 || t == 64 || t == 127 || t == 128) txn.push_back(1);
    ASSERT_TRUE(db.AddTransaction(txn).ok());
  }
  auto oracle = SupportOracle::Build(db);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(oracle->Support({0}), 130u);
  EXPECT_EQ(oracle->Support({1}), 4u);
  EXPECT_EQ(oracle->Support({0, 1}), 4u);
}

TEST(BuilderEdgeTest, ZeroWidthIntervalBeliefEqualsPointValued) {
  auto table = FrequencyTable::FromSupports({2, 5, 8}, 10);
  ASSERT_TRUE(table.ok());
  auto interval = MakeCompliantIntervalBelief(*table, 0.0);
  auto point = MakePointValuedBelief(*table);
  ASSERT_TRUE(interval.ok());
  ASSERT_TRUE(point.ok());
  for (ItemId x = 0; x < 3; ++x) {
    EXPECT_EQ(interval->interval(x), point->interval(x));
  }
  EXPECT_TRUE(interval->IsPointValued());
}

TEST(FrequencyEdgeTest, ZeroSupportItemsFormLowestGroup) {
  auto table = FrequencyTable::FromSupports({0, 0, 5}, 10);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  ASSERT_EQ(groups.num_groups(), 2u);
  EXPECT_EQ(groups.group_support(0), 0u);
  EXPECT_EQ(groups.group_size(0), 2u);
  EXPECT_DOUBLE_EQ(groups.group_frequency(0), 0.0);
  size_t lo = 9, hi = 9;
  ASSERT_TRUE(groups.StabRange(0.0, 0.0, &lo, &hi));
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 0u);
}

}  // namespace
}  // namespace anonsafe
