#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "data/database.h"
#include "defense/optimizer.h"
#include "defense/scheme.h"
#include "exec/exec.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

using defense::CandidateScore;
using defense::DefenseFrontier;
using defense::DefenseScheme;
using defense::OptimizerOptions;
using defense::RecommendDefense;

// The fixed 12-transaction / 5-item release used by check_defense.sh:
// small enough for exact estimation, rich enough for a non-trivial
// frontier (three frequency groups, one rare item).
Database FixtureDb() {
  auto db = Database::FromTransactions(
      5, {{0, 1, 2}, {0, 1}, {1, 2, 3}, {0, 2, 3}, {1, 3}, {0, 1, 3},
          {2, 3}, {0, 3}, {1, 2}, {0, 1, 2, 3}, {1, 2, 3, 4}, {0, 4}});
  EXPECT_TRUE(db.ok());
  return *db;
}

Result<DefenseFrontier> Sweep(const Database& db, size_t threads,
                              uint64_t seed = 7) {
  exec::ExecOptions eo;
  eo.seed = seed;
  eo.threads = threads;
  exec::ExecContext ctx(eo);
  return RecommendDefense(db, OptimizerOptions{}, &ctx);
}

TEST(OptimizerTest, SweepCoversEveryRegisteredScheme) {
  Database db = FixtureDb();
  auto frontier = Sweep(db, 1);
  ASSERT_TRUE(frontier.ok());
  EXPECT_EQ(frontier->num_items, 5u);
  EXPECT_EQ(frontier->num_transactions, 12u);
  EXPECT_EQ(frontier->seed, 7u);
  EXPECT_GT(frontier->baseline_cracks, 0.0);
  EXPECT_GT(frontier->baseline_groups, 0u);

  // Every registered scheme contributed its whole grid, scheme-major,
  // indices dense in enumeration order.
  size_t expected = 0;
  auto table = FrequencyTable::Compute(db);
  ASSERT_TRUE(table.ok());
  for (const DefenseScheme* s : DefenseScheme::All()) {
    expected += s->ParamSpace(*table).size();
  }
  ASSERT_EQ(frontier->candidates.size(), expected);
  for (size_t i = 0; i < frontier->candidates.size(); ++i) {
    EXPECT_EQ(frontier->candidates[i].index, i);
    EXPECT_NE(DefenseScheme::Find(frontier->candidates[i].scheme), nullptr);
  }
  EXPECT_FALSE(frontier->frontier.empty());
}

TEST(OptimizerTest, FrontierIsBitIdenticalAcrossThreadCounts) {
  Database db = FixtureDb();
  auto t1 = Sweep(db, 1);
  auto t4 = Sweep(db, 4);
  auto t8 = Sweep(db, 8);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t4.ok());
  ASSERT_TRUE(t8.ok());
  const std::string doc1 = t1->ToJson().Dump();
  EXPECT_EQ(doc1, t4->ToJson().Dump());
  EXPECT_EQ(doc1, t8->ToJson().Dump());
}

TEST(OptimizerTest, SeedChangesAreConfinedToSamplerStreams) {
  // The fixture is exact everywhere, so a different master seed must
  // still produce the identical frontier document apart from the
  // recorded seed itself.
  Database db = FixtureDb();
  auto a = Sweep(db, 2, 7);
  auto b = Sweep(db, 2, 1234);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->frontier, b->frontier);
  ASSERT_EQ(a->candidates.size(), b->candidates.size());
  for (size_t i = 0; i < a->candidates.size(); ++i) {
    EXPECT_EQ(a->candidates[i].expected_cracks,
              b->candidates[i].expected_cracks);
    EXPECT_EQ(a->candidates[i].utility.total_loss,
              b->candidates[i].utility.total_loss);
  }
}

TEST(OptimizerTest, FrontierIsExactlyTheNonDominatedSet) {
  Database db = FixtureDb();
  auto frontier = Sweep(db, 1);
  ASSERT_TRUE(frontier.ok());
  const auto& cs = frontier->candidates;

  // Recompute dominance from scratch and compare against the sweep.
  std::vector<size_t> expect;
  for (size_t i = 0; i < cs.size(); ++i) {
    if (!cs[i].feasible) continue;
    bool dominated = false;
    for (size_t j = 0; j < cs.size() && !dominated; ++j) {
      if (i == j || !cs[j].feasible) continue;
      const bool no_worse =
          cs[j].expected_cracks <= cs[i].expected_cracks &&
          cs[j].utility.total_loss <= cs[i].utility.total_loss;
      const bool better =
          cs[j].expected_cracks < cs[i].expected_cracks ||
          cs[j].utility.total_loss < cs[i].utility.total_loss;
      dominated = no_worse && better;
    }
    if (!dominated) expect.push_back(i);
  }
  std::sort(expect.begin(), expect.end(), [&](size_t a, size_t b) {
    if (cs[a].expected_cracks != cs[b].expected_cracks) {
      return cs[a].expected_cracks < cs[b].expected_cracks;
    }
    if (cs[a].utility.total_loss != cs[b].utility.total_loss) {
      return cs[a].utility.total_loss < cs[b].utility.total_loss;
    }
    return a < b;
  });
  EXPECT_EQ(frontier->frontier, expect);

  // on_frontier flags agree with membership.
  for (size_t i = 0; i < cs.size(); ++i) {
    const bool member =
        std::find(expect.begin(), expect.end(), i) != expect.end();
    EXPECT_EQ(cs[i].on_frontier, member) << "candidate " << i;
  }
}

TEST(OptimizerTest, EveryFrontierPointIsReplayable) {
  Database db = FixtureDb();
  auto frontier = Sweep(db, 1);
  ASSERT_TRUE(frontier.ok());
  auto table = FrequencyTable::Compute(db);
  ASSERT_TRUE(table.ok());
  for (size_t idx : frontier->frontier) {
    const CandidateScore& c = frontier->candidates[idx];
    const DefenseScheme* s = DefenseScheme::Find(c.scheme);
    ASSERT_NE(s, nullptr);
    auto replay = s->Plan(*table, c.params);
    ASSERT_TRUE(replay.ok()) << c.scheme << " " << c.params.ToString();
    EXPECT_EQ(replay->ToJson().Dump(), c.plan.ToJson().Dump());

    // The recorded per-candidate RNG stream rebuilds the same release.
    Rng rng_a(exec::SplitSeed(frontier->seed, 2 * c.index + 2));
    Rng rng_b(exec::SplitSeed(frontier->seed, 2 * c.index + 2));
    auto da = s->Apply(db, *replay, &rng_a);
    auto db2 = s->Apply(db, *replay, &rng_b);
    ASSERT_TRUE(da.ok());
    ASSERT_TRUE(db2.ok());
    EXPECT_EQ(da->transactions(), db2->transactions());
  }
}

TEST(OptimizerTest, InfeasibleCandidatesCarryReasonsNotFailures) {
  Database db = FixtureDb();
  auto frontier = Sweep(db, 1);
  ASSERT_TRUE(frontier.ok());
  size_t infeasible = 0;
  for (const CandidateScore& c : frontier->candidates) {
    if (c.feasible) {
      EXPECT_TRUE(c.reason.empty());
    } else {
      ++infeasible;
      EXPECT_FALSE(c.reason.empty());
      EXPECT_FALSE(c.on_frontier);
    }
  }
  // The tight suppression tolerances are unreachable on this fixture.
  EXPECT_GT(infeasible, 0u);
}

TEST(OptimizerTest, CancellationPropagates) {
  Database db = FixtureDb();
  exec::ExecOptions eo;
  eo.threads = 2;
  exec::ExecContext ctx(eo);
  ctx.RequestCancel();
  auto frontier = RecommendDefense(db, OptimizerOptions{}, &ctx);
  ASSERT_FALSE(frontier.ok());
  EXPECT_TRUE(frontier.status().IsCancelled());
}

TEST(OptimizerTest, ToJsonDocumentShape) {
  Database db = FixtureDb();
  auto frontier = Sweep(db, 1);
  ASSERT_TRUE(frontier.ok());
  const std::string doc = frontier->ToJson().Dump();
  EXPECT_EQ(doc.find("{\"num_items\":"), 0u);
  EXPECT_NE(doc.find("\"baseline\":{\"expected_cracks\":"),
            std::string::npos);
  EXPECT_NE(doc.find("\"candidates\":["), std::string::npos);
  EXPECT_NE(doc.find("\"frontier\":["), std::string::npos);
  EXPECT_NE(doc.find("\"on_frontier\":true"), std::string::npos);
}

TEST(OptimizerTest, WorksWithoutContext) {
  // Null context: sequential sweep with options.seed.
  Database db = FixtureDb();
  OptimizerOptions options;
  options.seed = 7;
  auto a = RecommendDefense(db, options);
  auto b = Sweep(db, 1, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToJson().Dump(), b->ToJson().Dump());
}

}  // namespace
}  // namespace anonsafe
