#include <gtest/gtest.h>

#include <algorithm>

#include "data/frequency.h"
#include "datagen/benchmark_profiles.h"
#include "datagen/profile.h"
#include "datagen/quest.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

// ----------------------------------------------------------------- Profile

TEST(ProfileTest, CreateValidatesAndSorts) {
  auto p = FrequencyProfile::Create(100, {{50, 2}, {10, 3}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_groups(), 2u);
  EXPECT_EQ(p->groups()[0].support, 10u);  // sorted ascending
  EXPECT_EQ(p->num_items(), 5u);

  EXPECT_TRUE(FrequencyProfile::Create(0, {{1, 1}})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(FrequencyProfile::Create(100, {}).status().IsInvalidArgument());
  EXPECT_TRUE(FrequencyProfile::Create(100, {{0, 1}})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(FrequencyProfile::Create(100, {{101, 1}})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(FrequencyProfile::Create(100, {{5, 0}})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(FrequencyProfile::Create(100, {{5, 1}, {5, 2}})
                  .status().IsInvalidArgument());
}

TEST(ProfileTest, ItemSupportsExpansion) {
  auto p = FrequencyProfile::Create(10, {{2, 2}, {7, 1}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ItemSupports(), (std::vector<SupportCount>{2, 2, 7}));
}

TEST(ProfileTest, ToFrequencyGroupsMatchesSpec) {
  auto p = FrequencyProfile::Create(10, {{2, 2}, {7, 3}});
  ASSERT_TRUE(p.ok());
  FrequencyGroups fg = p->ToFrequencyGroups();
  EXPECT_EQ(fg.num_groups(), 2u);
  EXPECT_EQ(fg.group_size(0), 2u);
  EXPECT_EQ(fg.group_size(1), 3u);
  EXPECT_DOUBLE_EQ(fg.group_frequency(1), 0.7);
}

TEST(ProfileTest, ScaledPreservesGroupCount) {
  auto p = FrequencyProfile::Create(1000, {{10, 2}, {11, 1}, {500, 3}});
  ASSERT_TRUE(p.ok());
  auto scaled = p->Scaled(0.1);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled->num_transactions(), 100u);
  EXPECT_EQ(scaled->num_groups(), 3u);
  EXPECT_EQ(scaled->num_items(), 6u);
  // Supports strictly increasing and within range.
  const auto& groups = scaled->groups();
  for (size_t i = 0; i < groups.size(); ++i) {
    EXPECT_GE(groups[i].support, 1u);
    EXPECT_LE(groups[i].support, 100u);
    if (i > 0) {
      EXPECT_GT(groups[i].support, groups[i - 1].support);
    }
  }
}

TEST(ProfileTest, ScaledFailsWhenGroupsCannotFit) {
  std::vector<ProfileGroup> groups;
  for (SupportCount s = 1; s <= 50; ++s) groups.push_back({s, 1});
  auto p = FrequencyProfile::Create(100, groups);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Scaled(0.1).status().IsInvalidArgument());
}

// --------------------------------------------------------- GenerateDatabase

TEST(GenerateDatabaseTest, RealizesProfileExactly) {
  Rng rng(99);
  auto p = FrequencyProfile::Create(200, {{3, 5}, {50, 2}, {120, 4}});
  ASSERT_TRUE(p.ok());
  auto db = GenerateDatabase(*p, &rng);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_items(), 11u);
  EXPECT_EQ(db->num_transactions(), 200u);

  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());
  std::vector<SupportCount> expected = p->ItemSupports();
  for (ItemId x = 0; x < db->num_items(); ++x) {
    EXPECT_EQ(table->support(x), expected[x]) << "item " << x;
  }
  // Every transaction non-empty by construction.
  for (const auto& t : db->transactions()) EXPECT_FALSE(t.empty());
}

TEST(GenerateDatabaseTest, RepairPathKeepsSupports) {
  // Sparse profile: occurrences barely exceed transactions, so the repair
  // pass for empty transactions must trigger while preserving supports.
  Rng rng(7);
  auto p = FrequencyProfile::Create(50, {{1, 30}, {25, 1}});
  ASSERT_TRUE(p.ok());  // occurrences = 30 + 25 = 55 >= 50
  auto db = GenerateDatabase(*p, &rng);
  ASSERT_TRUE(db.ok());
  for (const auto& t : db->transactions()) EXPECT_FALSE(t.empty());
  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());
  for (ItemId x = 0; x < 30; ++x) EXPECT_EQ(table->support(x), 1u);
  EXPECT_EQ(table->support(30), 25u);
}

TEST(GenerateDatabaseTest, FailsWhenTransactionsCannotBeCovered) {
  Rng rng(7);
  auto p = FrequencyProfile::Create(100, {{1, 10}});  // 10 occurrences < 100
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(GenerateDatabase(*p, &rng).status().IsInvalidArgument());
}

TEST(GenerateUniformDatabaseTest, ShapeAndValidation) {
  Rng rng(3);
  auto db = GenerateUniformDatabase(20, 15, 4, &rng);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_transactions(), 15u);
  for (const auto& t : db->transactions()) EXPECT_EQ(t.size(), 4u);
  EXPECT_TRUE(GenerateUniformDatabase(3, 5, 0, &rng)
                  .status().IsInvalidArgument());
  EXPECT_TRUE(GenerateUniformDatabase(3, 5, 4, &rng)
                  .status().IsInvalidArgument());
}

TEST(ZipfProfileTest, ShapeAndValidation) {
  auto profile = MakeZipfProfile(1000, 5000, 1.0, 0.5);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->num_items(), 1000u);
  // Head: the most frequent item sits alone at ~0.5.
  const auto& groups = profile->groups();
  EXPECT_EQ(groups.back().size, 1u);
  EXPECT_NEAR(static_cast<double>(groups.back().support) / 5000.0, 0.5,
              0.01);
  // Tail: many items collapse into few low-support groups.
  EXPECT_GT(groups.front().size, 100u);
  EXPECT_LT(profile->num_groups(), 1000u);

  EXPECT_TRUE(MakeZipfProfile(0, 100, 1.0, 0.5)
                  .status().IsInvalidArgument());
  EXPECT_TRUE(MakeZipfProfile(10, 100, 0.0, 0.5)
                  .status().IsInvalidArgument());
  EXPECT_TRUE(MakeZipfProfile(10, 100, 1.0, 1.5)
                  .status().IsInvalidArgument());
  EXPECT_TRUE(MakeZipfProfile(10, 0, 1.0, 0.5)
                  .status().IsInvalidArgument());
}

TEST(ZipfProfileTest, SteeperExponentFewerGroups) {
  auto flat = MakeZipfProfile(500, 2000, 0.5, 0.6);
  auto steep = MakeZipfProfile(500, 2000, 2.0, 0.6);
  ASSERT_TRUE(flat.ok());
  ASSERT_TRUE(steep.ok());
  // Steeper tails collapse more items onto support 1.
  EXPECT_LT(steep->num_groups(), flat->num_groups());
}

TEST(ZipfProfileTest, GeneratesRealizableDatabase) {
  Rng rng(8);
  auto profile = MakeZipfProfile(100, 400, 1.2, 0.4);
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());
  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());
  std::vector<SupportCount> expected = profile->ItemSupports();
  for (ItemId x = 0; x < db->num_items(); ++x) {
    EXPECT_EQ(table->support(x), expected[x]);
  }
}

// ------------------------------------------------------- Benchmark profiles

TEST(BenchmarkProfilesTest, AllSpecsPresentAndNamed) {
  const auto& specs = AllBenchmarkSpecs();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "CONNECT");
  EXPECT_EQ(specs[3].name, "RETAIL");
  EXPECT_EQ(GetBenchmarkSpec(Benchmark::kChess).num_items, 75u);
  auto by_name = BenchmarkByName("retail");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(*by_name, Benchmark::kRetail);
  EXPECT_TRUE(BenchmarkByName("NOPE").status().IsNotFound());
}

class BenchmarkProfileShapeTest
    : public ::testing::TestWithParam<Benchmark> {};

TEST_P(BenchmarkProfileShapeTest, MatchesPublishedFigure9Counts) {
  Rng rng(2026);
  const BenchmarkSpec& spec = GetBenchmarkSpec(GetParam());
  auto profile = MakeBenchmarkProfile(GetParam(), &rng);
  ASSERT_TRUE(profile.ok());

  // Hard structural targets: exact item/transaction/group/singleton counts.
  EXPECT_EQ(profile->num_items(), spec.num_items);
  EXPECT_EQ(profile->num_transactions(), spec.num_transactions);
  EXPECT_EQ(profile->num_groups(), spec.num_groups);
  FrequencyGroups fg = profile->ToFrequencyGroups();
  EXPECT_EQ(fg.num_groups(), spec.num_groups);
  EXPECT_EQ(fg.num_singleton_groups(), spec.num_singleton_groups);

  // Soft calibration targets: gap statistics in the right ballpark.
  Summary gaps = fg.GapSummary();
  EXPECT_NEAR(gaps.max, spec.max_gap, spec.max_gap * 0.5 + 1e-9);
  EXPECT_LT(gaps.min,
            spec.median_gap * 1.5 +
                1.0 / static_cast<double>(spec.num_transactions));
  EXPECT_GT(gaps.median, 0.0);
  // Median within a factor of ~3 of the published value.
  EXPECT_LT(gaps.median, spec.median_gap * 3.0 + 3.0 / spec.num_transactions);
  // Mean gap larger than median gap (the skew the paper highlights),
  // except in degenerate cases.
  if (spec.mean_gap > 2.0 * spec.median_gap) {
    EXPECT_GT(gaps.mean, gaps.median);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkProfileShapeTest,
    ::testing::Values(Benchmark::kConnect, Benchmark::kPumsb,
                      Benchmark::kAccidents, Benchmark::kRetail,
                      Benchmark::kMushroom, Benchmark::kChess),
    [](const ::testing::TestParamInfo<Benchmark>& info) {
      return GetBenchmarkSpec(info.param).name;
    });

TEST(BenchmarkProfilesTest, ScaledDatabaseGeneration) {
  Rng rng(1);
  // CHESS at 30%: small enough to materialize quickly in a unit test.
  auto db = MakeBenchmarkDatabase(Benchmark::kChess, &rng, 0.3);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_items(), 75u);
  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());
  FrequencyGroups fg = FrequencyGroups::Build(*table);
  EXPECT_EQ(fg.num_groups(), 73u);
}

TEST(BenchmarkProfilesTest, DifferentSeedsDifferentProfiles) {
  Rng rng1(1), rng2(2);
  auto p1 = MakeBenchmarkProfile(Benchmark::kMushroom, &rng1);
  auto p2 = MakeBenchmarkProfile(Benchmark::kMushroom, &rng2);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  bool differs = false;
  for (size_t g = 0; g < p1->num_groups(); ++g) {
    if (p1->groups()[g].support != p2->groups()[g].support) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(BenchmarkProfilesTest, SameSeedSameProfile) {
  Rng rng1(5), rng2(5);
  auto p1 = MakeBenchmarkProfile(Benchmark::kChess, &rng1);
  auto p2 = MakeBenchmarkProfile(Benchmark::kChess, &rng2);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  for (size_t g = 0; g < p1->num_groups(); ++g) {
    EXPECT_EQ(p1->groups()[g].support, p2->groups()[g].support);
    EXPECT_EQ(p1->groups()[g].size, p2->groups()[g].size);
  }
}

// ------------------------------------------------------------------- Quest

TEST(QuestTest, GeneratesRequestedShape) {
  QuestParams params;
  params.num_items = 100;
  params.num_transactions = 500;
  params.avg_txn_size = 8.0;
  params.seed = 77;
  auto db = GenerateQuestDatabase(params);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_items(), 100u);
  EXPECT_EQ(db->num_transactions(), 500u);
  double avg = static_cast<double>(db->TotalSize()) / 500.0;
  EXPECT_GT(avg, 2.0);
  EXPECT_LT(avg, 20.0);
}

TEST(QuestTest, DeterministicBySeed) {
  QuestParams params;
  params.num_items = 50;
  params.num_transactions = 100;
  params.seed = 123;
  auto a = GenerateQuestDatabase(params);
  auto b = GenerateQuestDatabase(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t t = 0; t < a->num_transactions(); ++t) {
    EXPECT_EQ(a->transaction(t), b->transaction(t));
  }
}

TEST(QuestTest, ValidatesParameters) {
  QuestParams params;
  params.num_items = 0;
  EXPECT_TRUE(GenerateQuestDatabase(params).status().IsInvalidArgument());
  params = QuestParams{};
  params.avg_txn_size = 0.5;
  EXPECT_TRUE(GenerateQuestDatabase(params).status().IsInvalidArgument());
  params = QuestParams{};
  params.num_patterns = 0;
  EXPECT_TRUE(GenerateQuestDatabase(params).status().IsInvalidArgument());
  params = QuestParams{};
  params.correlation = 1.5;
  EXPECT_TRUE(GenerateQuestDatabase(params).status().IsInvalidArgument());
  params = QuestParams{};
  params.corruption_mean = 1.0;
  EXPECT_TRUE(GenerateQuestDatabase(params).status().IsInvalidArgument());
}

TEST(QuestTest, SkewedItemPopularity) {
  // Zipf pattern weights should produce visibly skewed item frequencies.
  QuestParams params;
  params.num_items = 200;
  params.num_transactions = 2000;
  params.seed = 5;
  auto db = GenerateQuestDatabase(params);
  ASSERT_TRUE(db.ok());
  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());
  std::vector<SupportCount> supports = table->supports();
  std::sort(supports.begin(), supports.end());
  // Top item at least 5x the median item.
  EXPECT_GT(supports.back(),
            5 * std::max<SupportCount>(1, supports[supports.size() / 2]));
}

}  // namespace
}  // namespace anonsafe
