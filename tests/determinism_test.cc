// Bit-identity of the parallel analysis paths: every estimator must
// produce the exact same bits at 1, 2 and 8 threads (and with no
// context at all), because chunk boundaries, RNG streams, and
// reduction order are functions of the problem size only — never of
// the scheduling. See docs/PARALLELISM.md for the contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "belief/belief_function.h"
#include "belief/builders.h"
#include "core/alpha_sweep.h"
#include "core/direct_method.h"
#include "core/oestimate.h"
#include "core/recipe.h"
#include "core/simulated.h"
#include "data/frequency.h"
#include "estimator/planner.h"
#include "exec/exec.h"
#include "graph/bipartite_graph.h"
#include "graph/matching_sampler.h"
#include "graph/permanent.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

// A mid-size synthetic frequency profile: enough items that the
// parallel paths split into many chunks, small enough for fast tests.
Result<FrequencyTable> MakeProfile(size_t num_items, uint64_t seed) {
  Rng rng(seed);
  std::vector<SupportCount> supports;
  supports.reserve(num_items);
  for (size_t i = 0; i < num_items; ++i) {
    supports.push_back(1 + rng.UniformUint64(500));
  }
  return FrequencyTable::FromSupports(std::move(supports), 1000);
}

exec::ExecOptions WithThreads(size_t threads) {
  exec::ExecOptions options;
  options.threads = threads;
  return options;
}

// --------------------------------------------------------- Assess-Risk

TEST(DeterminismTest, AssessRiskBitIdenticalAcrossThreadCounts) {
  auto table = MakeProfile(300, 17);
  ASSERT_TRUE(table.ok());
  RecipeOptions base;
  base.tolerance = 0.1;

  std::vector<RecipeResult> results;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    RecipeOptions options = base;
    options.exec.threads = threads;
    auto r = AssessRisk(*table, options);
    ASSERT_TRUE(r.ok()) << threads << " threads: " << r.status();
    results.push_back(*r);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].decision, results[0].decision);
    EXPECT_EQ(results[i].interval_oe, results[0].interval_oe);
    EXPECT_EQ(results[i].alpha_max, results[0].alpha_max);
    EXPECT_EQ(results[i].delta_med, results[0].delta_med);
  }
}

TEST(DeterminismTest, AverageOEstimateBitIdenticalAcrossThreadCounts) {
  auto table = MakeProfile(200, 23);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto belief = MakeCompliantIntervalBelief(*table, groups.MedianGap());
  ASSERT_TRUE(belief.ok());
  auto sweep = AlphaCompliancySweep::Create(*table, *belief, 5, 7);
  ASSERT_TRUE(sweep.ok());

  std::vector<double> averages;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    exec::ExecContext ctx(WithThreads(threads));
    auto avg = sweep->AverageOEstimate(groups, 0.6, {}, &ctx);
    ASSERT_TRUE(avg.ok()) << avg.status();
    averages.push_back(*avg);
  }
  // Null context must match too (the default API path).
  auto null_ctx = sweep->AverageOEstimate(groups, 0.6);
  ASSERT_TRUE(null_ctx.ok());
  EXPECT_EQ(averages[0], averages[1]);
  EXPECT_EQ(averages[0], averages[2]);
  EXPECT_EQ(averages[0], *null_ctx);
}

TEST(DeterminismTest, OEstimateBitIdenticalWithAndWithoutContext) {
  auto table = MakeProfile(400, 31);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto belief = MakeCompliantIntervalBelief(*table, groups.MedianGap());
  ASSERT_TRUE(belief.ok());

  auto none = ComputeOEstimate(groups, *belief);
  ASSERT_TRUE(none.ok());
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    exec::ExecContext ctx(WithThreads(threads));
    auto with = ComputeOEstimate(groups, *belief, {}, &ctx);
    ASSERT_TRUE(with.ok());
    EXPECT_EQ(with->expected_cracks, none->expected_cracks) << threads;
    EXPECT_EQ(with->forced_items, none->forced_items) << threads;
  }
}

// ------------------------------------------------------------- Sampler

TEST(DeterminismTest, SamplerChainsBitIdenticalAcrossThreadCounts) {
  auto table = MakeProfile(60, 41);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto belief = MakeCompliantIntervalBelief(*table, groups.MedianGap());
  ASSERT_TRUE(belief.ok());
  SamplerOptions options;
  options.num_samples = 120;
  options.samples_per_seed = 25;  // 5 chains, last one short
  options.burn_in_sweeps = 30;
  options.thinning_sweeps = 2;
  auto sampler = MatchingSampler::Create(groups, *belief, options);
  ASSERT_TRUE(sampler.ok());

  std::vector<size_t> sequential = sampler->SampleCrackCounts();
  ASSERT_EQ(sequential.size(), 120u);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    exec::ExecContext ctx(WithThreads(threads));
    std::vector<size_t> parallel = sampler->SampleCrackCounts(&ctx);
    EXPECT_EQ(parallel, sequential) << threads << " threads";
  }
  EXPECT_TRUE(sampler->CurrentStateConsistent());
}

TEST(DeterminismTest, SimulatedCracksBitIdenticalAcrossThreadCounts) {
  auto table = MakeProfile(40, 43);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto belief = MakeCompliantIntervalBelief(*table, groups.MedianGap());
  ASSERT_TRUE(belief.ok());
  SimulationOptions base;
  base.exec.runs = 4;
  base.sampler.num_samples = 60;
  base.sampler.burn_in_sweeps = 20;
  base.sampler.thinning_sweeps = 2;

  std::vector<SimulationResult> results;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SimulationOptions options = base;
    options.exec.threads = threads;
    auto r = SimulateExpectedCracks(groups, *belief, options);
    ASSERT_TRUE(r.ok()) << r.status();
    results.push_back(*r);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].mean, results[0].mean);
    EXPECT_EQ(results[i].stddev, results[0].stddev);
    EXPECT_EQ(results[i].run_means, results[0].run_means);
  }
}

// ----------------------------------------------------------- Permanent

TEST(DeterminismTest, RyserPermanentBitIdenticalAcrossThreadCounts) {
  // n = 16 crosses kRyserParallelMinN, so the chunked path runs.
  const size_t n = 16;
  Rng rng(53);
  std::vector<uint64_t> rows(n, 0);
  for (size_t i = 0; i < n; ++i) {
    rows[i] |= uint64_t{1} << i;  // diagonal keeps the permanent positive
    for (size_t j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.4)) rows[i] |= uint64_t{1} << j;
    }
  }
  auto none = PermanentRyser(rows);
  ASSERT_TRUE(none.ok());
  EXPECT_GT(*none, 0.0);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    exec::ExecContext ctx(WithThreads(threads));
    auto with = PermanentRyser(rows, &ctx);
    ASSERT_TRUE(with.ok());
    EXPECT_EQ(*with, *none) << threads << " threads";
  }
}

// ------------------------------------------------------------- Planner

// Differential test for the block-decomposed planner: on 200 random
// small instances (n <= 12, mixed belief shapes) the auto estimator
// must be bit-identical to the monolithic direct method at every
// thread count. Whole-graph permanents at n <= 12 stay below 2^53, so
// each per-item crack probability is a single correctly-rounded IEEE
// division on both sides and the fixed-shape reduction makes the sum
// order-independent of scheduling — EXPECT_EQ, not EXPECT_NEAR.
TEST(DeterminismTest, PlannerMatchesDirectAcrossThreadCounts) {
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 2 + rng.UniformUint64(11);  // n in [2, 12]
    std::vector<SupportCount> supports(n);
    for (size_t i = 0; i < n; ++i) {
      supports[i] = static_cast<SupportCount>(1 + rng.UniformUint64(300));
    }
    auto table = FrequencyTable::FromSupports(std::move(supports), 1000);
    ASSERT_TRUE(table.ok());
    FrequencyGroups groups = FrequencyGroups::Build(*table);

    // Rotate through belief shapes: point-valued, uniform compliant
    // width, and per-item intervals stretched to an adjacent group's
    // frequency (the shape that produces chain blocks).
    Result<BeliefFunction> belief = Status::Internal("unset");
    switch (trial % 3) {
      case 0:
        belief = MakeCompliantIntervalBelief(*table, 0.0);
        break;
      case 1:
        belief = MakeCompliantIntervalBelief(
            *table, groups.MedianGap() * rng.UniformDouble(0.2, 2.2));
        break;
      default: {
        std::vector<BeliefInterval> intervals(n);
        for (ItemId x = 0; x < n; ++x) {
          const size_t g = groups.group_of_item(x);
          double lo = groups.group_frequency(g);
          double hi = lo;
          if (g + 1 < groups.num_groups() && rng.Bernoulli(0.4)) {
            hi = groups.group_frequency(g + 1);
          } else if (g > 0 && rng.Bernoulli(0.4)) {
            lo = groups.group_frequency(g - 1);
          }
          intervals[x] = {lo, hi};
        }
        belief = BeliefFunction::Create(std::move(intervals));
        break;
      }
    }
    ASSERT_TRUE(belief.ok());

    auto direct = DirectExpectedCracks(groups, *belief);
    ASSERT_TRUE(direct.ok()) << "trial " << trial;
    for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
      exec::ExecContext ctx(WithThreads(threads));
      auto planned = PlanAndEstimate(groups, *belief, {}, &ctx);
      ASSERT_TRUE(planned.ok())
          << "trial " << trial << ", " << threads << " threads";
      EXPECT_TRUE(planned->exact) << "trial " << trial;
      EXPECT_EQ(planned->expected_cracks, *direct)
          << "trial " << trial << ", " << threads << " threads";
    }
  }
}

// ---------------------------------------- Adversary-seam differential

// The adversary registry must be invisible for the default model: on
// 200 random frequency profiles the full recipe — which now routes its
// belief construction through `Adversary::Find("interval")->Bind` —
// must be bit-identical across 1/4/8 threads AND reproduce the legacy
// replica computed inline here: the compliant interval belief at the
// recipe's own δ_med fed to ComputeOEstimate. Every quantity is the
// same IEEE arithmetic on both sides, so EXPECT_EQ, not EXPECT_NEAR.
TEST(DeterminismTest, IntervalAdversaryMatchesLegacyAcrossThreadCounts) {
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 40 + rng.UniformUint64(21);  // n in [40, 60]
    std::vector<SupportCount> supports(n);
    for (size_t i = 0; i < n; ++i) {
      supports[i] = static_cast<SupportCount>(1 + rng.UniformUint64(500));
    }
    auto table = FrequencyTable::FromSupports(std::move(supports), 1000);
    ASSERT_TRUE(table.ok()) << "trial " << trial;

    std::vector<RecipeResult> results;
    for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
      RecipeOptions options;
      options.exec.threads = threads;
      auto r = AssessRisk(*table, options);
      ASSERT_TRUE(r.ok()) << "trial " << trial << ", " << threads
                          << " threads: " << r.status();
      results.push_back(*r);
    }
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].decision, results[0].decision) << trial;
      EXPECT_EQ(results[i].interval_oe, results[0].interval_oe) << trial;
      EXPECT_EQ(results[i].alpha_max, results[0].alpha_max) << trial;
      EXPECT_EQ(results[i].delta_med, results[0].delta_med) << trial;
    }
    EXPECT_EQ(results[0].adversary, "interval") << trial;

    if (results[0].decision == RecipeDecision::kDiscloseAtPointValued) {
      continue;  // the interval check never ran; nothing to replicate
    }
    FrequencyGroups groups = FrequencyGroups::Build(*table);
    auto belief = MakeCompliantIntervalBelief(*table, results[0].delta_med);
    ASSERT_TRUE(belief.ok()) << "trial " << trial;
    auto legacy = ComputeOEstimate(groups, *belief);
    ASSERT_TRUE(legacy.ok()) << "trial " << trial;
    EXPECT_EQ(results[0].interval_oe, legacy->expected_cracks) << trial;
  }
}

// The non-default adversaries make the same bit-identity promise: the
// weighted O-estimate reduction uses fixed per-chunk slots like the
// uniform one, and exact-support binding is pure selection.
TEST(DeterminismTest, NonIntervalAdversariesBitIdenticalAcrossThreadCounts) {
  auto table = MakeProfile(300, 19);
  ASSERT_TRUE(table.ok());

  RecipeOptions probabilistic;
  probabilistic.adversary = "probabilistic";
  probabilistic.adversary_params.Set("span", 2.0);
  probabilistic.adversary_params.Set("sigma", 1.0);

  RecipeOptions exact_support;
  exact_support.adversary = "exact_support";
  exact_support.adversary_params.Set("k", 12.0);

  for (const RecipeOptions& base : {probabilistic, exact_support}) {
    std::vector<RecipeResult> results;
    for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
      RecipeOptions options = base;
      options.exec.threads = threads;
      auto r = AssessRisk(*table, options);
      ASSERT_TRUE(r.ok()) << base.adversary << ", " << threads
                          << " threads: " << r.status();
      results.push_back(*r);
    }
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].decision, results[0].decision) << base.adversary;
      EXPECT_EQ(results[i].interval_oe, results[0].interval_oe)
          << base.adversary;
      EXPECT_EQ(results[i].alpha_max, results[0].alpha_max) << base.adversary;
      EXPECT_EQ(results[i].delta_med, results[0].delta_med) << base.adversary;
    }
  }
}

// --------------------------------------------- Validation regressions

TEST(ValidationTest, RecipeRejectsMalformedOptions) {
  auto table = MakeProfile(20, 3);
  ASSERT_TRUE(table.ok());

  RecipeOptions zero_iters;
  zero_iters.binary_search_iterations = 0;
  EXPECT_TRUE(AssessRisk(*table, zero_iters).status().IsInvalidArgument());

  RecipeOptions zero_runs;
  zero_runs.exec.runs = 0;
  EXPECT_TRUE(AssessRisk(*table, zero_runs).status().IsInvalidArgument());

  RecipeOptions bad_tolerance;
  bad_tolerance.tolerance = 1.5;
  EXPECT_TRUE(
      AssessRisk(*table, bad_tolerance).status().IsInvalidArgument());

  EXPECT_TRUE(ValidateRecipeOptions(RecipeOptions{}).ok());
}

TEST(ValidationTest, SamplerRejectsMalformedOptions) {
  auto table = MakeProfile(20, 3);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto belief = MakeCompliantIntervalBelief(*table, groups.MedianGap());
  ASSERT_TRUE(belief.ok());

  SamplerOptions zero_per_seed;
  zero_per_seed.samples_per_seed = 0;
  EXPECT_TRUE(MatchingSampler::Create(groups, *belief, zero_per_seed)
                  .status().IsInvalidArgument());

  SamplerOptions bad_fraction;
  bad_fraction.cycle_move_fraction = 1.5;
  EXPECT_TRUE(MatchingSampler::Create(groups, *belief, bad_fraction)
                  .status().IsInvalidArgument());

  SamplerOptions negative_scale;
  negative_scale.burn_in_scale = -1.0;
  EXPECT_TRUE(MatchingSampler::Create(groups, *belief, negative_scale)
                  .status().IsInvalidArgument());
}

TEST(ValidationTest, BeliefAtRejectsOutOfRangeRun) {
  auto table = MakeProfile(30, 5);
  ASSERT_TRUE(table.ok());
  auto belief = MakeCompliantIntervalBelief(
      *table, FrequencyGroups::Build(*table).MedianGap());
  ASSERT_TRUE(belief.ok());
  auto sweep = AlphaCompliancySweep::Create(*table, *belief, 3, 7);
  ASSERT_TRUE(sweep.ok());
  EXPECT_TRUE(sweep->BeliefAt(3, 0.5).status().IsOutOfRange());
  EXPECT_TRUE(sweep->BeliefAt(0, 0.5).ok());
}

// ------------------------------------------------ exec.* determinism

TEST(ExecOptionsTest, RecipeSeedDeterminesResult) {
  auto table = MakeProfile(80, 29);
  ASSERT_TRUE(table.ok());

  RecipeOptions options;
  options.exec.seed = 123;
  options.exec.runs = 4;
  auto a = AssessRisk(*table, options);
  ASSERT_TRUE(a.ok());
  auto b = AssessRisk(*table, options);
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(a->alpha_max, b->alpha_max);
  EXPECT_EQ(a->interval_oe, b->interval_oe);
  EXPECT_EQ(a->decision, b->decision);
}

TEST(ExecOptionsTest, SamplerSeedDeterminesSamples) {
  auto table = MakeProfile(30, 37);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto belief = MakeCompliantIntervalBelief(*table, groups.MedianGap());
  ASSERT_TRUE(belief.ok());

  SamplerOptions options;
  options.exec.seed = 77;
  options.num_samples = 40;
  options.burn_in_sweeps = 10;
  auto a = MatchingSampler::Create(groups, *belief, options);
  ASSERT_TRUE(a.ok());
  auto b = MatchingSampler::Create(groups, *belief, options);
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(a->SampleCrackCounts(), b->SampleCrackCounts());
}

}  // namespace
}  // namespace anonsafe
