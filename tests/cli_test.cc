#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "data/fimi_io.h"
#include "data/frequency.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tools/cli.h"

namespace anonsafe {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteSampleFile(const std::string& path) {
  std::ofstream out(path);
  // 12 transactions over 6 items with assorted supports.
  out << "1 2 3\n1 2\n1 4\n1 2 5\n2 3\n1 3 6\n2 4\n1 2 3\n5 6\n1 2\n"
         "3 4 5\n1 6\n";
}

// ----------------------------------------------------------------- Parsing

TEST(CliParseTest, SplitsCommandPositionalAndFlags) {
  auto cli = ParseCli({"assess", "file.dat", "--tolerance=0.2", "--verbose"});
  ASSERT_TRUE(cli.ok());
  EXPECT_EQ(cli->command, "assess");
  ASSERT_EQ(cli->positional.size(), 1u);
  EXPECT_EQ(cli->positional[0], "file.dat");
  EXPECT_EQ(cli->flags.at("tolerance"), "0.2");
  EXPECT_EQ(cli->flags.at("verbose"), "true");
}

TEST(CliParseTest, EmptyArgsFail) {
  EXPECT_TRUE(ParseCli({}).status().IsInvalidArgument());
  EXPECT_TRUE(ParseCli({"--only=flags"}).status().IsInvalidArgument());
}

TEST(CliParseTest, FlagAccessors) {
  auto cli = ParseCli({"x", "--a=1.5", "--b=7", "--bad=zz"});
  ASSERT_TRUE(cli.ok());
  auto d = FlagAsDouble(*cli, "a", 0.0);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 1.5);
  auto dd = FlagAsDouble(*cli, "missing", 9.5);
  ASSERT_TRUE(dd.ok());
  EXPECT_DOUBLE_EQ(*dd, 9.5);
  auto u = FlagAsUint64(*cli, "b", 0);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(*u, 7u);
  EXPECT_TRUE(FlagAsDouble(*cli, "bad", 0.0).status().IsInvalidArgument());
  EXPECT_TRUE(FlagAsUint64(*cli, "bad", 0).status().IsInvalidArgument());
}

// ---------------------------------------------------------------- Commands

TEST(CliRunTest, HelpAndUnknown) {
  std::ostringstream out;
  auto help = ParseCli({"help"});
  ASSERT_TRUE(help.ok());
  EXPECT_TRUE(RunCli(*help, out).ok());
  EXPECT_NE(out.str().find("usage: anonsafe"), std::string::npos);

  auto unknown = ParseCli({"frobnicate"});
  ASSERT_TRUE(unknown.ok());
  EXPECT_TRUE(RunCli(*unknown, out).IsInvalidArgument());
}

TEST(CliRunTest, StatsOnSampleFile) {
  const std::string path = TempPath("cli_stats.dat");
  WriteSampleFile(path);
  auto cli = ParseCli({"stats", path});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(*cli, out).ok());
  EXPECT_NE(out.str().find("transactions"), std::string::npos);
  EXPECT_NE(out.str().find("12"), std::string::npos);
  EXPECT_NE(out.str().find("frequency groups"), std::string::npos);
}

TEST(CliRunTest, StatsMissingFileFails) {
  auto cli = ParseCli({"stats", "/no/such/file.dat"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  EXPECT_TRUE(RunCli(*cli, out).IsIOError());
}

TEST(CliRunTest, StatsWrongArity) {
  auto cli = ParseCli({"stats"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  EXPECT_TRUE(RunCli(*cli, out).IsInvalidArgument());
}

TEST(CliRunTest, AssessProducesDecision) {
  const std::string path = TempPath("cli_assess.dat");
  WriteSampleFile(path);
  auto cli = ParseCli({"assess", path, "--tolerance=0.5"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(*cli, out).ok());
  EXPECT_NE(out.str().find("decision:"), std::string::npos);
}

TEST(CliRunTest, AssessRejectsBadTolerance) {
  const std::string path = TempPath("cli_assess2.dat");
  WriteSampleFile(path);
  auto cli = ParseCli({"assess", path, "--tolerance=nope"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  EXPECT_TRUE(RunCli(*cli, out).IsInvalidArgument());
}

TEST(CliRunTest, AnonymizeRoundTrip) {
  const std::string in = TempPath("cli_anon_in.dat");
  const std::string out_path = TempPath("cli_anon_out.dat");
  WriteSampleFile(in);
  auto cli = ParseCli({"anonymize", in, out_path, "--seed=99"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(*cli, out).ok());

  auto original = ReadFimiFile(in);
  auto anonymized = ReadFimiFile(out_path);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(anonymized.ok());
  EXPECT_EQ(original->database.num_transactions(),
            anonymized->database.num_transactions());
  // Frequencies preserved as a multiset even though labels moved.
  auto ot = FrequencyTable::Compute(original->database);
  auto at = FrequencyTable::Compute(anonymized->database);
  ASSERT_TRUE(ot.ok());
  ASSERT_TRUE(at.ok());
  std::vector<SupportCount> os = ot->supports(), as = at->supports();
  // The anonymized file may have fewer *labels* if some item never
  // appears; supports themselves must match as sorted multisets over the
  // appearing items.
  std::sort(os.begin(), os.end());
  std::sort(as.begin(), as.end());
  os.erase(std::remove(os.begin(), os.end(), 0u), os.end());
  as.erase(std::remove(as.begin(), as.end(), 0u), as.end());
  EXPECT_EQ(os, as);
}

TEST(CliRunTest, GenerateWritesBenchmarkStandIn) {
  const std::string out_path = TempPath("cli_gen.dat");
  auto cli =
      ParseCli({"generate", "CHESS", out_path, "--scale=0.2", "--seed=5"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(*cli, out).ok());
  auto generated = ReadFimiFile(out_path);
  ASSERT_TRUE(generated.ok());
  EXPECT_EQ(generated->database.num_items(), 75u);
  auto table = FrequencyTable::Compute(generated->database);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(FrequencyGroups::Build(*table).num_groups(), 73u);
}

TEST(CliRunTest, GenerateUnknownBenchmarkFails) {
  auto cli = ParseCli({"generate", "NOPE", TempPath("x.dat")});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  EXPECT_TRUE(RunCli(*cli, out).IsNotFound());
}

TEST(CliRunTest, SimilarityOnSampleFile) {
  const std::string path = TempPath("cli_sim.dat");
  WriteSampleFile(path);
  auto cli = ParseCli({"similarity", path, "--seed=3"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(*cli, out).ok());
  EXPECT_NE(out.str().find("mean alpha"), std::string::npos);
}

TEST(CliRunTest, RiskRankingOnSampleFile) {
  const std::string path = TempPath("cli_risk.dat");
  WriteSampleFile(path);
  auto cli = ParseCli({"risk", path, "--top=3"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(*cli, out).ok());
  EXPECT_NE(out.str().find("crack prob."), std::string::npos);
  EXPECT_NE(out.str().find("O-estimate"), std::string::npos);
}

TEST(CliRunTest, DefendMergeProducesSaferFile) {
  const std::string in = TempPath("cli_defend_in.dat");
  const std::string out_path = TempPath("cli_defend_out.dat");
  WriteSampleFile(in);
  auto cli = ParseCli({"defend", in, out_path, "--tolerance=0.4",
                       "--mode=merge"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(*cli, out).ok());
  EXPECT_NE(out.str().find("merge defense"), std::string::npos);
  auto defended = ReadFimiFile(out_path);
  ASSERT_TRUE(defended.ok());
  EXPECT_EQ(defended->database.num_transactions(), 12u);
}

TEST(CliRunTest, DefendRejectsUnknownMode) {
  const std::string in = TempPath("cli_defend_bad.dat");
  WriteSampleFile(in);
  auto cli = ParseCli({"defend", in, TempPath("o.dat"), "--mode=wat"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  EXPECT_TRUE(RunCli(*cli, out).IsInvalidArgument());
}

TEST(CliRunTest, BeliefTemplateAndAttackFlow) {
  const std::string data = TempPath("cli_attack.dat");
  const std::string belief = TempPath("cli_attack.belief");
  WriteSampleFile(data);
  auto make = ParseCli({"belief", data, belief});
  ASSERT_TRUE(make.ok());
  std::ostringstream out1;
  ASSERT_TRUE(RunCli(*make, out1).ok());
  auto attack = ParseCli({"attack", data, belief, "--top=2"});
  ASSERT_TRUE(attack.ok());
  std::ostringstream out2;
  ASSERT_TRUE(RunCli(*attack, out2).ok());
  EXPECT_NE(out2.str().find("alpha = 1.0000"), std::string::npos);
  EXPECT_NE(out2.str().find("O-estimate"), std::string::npos);
}

TEST(CliRunTest, AttackMissingBeliefFileFails) {
  const std::string data = TempPath("cli_attack2.dat");
  WriteSampleFile(data);
  auto attack = ParseCli({"attack", data, "/no/such.belief"});
  ASSERT_TRUE(attack.ok());
  std::ostringstream out;
  EXPECT_TRUE(RunCli(*attack, out).IsIOError());
}

TEST(CliRunTest, MineAllAlgorithmsAgree) {
  const std::string path = TempPath("cli_mine.dat");
  WriteSampleFile(path);
  std::string outputs[3];
  const char* algorithms[] = {"apriori", "fpgrowth", "eclat"};
  for (int i = 0; i < 3; ++i) {
    auto cli = ParseCli({"mine", path, "--min-support=0.25",
                         std::string("--algorithm=") + algorithms[i],
                         "--top=50"});
    ASSERT_TRUE(cli.ok());
    std::ostringstream out;
    ASSERT_TRUE(RunCli(*cli, out).ok()) << algorithms[i];
    outputs[i] = out.str();
    // Strip the algorithm name so the bodies are comparable.
    size_t paren = outputs[i].find('(');
    outputs[i] = outputs[i].substr(outputs[i].find('\n'));
    (void)paren;
  }
  EXPECT_EQ(outputs[0], outputs[1]);
  EXPECT_EQ(outputs[0], outputs[2]);
}

TEST(CliRunTest, MineWithRulesAndBadAlgorithm) {
  const std::string path = TempPath("cli_mine2.dat");
  WriteSampleFile(path);
  auto cli = ParseCli({"mine", path, "--min-support=0.2",
                       "--min-confidence=0.5"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(*cli, out).ok());
  EXPECT_NE(out.str().find("association rules"), std::string::npos);
  auto bad = ParseCli({"mine", path, "--algorithm=magic"});
  ASSERT_TRUE(bad.ok());
  std::ostringstream out2;
  EXPECT_TRUE(RunCli(*bad, out2).IsInvalidArgument());
}

// ----------------------------------------------------------- Observability

/// Restores the process-wide observability switches a test flipped.
struct ObsSwitchGuard {
  ~ObsSwitchGuard() {
    obs::SetTracingEnabled(false);
    obs::SetMetricsEnabled(false);
  }
};

TEST(CliRunTest, AssessWithTracePrintsPhaseTable) {
  ObsSwitchGuard guard;
  const std::string path = TempPath("cli_trace.dat");
  WriteSampleFile(path);
  // Tolerance low enough that the recipe falls through to the alpha
  // bisection, so all phases appear.
  auto cli = ParseCli({"assess", path, "--tolerance=0.05", "--trace"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(*cli, out).ok());
  const std::string text = out.str();
  EXPECT_NE(text.find("trace (assess):"), std::string::npos);
  EXPECT_NE(text.find("recipe.assess_risk"), std::string::npos);
  EXPECT_NE(text.find("recipe.point_valued_check"), std::string::npos);
  EXPECT_NE(text.find("recipe.alpha_probe"), std::string::npos);
  EXPECT_NE(text.find("core.oestimate"), std::string::npos);
  EXPECT_NE(text.find("graph.consistency_build"), std::string::npos);
  EXPECT_NE(text.find("% of root"), std::string::npos);
}

TEST(CliRunTest, AssessWithMetricsOutWritesJsonAndProm) {
  ObsSwitchGuard guard;
  const std::string path = TempPath("cli_metrics.dat");
  const std::string json_path = TempPath("cli_metrics.json");
  WriteSampleFile(path);
  auto cli = ParseCli({"assess", path, "--tolerance=0.05",
                       "--metrics-out=" + json_path});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(*cli, out).ok());
  EXPECT_NE(out.str().find("metrics: " + json_path), std::string::npos);

  std::ifstream json(json_path);
  ASSERT_TRUE(json.good());
  std::stringstream buf;
  buf << json.rdbuf();
  EXPECT_NE(buf.str().find("\"anonsafe_recipe_runs_total\""),
            std::string::npos);
  EXPECT_NE(buf.str().find("\"anonsafe_alpha_probes_total\""),
            std::string::npos);
  EXPECT_NE(buf.str().find("\"p95\""), std::string::npos);

  std::ifstream prom(TempPath("cli_metrics.prom"));
  ASSERT_TRUE(prom.good());
  std::stringstream pbuf;
  pbuf << prom.rdbuf();
  EXPECT_NE(pbuf.str().find("# TYPE anonsafe_recipe_assess_risk_seconds "
                            "histogram"),
            std::string::npos);
}

TEST(CliRunTest, MetricsOutToUnwritablePathFails) {
  ObsSwitchGuard guard;
  const std::string path = TempPath("cli_metrics_bad.dat");
  WriteSampleFile(path);
  auto cli = ParseCli({"assess", path,
                       "--metrics-out=/no/such/dir/metrics.json"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  EXPECT_TRUE(RunCli(*cli, out).IsIOError());
}

TEST(CliRunTest, ReportOnSampleFile) {
  const std::string path = TempPath("cli_report.dat");
  WriteSampleFile(path);
  auto cli = ParseCli({"report", path, "--tolerance=0.3"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(*cli, out).ok());
  EXPECT_NE(out.str().find("Disclosure Risk Report"), std::string::npos);
}

// ---------------------------------------------------------------- Adversary

TEST(CliRunTest, AssessWithAdversaryPrintsProvenance) {
  const std::string path = TempPath("cli_adversary.dat");
  WriteSampleFile(path);
  auto cli = ParseCli({"assess", path, "--tolerance=0.5",
                       "--adversary=probabilistic:span=1,sigma=0.5"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(*cli, out).ok());
  EXPECT_NE(out.str().find("decision:"), std::string::npos);
  EXPECT_NE(out.str().find("adversary: probabilistic:span=1,sigma=0.5"),
            std::string::npos)
      << out.str();

  // The default interval adversary prints no provenance line — the
  // output stays byte-compatible with the historical CLI.
  auto plain = ParseCli({"assess", path, "--tolerance=0.5"});
  ASSERT_TRUE(plain.ok());
  std::ostringstream plain_out;
  ASSERT_TRUE(RunCli(*plain, plain_out).ok());
  EXPECT_EQ(plain_out.str().find("adversary:"), std::string::npos);
}

TEST(CliRunTest, AssessRejectsUnknownAdversary) {
  const std::string path = TempPath("cli_adversary_bad.dat");
  WriteSampleFile(path);
  auto cli = ParseCli({"assess", path, "--adversary=laplace"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  EXPECT_TRUE(RunCli(*cli, out).IsInvalidArgument());

  auto bad_param =
      ParseCli({"assess", path, "--adversary=probabilistic:sigma=-1"});
  ASSERT_TRUE(bad_param.ok());
  std::ostringstream out2;
  EXPECT_TRUE(RunCli(*bad_param, out2).IsInvalidArgument());
}

TEST(CliRunTest, ReportJsonCarriesAdversaryProvenance) {
  const std::string path = TempPath("cli_adversary_json.dat");
  WriteSampleFile(path);
  auto cli = ParseCli(
      {"report", path, "--json", "--adversary=exact_support:k=2"});
  ASSERT_TRUE(cli.ok());
  std::ostringstream out;
  ASSERT_TRUE(RunCli(*cli, out).ok());
  EXPECT_NE(out.str().find("\"adversary\":\"exact_support\""),
            std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find("\"adversary_params\":{\"k\":2}"),
            std::string::npos)
      << out.str();
}

}  // namespace
}  // namespace anonsafe
