#include <gtest/gtest.h>

#include "belief/chain.h"
#include "core/direct_method.h"
#include "data/frequency.h"

namespace anonsafe {
namespace {

ChainSpec PaperFigure4a() {
  // Fig. 4(a): two frequency groups n=(5,3); exclusive e=(3,2); shared
  // s=(3). Expected cracks 74/45, O-estimate 197/120 (Section 5.2).
  ChainSpec spec;
  spec.n = {5, 3};
  spec.e = {3, 2};
  spec.s = {3};
  return spec;
}

// -------------------------------------------------------------- Validation

TEST(ChainValidationTest, PaperExampleIsValid) {
  EXPECT_TRUE(ValidateChain(PaperFigure4a()).ok());
  EXPECT_EQ(PaperFigure4a().num_items(), 8u);
  EXPECT_EQ(PaperFigure4a().length(), 2u);
}

TEST(ChainValidationTest, RejectsMalformedSpecs) {
  ChainSpec empty;
  EXPECT_TRUE(ValidateChain(empty).IsInvalidArgument());

  ChainSpec wrong_lengths;
  wrong_lengths.n = {5, 3};
  wrong_lengths.e = {3};
  wrong_lengths.s = {3};
  EXPECT_TRUE(ValidateChain(wrong_lengths).IsInvalidArgument());

  ChainSpec zero_group;
  zero_group.n = {0, 3};
  zero_group.e = {0, 2};
  zero_group.s = {1};
  EXPECT_TRUE(ValidateChain(zero_group).IsInvalidArgument());

  ChainSpec zero_shared;
  zero_shared.n = {2, 2};
  zero_shared.e = {2, 2};
  zero_shared.s = {0};
  EXPECT_TRUE(ValidateChain(zero_shared).IsInvalidArgument());

  ChainSpec unbalanced;
  unbalanced.n = {5, 3};
  unbalanced.e = {3, 2};
  unbalanced.s = {5};
  EXPECT_TRUE(ValidateChain(unbalanced).IsInvalidArgument());

  // Flow infeasible: group 1 has fewer anon items than exclusive items.
  ChainSpec infeasible;
  infeasible.n = {2, 6};
  infeasible.e = {4, 2};
  infeasible.s = {2};
  EXPECT_TRUE(ValidateChain(infeasible).IsInvalidArgument());
}

TEST(ChainValidationTest, SingleGroupChain) {
  ChainSpec spec;
  spec.n = {4};
  spec.e = {4};
  spec.s = {};
  EXPECT_TRUE(ValidateChain(spec).ok());
  auto exact = ChainExactExpectedCracks(spec);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(*exact, 1.0);  // one complete group: Lemma 1
}

// ------------------------------------------------------------ Lemma 5 and 6

TEST(ChainFormulaTest, PaperExampleExactValue) {
  auto exact = ChainExactExpectedCracks(PaperFigure4a());
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(*exact, 74.0 / 45.0, 1e-12);
}

TEST(ChainFormulaTest, PaperExampleOEstimate) {
  auto oe = ChainOEstimate(PaperFigure4a());
  ASSERT_TRUE(oe.ok());
  EXPECT_NEAR(*oe, 197.0 / 120.0, 1e-12);
}

TEST(ChainFormulaTest, PaperExampleRelativeError) {
  auto err = ChainOEstimateRelativeError(PaperFigure4a());
  ASSERT_TRUE(err.ok());
  EXPECT_NEAR(*err, (74.0 / 45.0 - 197.0 / 120.0) / (74.0 / 45.0), 1e-12);
  EXPECT_GT(*err, 0.0);  // OE slightly underestimates on this chain
}

TEST(ChainFormulaTest, Section52TableRow1) {
  // First row of the Section 5.2 table: n=(20,30,20), e=(10,10,10),
  // s=(20,20) -> percentage error 1.54%.
  ChainSpec spec;
  spec.n = {20, 30, 20};
  spec.e = {10, 10, 10};
  spec.s = {20, 20};
  auto err = ChainOEstimateRelativeError(spec);
  ASSERT_TRUE(err.ok());
  EXPECT_NEAR(*err * 100.0, 1.54, 0.02);
}

TEST(ChainFormulaTest, PurelyExclusiveChainEqualsGroupSum) {
  // No shared groups via s_i >= 1 is required, so emulate near-exclusive:
  // tiny shared groups contribute little.
  ChainSpec spec;
  spec.n = {10, 10};
  spec.e = {9, 10};
  spec.s = {1};
  auto exact = ChainExactExpectedCracks(spec);
  ASSERT_TRUE(exact.ok());
  // Shared item must map to group 1 (L_1 = 10-9 = 1, R_1 = 0):
  // E = 9/10 + 10/10 + 1*1/(1*10) + 0 = 2.0.
  EXPECT_NEAR(*exact, 2.0, 1e-12);
}

// ----------------------------------------------- Realization and detection

TEST(ChainRealizeTest, RealizationMatchesSpecStructure) {
  ChainSpec spec = PaperFigure4a();
  auto realized = RealizeChain(spec, 100);
  ASSERT_TRUE(realized.ok());
  ASSERT_EQ(realized->item_supports.size(), 8u);

  auto table = FrequencyTable::FromSupports(realized->item_supports,
                                            realized->num_transactions);
  ASSERT_TRUE(table.ok());
  FrequencyGroups fg = FrequencyGroups::Build(*table);
  EXPECT_EQ(fg.num_groups(), 2u);
  EXPECT_EQ(fg.group_size(0), 5u);
  EXPECT_EQ(fg.group_size(1), 3u);

  // Belief is compliant.
  auto alpha = realized->belief.ComplianceFraction(*table);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 1.0);

  // Detection recovers the spec.
  auto detected = DetectChain(fg, realized->belief);
  ASSERT_TRUE(detected.ok());
  EXPECT_EQ(detected->n, spec.n);
  EXPECT_EQ(detected->e, spec.e);
  EXPECT_EQ(detected->s, spec.s);
}

TEST(ChainRealizeTest, NeedsEnoughTransactions) {
  EXPECT_TRUE(RealizeChain(PaperFigure4a(), 4).status().IsInvalidArgument());
}

TEST(ChainDetectTest, NonChainIsRejected) {
  // An item spanning three groups breaks the chain property.
  auto table = FrequencyTable::FromSupports({10, 20, 30}, 100);
  ASSERT_TRUE(table.ok());
  FrequencyGroups fg = FrequencyGroups::Build(*table);
  auto wide = BeliefFunction::Create(
      {{0.0, 1.0}, {0.15, 0.25}, {0.25, 0.35}});
  ASSERT_TRUE(wide.ok());
  EXPECT_TRUE(DetectChain(fg, *wide).status().IsNotFound());
}

TEST(ChainDetectTest, DeadItemRejected) {
  auto table = FrequencyTable::FromSupports({10, 20}, 100);
  ASSERT_TRUE(table.ok());
  FrequencyGroups fg = FrequencyGroups::Build(*table);
  auto beta = BeliefFunction::Create({{0.05, 0.15}, {0.5, 0.6}});
  ASSERT_TRUE(beta.ok());
  EXPECT_TRUE(DetectChain(fg, *beta).status().IsNotFound());
}

class LongChainRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LongChainRoundTripTest, RealizeDetectAndClosedFormsAgree) {
  // Chains of length 4-8: realization -> detection round-trips the spec,
  // and the generic O-estimate equals the Section 5.2 closed form.
  const size_t k = GetParam();
  ChainSpec spec;
  spec.n.resize(k);
  spec.e.resize(k);
  spec.s.resize(k - 1);
  // A deterministic feasible pattern: L_i = 2, R_i = 1 throughout.
  size_t prev_r = 0;
  for (size_t i = 0; i < k; ++i) {
    size_t l = (i + 1 < k) ? 2 : 0;
    size_t r = (i + 1 < k) ? 1 : 0;
    spec.e[i] = 1 + (i % 2);
    spec.n[i] = spec.e[i] + prev_r + l;
    if (i + 1 < k) spec.s[i] = l + r;
    prev_r = r;
  }
  ASSERT_TRUE(ValidateChain(spec).ok());

  auto realized = RealizeChain(spec, 40 * k);
  ASSERT_TRUE(realized.ok());
  auto table = FrequencyTable::FromSupports(realized->item_supports,
                                            realized->num_transactions);
  ASSERT_TRUE(table.ok());
  FrequencyGroups fg = FrequencyGroups::Build(*table);
  ASSERT_EQ(fg.num_groups(), k);

  auto detected = DetectChain(fg, realized->belief);
  ASSERT_TRUE(detected.ok());
  EXPECT_EQ(detected->n, spec.n);
  EXPECT_EQ(detected->e, spec.e);
  EXPECT_EQ(detected->s, spec.s);

  // Closed-form OE vs the spec's formula is checked indirectly via the
  // exact-vs-OE error being small and positive-ish on this family.
  auto exact = ChainExactExpectedCracks(spec);
  auto oe = ChainOEstimate(spec);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(oe.ok());
  EXPECT_LE(*oe, *exact + 1e-9);
  EXPECT_GT(*oe, 0.5 * *exact);
}

INSTANTIATE_TEST_SUITE_P(Lengths, LongChainRoundTripTest,
                         ::testing::Values(4u, 5u, 6u, 7u, 8u));

// ----------------------------- Cross-validation against the direct method

class ChainVsDirectTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {
};

TEST_P(ChainVsDirectTest, Lemma5MatchesPermanentExpectation) {
  auto [n1, n2, e1, e2, s1] = GetParam();
  ChainSpec spec;
  spec.n = {static_cast<size_t>(n1), static_cast<size_t>(n2)};
  spec.e = {static_cast<size_t>(e1), static_cast<size_t>(e2)};
  spec.s = {static_cast<size_t>(s1)};
  ASSERT_TRUE(ValidateChain(spec).ok());

  auto realized = RealizeChain(spec, 50);
  ASSERT_TRUE(realized.ok());
  auto table = FrequencyTable::FromSupports(realized->item_supports,
                                            realized->num_transactions);
  ASSERT_TRUE(table.ok());
  FrequencyGroups fg = FrequencyGroups::Build(*table);

  auto exact_formula = ChainExactExpectedCracks(spec);
  auto exact_direct = DirectExpectedCracks(fg, realized->belief);
  ASSERT_TRUE(exact_formula.ok());
  ASSERT_TRUE(exact_direct.ok()) << exact_direct.status();
  EXPECT_NEAR(*exact_formula, *exact_direct, 1e-6)
      << "n=(" << n1 << "," << n2 << ") e=(" << e1 << "," << e2
      << ") s=" << s1;
}

INSTANTIATE_TEST_SUITE_P(
    SmallChains, ChainVsDirectTest,
    ::testing::Values(std::make_tuple(5, 3, 3, 2, 3),   // paper Fig. 4(a)
                      std::make_tuple(2, 2, 1, 1, 2),
                      std::make_tuple(4, 4, 2, 2, 4),
                      std::make_tuple(3, 5, 1, 3, 4),
                      std::make_tuple(6, 2, 5, 1, 2),
                      std::make_tuple(2, 6, 2, 2, 4),
                      std::make_tuple(7, 3, 6, 2, 2)));

TEST(ChainVsDirectTest, Length3ChainMatchesPermanent) {
  ChainSpec spec;
  spec.n = {4, 5, 3};
  spec.e = {2, 2, 1};
  spec.s = {3, 4};
  ASSERT_TRUE(ValidateChain(spec).ok());
  auto realized = RealizeChain(spec, 60);
  ASSERT_TRUE(realized.ok());
  auto table = FrequencyTable::FromSupports(realized->item_supports,
                                            realized->num_transactions);
  ASSERT_TRUE(table.ok());
  FrequencyGroups fg = FrequencyGroups::Build(*table);
  auto formula = ChainExactExpectedCracks(spec);
  auto direct = DirectExpectedCracks(fg, realized->belief);
  ASSERT_TRUE(formula.ok());
  ASSERT_TRUE(direct.ok()) << direct.status();
  EXPECT_NEAR(*formula, *direct, 1e-6);
}

}  // namespace
}  // namespace anonsafe
