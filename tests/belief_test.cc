#include <gtest/gtest.h>

#include <limits>

#include "belief/belief_function.h"
#include "belief/builders.h"
#include "data/frequency.h"
#include "data/sampling.h"
#include "datagen/profile.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

Result<FrequencyTable> Truth() {
  // 6 items over 10 transactions: frequencies .5 .4 .5 .5 .3 .5 (BigMart).
  return FrequencyTable::FromSupports({5, 4, 5, 5, 3, 5}, 10);
}

// ---------------------------------------------------------- BeliefInterval

TEST(BeliefIntervalTest, ContainsAndSubset) {
  BeliefInterval iv{0.2, 0.6};
  EXPECT_TRUE(iv.Contains(0.2));
  EXPECT_TRUE(iv.Contains(0.6));
  EXPECT_TRUE(iv.Contains(0.4));
  EXPECT_FALSE(iv.Contains(0.19));
  EXPECT_FALSE(iv.Contains(0.61));
  EXPECT_FALSE(iv.IsPoint());
  EXPECT_DOUBLE_EQ(iv.Width(), 0.4);
  EXPECT_TRUE(BeliefInterval({0.3, 0.5}).IsSubsetOf(iv));
  EXPECT_FALSE(iv.IsSubsetOf(BeliefInterval{0.3, 0.5}));
  EXPECT_TRUE(BeliefInterval({0.5, 0.5}).IsPoint());
}

// ---------------------------------------------------------- BeliefFunction

TEST(BeliefFunctionTest, CreateValidates) {
  EXPECT_TRUE(BeliefFunction::Create({{0.5, 0.2}})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(BeliefFunction::Create({{-0.1, 0.2}})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(BeliefFunction::Create({{0.5, 1.2}})
                  .status().IsInvalidArgument());
  EXPECT_TRUE(BeliefFunction::Create({{0.0, 1.0}, {0.5, 0.5}}).ok());
}

TEST(BeliefFunctionTest, CreateRejectsNonFiniteBounds) {
  // NaN compares false against every range check, so without an
  // explicit guard a NaN bound would slip through the inverted/range
  // validation and poison every downstream stab query.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (BeliefInterval bad :
       {BeliefInterval{nan, 0.5}, BeliefInterval{0.5, nan},
        BeliefInterval{nan, nan}, BeliefInterval{0.0, inf},
        BeliefInterval{-inf, 1.0}}) {
    auto result = BeliefFunction::Create({{0.2, 0.4}, bad});
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsInvalidArgument());
    // The error names the offending item and the non-finite cause.
    EXPECT_NE(result.status().message().find("non-finite"),
              std::string::npos)
        << result.status().message();
    EXPECT_NE(result.status().message().find("1"), std::string::npos)
        << result.status().message();
  }
}

TEST(BeliefFunctionTest, PointVsIntervalClassification) {
  auto point = BeliefFunction::Create({{0.5, 0.5}, {0.1, 0.1}});
  ASSERT_TRUE(point.ok());
  EXPECT_TRUE(point->IsPointValued());
  EXPECT_FALSE(point->IsIntervalValued());
  auto mixed = BeliefFunction::Create({{0.5, 0.5}, {0.1, 0.2}});
  ASSERT_TRUE(mixed.ok());
  EXPECT_TRUE(mixed->IsIntervalValued());
}

TEST(BeliefFunctionTest, RefinesPartialOrder) {
  auto narrow = BeliefFunction::Create({{0.4, 0.6}, {0.2, 0.3}});
  auto wide = BeliefFunction::Create({{0.3, 0.7}, {0.2, 0.35}});
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_TRUE(narrow->Refines(*wide));
  EXPECT_FALSE(wide->Refines(*narrow));
  EXPECT_TRUE(narrow->Refines(*narrow));  // reflexive
  auto other_size = BeliefFunction::Create({{0.0, 1.0}});
  ASSERT_TRUE(other_size.ok());
  EXPECT_FALSE(narrow->Refines(*other_size));
}

TEST(BeliefFunctionTest, ComplianceFractionAndMask) {
  auto truth = Truth();
  ASSERT_TRUE(truth.ok());
  // Compliant on items 0-2, non-compliant on 3-5.
  auto beta = BeliefFunction::Create({{0.4, 0.6},
                                      {0.4, 0.4},
                                      {0.0, 1.0},
                                      {0.6, 0.7},
                                      {0.0, 0.2},
                                      {0.51, 0.9}});
  ASSERT_TRUE(beta.ok());
  auto alpha = beta->ComplianceFraction(*truth);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 0.5);
  auto mask = beta->ComplianceMask(*truth);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(*mask, (std::vector<bool>{true, true, true, false, false,
                                      false}));
}

TEST(BeliefFunctionTest, DomainMismatchFails) {
  auto truth = Truth();
  ASSERT_TRUE(truth.ok());
  auto beta = BeliefFunction::Create({{0.0, 1.0}});
  ASSERT_TRUE(beta.ok());
  EXPECT_TRUE(beta->ComplianceFraction(*truth)
                  .status().IsInvalidArgument());
}

// ---------------------------------------------------------------- Builders

TEST(BuildersTest, IgnorantBelief) {
  BeliefFunction beta = MakeIgnorantBelief(4);
  EXPECT_EQ(beta.num_items(), 4u);
  for (ItemId x = 0; x < 4; ++x) {
    EXPECT_EQ(beta.interval(x), (BeliefInterval{0.0, 1.0}));
  }
}

TEST(BuildersTest, PointValuedBeliefIsCompliantAndExact) {
  auto truth = Truth();
  ASSERT_TRUE(truth.ok());
  auto beta = MakePointValuedBelief(*truth);
  ASSERT_TRUE(beta.ok());
  EXPECT_TRUE(beta->IsPointValued());
  auto alpha = beta->ComplianceFraction(*truth);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 1.0);
  EXPECT_DOUBLE_EQ(beta->interval(4).lo, 0.3);
}

TEST(BuildersTest, CompliantIntervalBeliefClampsAndContains) {
  auto truth = Truth();
  ASSERT_TRUE(truth.ok());
  auto beta = MakeCompliantIntervalBelief(*truth, 0.45);
  ASSERT_TRUE(beta.ok());
  auto alpha = beta->ComplianceFraction(*truth);
  ASSERT_TRUE(alpha.ok());
  EXPECT_DOUBLE_EQ(*alpha, 1.0);
  // Item 4 (f=0.3): [0, 0.75] after clamping at 0.
  EXPECT_DOUBLE_EQ(beta->interval(4).lo, 0.0);
  EXPECT_NEAR(beta->interval(4).hi, 0.75, 1e-12);
  EXPECT_TRUE(MakeCompliantIntervalBelief(*truth, -0.1)
                  .status().IsInvalidArgument());
}

TEST(BuildersTest, NonCompliantIntervalAlwaysExcludesTruth) {
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    double f = rng.UniformDouble();
    double w = rng.UniformDouble() * rng.UniformDouble();  // skew small
    double lo = std::max(0.0, f - w * rng.UniformDouble());
    double hi = std::min(1.0, lo + w);
    if (hi < f) hi = f;
    BeliefInterval base{lo, hi};
    ASSERT_TRUE(base.Contains(f));
    BeliefInterval out = MakeNonCompliantInterval(base, f, &rng);
    EXPECT_FALSE(out.Contains(f)) << "f=" << f << " [" << out.lo << ","
                                  << out.hi << "]";
    EXPECT_GE(out.lo, 0.0);
    EXPECT_LE(out.hi, 1.0);
    EXPECT_LE(out.lo, out.hi);
  }
}

TEST(BuildersTest, NonCompliantIntervalEdgeFrequencies) {
  Rng rng(19);
  for (double f : {0.0, 1.0}) {
    for (double w : {0.0, 0.2, 0.9}) {
      BeliefInterval base{std::max(0.0, f - w), std::min(1.0, f + w)};
      BeliefInterval out = MakeNonCompliantInterval(base, f, &rng);
      EXPECT_FALSE(out.Contains(f)) << "f=" << f << " w=" << w;
      EXPECT_GE(out.lo, 0.0);
      EXPECT_LE(out.hi, 1.0);
    }
  }
}

TEST(BuildersTest, AlphaCompliantHitsRequestedAlpha) {
  auto truth = FrequencyTable::FromSupports(
      std::vector<SupportCount>(100, 0), 10);
  // Give items distinct supports 1..100 over m=200.
  std::vector<SupportCount> supports(100);
  for (size_t i = 0; i < 100; ++i) supports[i] = i + 1;
  truth = FrequencyTable::FromSupports(supports, 200);
  ASSERT_TRUE(truth.ok());
  auto base = MakeCompliantIntervalBelief(*truth, 0.01);
  ASSERT_TRUE(base.ok());

  Rng rng(23);
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto ab = MakeAlphaCompliantBelief(*base, *truth, alpha, &rng);
    ASSERT_TRUE(ab.ok());
    auto measured = ab->belief.ComplianceFraction(*truth);
    ASSERT_TRUE(measured.ok());
    EXPECT_NEAR(*measured, alpha, 0.01) << "alpha=" << alpha;
    // The mask agrees with actual compliance.
    for (ItemId x = 0; x < 100; ++x) {
      EXPECT_EQ(ab->compliant_mask[x],
                ab->belief.IsCompliantFor(x, truth->frequency(x)));
    }
  }
}

TEST(BuildersTest, AlphaCompliantValidatesInputs) {
  auto truth = Truth();
  ASSERT_TRUE(truth.ok());
  auto base = MakeCompliantIntervalBelief(*truth, 0.05);
  ASSERT_TRUE(base.ok());
  Rng rng(1);
  EXPECT_TRUE(MakeAlphaCompliantBelief(*base, *truth, -0.1, &rng)
                  .status().IsInvalidArgument());
  EXPECT_TRUE(MakeAlphaCompliantBelief(*base, *truth, 1.1, &rng)
                  .status().IsInvalidArgument());
  // Non-compliant base is rejected.
  auto bad = BeliefFunction::Create(
      std::vector<BeliefInterval>(6, BeliefInterval{0.9, 1.0}));
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(MakeAlphaCompliantBelief(*bad, *truth, 0.5, &rng)
                  .status().IsFailedPrecondition());
}

TEST(BuildersTest, BeliefFromSampleUsesSampledMedianGap) {
  // A database whose 50% sample still has multiple groups.
  Rng rng(31);
  auto profile = FrequencyProfile::Create(
      400, {{40, 3}, {120, 2}, {200, 2}, {360, 1}});
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());
  auto sample = SampleFraction(*db, 0.5, &rng);
  ASSERT_TRUE(sample.ok());

  double delta = -1.0;
  auto beta = MakeBeliefFromSample(*sample, &delta);
  ASSERT_TRUE(beta.ok());
  EXPECT_GT(delta, 0.0);
  // Intervals centered on sampled frequencies with half-width delta.
  auto sample_table = FrequencyTable::Compute(*sample);
  ASSERT_TRUE(sample_table.ok());
  for (ItemId x = 0; x < beta->num_items(); ++x) {
    double f = sample_table->frequency(x);
    EXPECT_TRUE(beta->IsCompliantFor(x, f));
    EXPECT_NEAR(beta->interval(x).hi - beta->interval(x).lo,
                std::min(1.0, f + delta) - std::max(0.0, f - delta), 1e-12);
  }

  double avg_delta = -1.0;
  auto avg = MakeBeliefFromSampleAverageGap(*sample, &avg_delta);
  ASSERT_TRUE(avg.ok());
  // The mean gap is at least the median gap on skewed data.
  EXPECT_GE(avg_delta, delta);
}

}  // namespace
}  // namespace anonsafe
