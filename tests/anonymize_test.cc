#include <gtest/gtest.h>

#include "anonymize/anonymizer.h"
#include "anonymize/crack.h"
#include "data/frequency.h"
#include "datagen/quest.h"
#include "mining/miner.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

// -------------------------------------------------------------- Anonymizer

TEST(AnonymizerTest, IdentityMapsToSelf) {
  Anonymizer id = Anonymizer::Identity(5);
  for (ItemId x = 0; x < 5; ++x) {
    EXPECT_EQ(id.Anonymize(x), x);
    EXPECT_EQ(id.Deanonymize(x), x);
  }
}

TEST(AnonymizerTest, RandomIsBijective) {
  Rng rng(3);
  Anonymizer a = Anonymizer::Random(100, &rng);
  std::vector<bool> hit(100, false);
  for (ItemId x = 0; x < 100; ++x) {
    ItemId y = a.Anonymize(x);
    ASSERT_LT(y, 100u);
    EXPECT_FALSE(hit[y]);
    hit[y] = true;
    EXPECT_EQ(a.Deanonymize(y), x);
  }
}

TEST(AnonymizerTest, FromMappingValidates) {
  EXPECT_TRUE(Anonymizer::FromMapping({0, 0}).status().IsInvalidArgument());
  EXPECT_TRUE(Anonymizer::FromMapping({0, 5}).status().IsInvalidArgument());
  auto ok = Anonymizer::FromMapping({2, 0, 1});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->Anonymize(0), 2u);
  EXPECT_EQ(ok->Deanonymize(2), 0u);
}

TEST(AnonymizerTest, DatabaseAnonymizationPreservesFrequencies) {
  // The core property the attack model rests on (Section 2.1): observed
  // frequencies of anonymized items equal the true frequencies of their
  // originals.
  Rng rng(11);
  QuestParams params;
  params.num_items = 30;
  params.num_transactions = 200;
  params.seed = 9;
  auto db = GenerateQuestDatabase(params);
  ASSERT_TRUE(db.ok());
  Anonymizer mapping = Anonymizer::Random(30, &rng);
  auto anon_db = mapping.AnonymizeDatabase(*db);
  ASSERT_TRUE(anon_db.ok());

  auto orig_table = FrequencyTable::Compute(*db);
  auto anon_table = FrequencyTable::Compute(*anon_db);
  ASSERT_TRUE(orig_table.ok());
  ASSERT_TRUE(anon_table.ok());
  for (ItemId x = 0; x < 30; ++x) {
    EXPECT_EQ(orig_table->support(x),
              anon_table->support(mapping.Anonymize(x)));
  }
}

TEST(AnonymizerTest, DomainMismatchFails) {
  Database db(3);
  ASSERT_TRUE(db.AddTransaction({0}).ok());
  Anonymizer a = Anonymizer::Identity(4);
  EXPECT_TRUE(a.AnonymizeDatabase(db).status().IsInvalidArgument());
}

TEST(AnonymizerTest, ItemsetRoundTrip) {
  auto a = Anonymizer::FromMapping({3, 2, 1, 0});
  ASSERT_TRUE(a.ok());
  Itemset s = {0, 3};
  Itemset anon = a->AnonymizeItemset(s);
  EXPECT_EQ(anon, (Itemset{0, 3}));  // {3, 0} sorted
  EXPECT_EQ(a->DeanonymizeItemset(anon), s);
}

TEST(AnonymizerTest, MiningCommutesWithAnonymization) {
  // Mine(anonymize(D)) deanonymized == Mine(D): anonymization does not
  // perturb data characteristics (the paper's selling point, Section 1).
  QuestParams params;
  params.num_items = 25;
  params.num_transactions = 150;
  params.seed = 21;
  auto db = GenerateQuestDatabase(params);
  ASSERT_TRUE(db.ok());
  Rng rng(13);
  Anonymizer mapping = Anonymizer::Random(25, &rng);
  auto anon_db = mapping.AnonymizeDatabase(*db);
  ASSERT_TRUE(anon_db.ok());

  MiningOptions opt;
  opt.min_support = 0.08;
  auto direct = MineFPGrowth(*db, opt);
  auto via_anon = MineFPGrowth(*anon_db, opt);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_anon.ok());
  auto mapped_back = mapping.DeanonymizePatterns(*via_anon);
  EXPECT_EQ(*direct, mapped_back);
}

// ------------------------------------------------------------ CrackMapping

TEST(CrackMappingTest, ValidationRules) {
  EXPECT_TRUE(ValidateCrackMapping({{0, 1}}, 3).IsInvalidArgument());
  EXPECT_TRUE(ValidateCrackMapping({{0, 0}}, 2).IsInvalidArgument());
  EXPECT_TRUE(ValidateCrackMapping({{0, 9}}, 2).IsInvalidArgument());
  EXPECT_TRUE(ValidateCrackMapping({{1, 0}}, 2).ok());
  EXPECT_TRUE(ValidateCrackMapping({{kInvalidItem, 0}}, 2).ok());
}

TEST(CrackMappingTest, NumAssigned) {
  CrackMapping c{{kInvalidItem, 2, kInvalidItem, 0}};
  EXPECT_EQ(c.num_items(), 4u);
  EXPECT_EQ(c.num_assigned(), 2u);
}

TEST(CrackMappingTest, CountCracksAgainstTruth) {
  // Mapping: original x -> anonymized forward[x].
  auto truth = Anonymizer::FromMapping({2, 0, 1});  // 0->2, 1->0, 2->1
  ASSERT_TRUE(truth.ok());
  // Perfect crack: guess_of_anon[a] = Deanonymize(a).
  CrackMapping perfect{{1, 2, 0}};
  auto cracks = CountCracks(perfect, *truth);
  ASSERT_TRUE(cracks.ok());
  EXPECT_EQ(*cracks, 3u);

  // One correct guess only (anon 0 is truly item 1).
  CrackMapping partial{{1, 0, 2}};
  cracks = CountCracks(partial, *truth);
  ASSERT_TRUE(cracks.ok());
  EXPECT_EQ(*cracks, 1u);

  // Unassigned guesses are never cracks.
  CrackMapping sparse{{1, kInvalidItem, kInvalidItem}};
  cracks = CountCracks(sparse, *truth);
  ASSERT_TRUE(cracks.ok());
  EXPECT_EQ(*cracks, 1u);
}

TEST(CrackMappingTest, CountCracksOfInterest) {
  auto truth = Anonymizer::FromMapping({0, 1, 2, 3});
  ASSERT_TRUE(truth.ok());
  CrackMapping all_correct{{0, 1, 2, 3}};
  std::vector<bool> interest = {true, false, true, false};
  auto cracks = CountCracksOfInterest(all_correct, *truth, interest);
  ASSERT_TRUE(cracks.ok());
  EXPECT_EQ(*cracks, 2u);

  std::vector<bool> bad_mask = {true};
  EXPECT_TRUE(CountCracksOfInterest(all_correct, *truth, bad_mask)
                  .status().IsInvalidArgument());
}

TEST(CrackMappingTest, SizeMismatchFails) {
  auto truth = Anonymizer::FromMapping({0, 1});
  ASSERT_TRUE(truth.ok());
  CrackMapping wrong{{0}};
  EXPECT_TRUE(CountCracks(wrong, *truth).status().IsInvalidArgument());
}

}  // namespace
}  // namespace anonsafe
