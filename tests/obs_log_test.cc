#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "util/json.h"

namespace anonsafe {
namespace {

/// Captures log lines through the test sink and restores the logger's
/// global state (level, sink, rate limit) when the test ends.
class LogCapture {
 public:
  LogCapture() {
    previous_level_ = obs::GetLogLevel();
    obs::SetLogSinkForTest([this](const std::string& line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.push_back(line);
    });
  }
  ~LogCapture() {
    obs::SetLogSinkForTest(nullptr);
    obs::SetLogLevel(previous_level_);
    obs::SetLogRateLimit(50.0, 100.0);
  }

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }
  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
  obs::LogLevel previous_level_;
};

TEST(LogLevelTest, ParseRoundTrips) {
  for (auto level : {obs::LogLevel::kError, obs::LogLevel::kWarn,
                     obs::LogLevel::kInfo, obs::LogLevel::kDebug}) {
    Result<obs::LogLevel> parsed = obs::ParseLogLevel(obs::LogLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), level);
  }
  EXPECT_FALSE(obs::ParseLogLevel("loud").ok());
  EXPECT_FALSE(obs::ParseLogLevel("").ok());
}

TEST(LogTest, MinimumLevelFilters) {
  LogCapture capture;
  obs::SetLogLevel(obs::LogLevel::kWarn);
  EXPECT_TRUE(obs::LogEnabled(obs::LogLevel::kError));
  EXPECT_TRUE(obs::LogEnabled(obs::LogLevel::kWarn));
  EXPECT_FALSE(obs::LogEnabled(obs::LogLevel::kInfo));
  EXPECT_FALSE(obs::LogEnabled(obs::LogLevel::kDebug));

  obs::Log(obs::LogLevel::kError, "boom");
  obs::Log(obs::LogLevel::kInfo, "chatty");
  obs::Log(obs::LogLevel::kDebug, "noise");
  ASSERT_EQ(capture.count(), 1u);
  EXPECT_NE(capture.lines()[0].find("\"event\":\"boom\""),
            std::string::npos);
}

TEST(LogTest, LineIsValidJsonWithOrderedFields) {
  LogCapture capture;
  obs::SetLogLevel(obs::LogLevel::kInfo);
  obs::Log(obs::LogLevel::kInfo, "serve.request",
           {{"verb", json::Value("assess_risk")},
            {"exec_ms", json::Value(12.5)},
            {"ok", json::Value(true)}});
  ASSERT_EQ(capture.count(), 1u);
  const std::string line = capture.lines()[0];

  Result<json::Value> parsed = json::Value::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const json::Value& v = parsed.value();
  EXPECT_TRUE(v.Find("ts") != nullptr && v.Find("ts")->is_number());
  EXPECT_EQ(v.GetStringOr("level", "").value(), "info");
  EXPECT_EQ(v.GetStringOr("event", "").value(), "serve.request");
  EXPECT_EQ(v.GetStringOr("verb", "").value(), "assess_risk");
  EXPECT_EQ(v.GetNumberOr("exec_ms", 0).value(), 12.5);
  EXPECT_EQ(v.GetBoolOr("ok", false).value(), true);
  // Insertion order: ts, level, event, then the caller's fields in order.
  ASSERT_GE(v.members().size(), 6u);
  EXPECT_EQ(v.members()[0].first, "ts");
  EXPECT_EQ(v.members()[1].first, "level");
  EXPECT_EQ(v.members()[2].first, "event");
  EXPECT_EQ(v.members()[3].first, "verb");
}

TEST(LogTest, RateLimiterSuppressesAndReports) {
  LogCapture capture;
  obs::SetLogLevel(obs::LogLevel::kInfo);
  // No refill to speak of; burst of 3 lines per event key.
  obs::SetLogRateLimit(1e-9, 3.0);
  for (int i = 0; i < 10; ++i) {
    obs::Log(obs::LogLevel::kInfo, "flood", {{"i", json::Value(int64_t{i})}});
  }
  // Distinct events have their own buckets and are unaffected.
  obs::Log(obs::LogLevel::kInfo, "other");
  ASSERT_EQ(capture.count(), 4u);

  // Resetting the limit refills buckets; the next "flood" line reports how
  // many lines were dropped.
  obs::SetLogRateLimit(1e-9, 3.0);
  obs::Log(obs::LogLevel::kInfo, "flood");
  ASSERT_EQ(capture.count(), 5u);
  Result<json::Value> parsed = json::Value::Parse(capture.lines()[4]);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().GetNumberOr("suppressed", 0).value(), 7.0);
}

TEST(LogTest, ErrorsBypassNothingButStillCount) {
  LogCapture capture;
  obs::SetLogLevel(obs::LogLevel::kError);
  obs::SetLogRateLimit(1e-9, 1.0);
  obs::Log(obs::LogLevel::kError, "err");
  obs::Log(obs::LogLevel::kError, "err");
  // Even errors obey the bucket — a crash loop must not melt the sink.
  EXPECT_EQ(capture.count(), 1u);
}

TEST(LogTest, ConcurrentWritersEmitWholeLines) {
  LogCapture capture;
  obs::SetLogLevel(obs::LogLevel::kInfo);
  obs::SetLogRateLimit(1e9, 1e9);  // effectively unlimited
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::Log(obs::LogLevel::kInfo, "spin",
                 {{"thread", json::Value(int64_t{t})},
                  {"i", json::Value(int64_t{i})}});
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<std::string> lines = capture.lines();
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads * kPerThread));
  for (const std::string& line : lines) {
    Result<json::Value> parsed = json::Value::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
  }
}

TEST(LogTest, ConcurrentWritersUnderContention) {
  // TSan-focused: many threads racing the same bucket with suppression
  // kicking in. Assertions are minimal; the point is no data races.
  LogCapture capture;
  obs::SetLogLevel(obs::LogLevel::kInfo);
  obs::SetLogRateLimit(1e-9, 16.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 500; ++i) {
        obs::Log(obs::LogLevel::kInfo, "contended");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(capture.count(), 16u);
  EXPECT_GE(capture.count(), 1u);
}

TEST(LogTest, SetLogFileAppendsJsonLines) {
  std::string path = testing::TempDir() + "/anonsafe_log_test.jsonl";
  std::remove(path.c_str());

  obs::LogLevel previous = obs::GetLogLevel();
  obs::SetLogLevel(obs::LogLevel::kInfo);
  ASSERT_TRUE(obs::SetLogFile(path).ok());
  obs::Log(obs::LogLevel::kInfo, "to_file", {{"n", json::Value(int64_t{1})}});
  obs::Log(obs::LogLevel::kInfo, "to_file", {{"n", json::Value(int64_t{2})}});
  ASSERT_TRUE(obs::SetLogFile("").ok());  // restore stderr
  obs::SetLogLevel(previous);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    Result<json::Value> parsed = json::Value::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(parsed.value().GetStringOr("event", "").value(), "to_file");
    ++count;
  }
  EXPECT_EQ(count, 2);
  std::remove(path.c_str());
}

TEST(LogTest, UnopenableLogFileIsAnError) {
  EXPECT_FALSE(obs::SetLogFile("/nonexistent-dir/never/log.jsonl").ok());
}

}  // namespace
}  // namespace anonsafe
