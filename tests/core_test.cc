#include <gtest/gtest.h>

#include "belief/builders.h"
#include "belief/chain.h"
#include "core/alpha_sweep.h"
#include "core/exact_formulas.h"
#include "core/oestimate.h"
#include "core/recipe.h"
#include "core/risk_report.h"
#include "core/similarity.h"
#include "data/frequency.h"
#include "datagen/profile.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

Result<FrequencyTable> BigMartTable() {
  return FrequencyTable::FromSupports({5, 4, 5, 5, 3, 5}, 10);
}

// ----------------------------------------------------------- Lemmas 1 to 4

TEST(ExactFormulasTest, Lemma1) {
  EXPECT_DOUBLE_EQ(IgnorantExpectedCracks(0), 0.0);
  EXPECT_DOUBLE_EQ(IgnorantExpectedCracks(1), 1.0);
  EXPECT_DOUBLE_EQ(IgnorantExpectedCracks(1000000), 1.0);
}

TEST(ExactFormulasTest, Lemma2) {
  EXPECT_DOUBLE_EQ(IgnorantExpectedCracksOfInterest(100, 25), 0.25);
  EXPECT_DOUBLE_EQ(IgnorantExpectedCracksOfInterest(100, 0), 0.0);
  EXPECT_DOUBLE_EQ(IgnorantExpectedCracksOfInterest(100, 100), 1.0);
}

TEST(ExactFormulasTest, Lemma3OnBigMart) {
  auto table = BigMartTable();
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  EXPECT_DOUBLE_EQ(PointValuedExpectedCracks(groups), 3.0);
}

TEST(ExactFormulasTest, Lemma4OnBigMart) {
  auto table = BigMartTable();
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  // Interested in items 1 (singleton group -> certain crack) and 0 (one
  // of four in the 0.5 group -> 1/4).
  std::vector<bool> interest = {true, true, false, false, false, false};
  auto expected = PointValuedExpectedCracksOfInterest(groups, interest);
  ASSERT_TRUE(expected.ok());
  EXPECT_DOUBLE_EQ(*expected, 1.0 + 0.25);

  std::vector<bool> wrong(2, true);
  EXPECT_TRUE(PointValuedExpectedCracksOfInterest(groups, wrong)
                  .status().IsInvalidArgument());
}

// --------------------------------------------------------------- OEstimate

TEST(OEstimateTest, IgnorantBeliefGivesSumOverN) {
  // Without propagation, every outdegree is n: OE = n * (1/n) = 1,
  // matching Lemma 1 exactly on the complete graph.
  auto table = BigMartTable();
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  OEstimateOptions opt;
  opt.propagate = false;
  auto oe = ComputeOEstimate(groups, MakeIgnorantBelief(6), opt);
  ASSERT_TRUE(oe.ok());
  EXPECT_NEAR(oe->expected_cracks, 1.0, 1e-12);
  EXPECT_NEAR(oe->fraction, 1.0 / 6.0, 1e-12);
}

TEST(OEstimateTest, PointValuedBeliefGivesLemma3) {
  // Point-valued: outdegree of x = size of its own group, so
  // OE = sum over groups of n_i * (1/n_i) = g.
  auto table = BigMartTable();
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = MakePointValuedBelief(*table);
  ASSERT_TRUE(beta.ok());
  OEstimateOptions opt;
  opt.propagate = false;
  auto oe = ComputeOEstimate(groups, *beta, opt);
  ASSERT_TRUE(oe.ok());
  EXPECT_NEAR(oe->expected_cracks, 3.0, 1e-12);
}

TEST(OEstimateTest, ChainClosedFormMatches) {
  // On a realized chain, the generic O-estimate (without propagation)
  // must equal the Section 5.2 closed form.
  ChainSpec spec;
  spec.n = {5, 3};
  spec.e = {3, 2};
  spec.s = {3};
  auto realized = RealizeChain(spec, 120);
  ASSERT_TRUE(realized.ok());
  auto table = FrequencyTable::FromSupports(realized->item_supports,
                                            realized->num_transactions);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);

  OEstimateOptions opt;
  opt.propagate = false;
  auto generic = ComputeOEstimate(groups, realized->belief, opt);
  auto closed = ChainOEstimate(spec);
  ASSERT_TRUE(generic.ok());
  ASSERT_TRUE(closed.ok());
  EXPECT_NEAR(generic->expected_cracks, *closed, 1e-12);
  EXPECT_NEAR(generic->expected_cracks, 197.0 / 120.0, 1e-12);
}

TEST(OEstimateTest, PropagationTurnsStaircaseIntoFourCracks) {
  // Figure 6(a): naive OE is 25/12; with propagation it is exactly 4.
  auto table = FrequencyTable::FromSupports({10, 20, 30, 40}, 100);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto staircase = BeliefFunction::Create({{0.05, 0.15},
                                           {0.05, 0.25},
                                           {0.05, 0.35},
                                           {0.05, 0.45}});
  ASSERT_TRUE(staircase.ok());

  OEstimateOptions no_prop;
  no_prop.propagate = false;
  auto naive = ComputeOEstimate(groups, *staircase, no_prop);
  ASSERT_TRUE(naive.ok());
  EXPECT_NEAR(naive->expected_cracks, 25.0 / 12.0, 1e-12);

  auto propagated = ComputeOEstimate(groups, *staircase);
  ASSERT_TRUE(propagated.ok());
  EXPECT_NEAR(propagated->expected_cracks, 4.0, 1e-12);
  EXPECT_EQ(propagated->forced_items, 4u);
  EXPECT_GT(propagated->propagation_passes, 0u);
}

TEST(OEstimateTest, DeadItemsContributeZero) {
  auto table = FrequencyTable::FromSupports({10, 20}, 100);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = BeliefFunction::Create({{0.05, 0.25}, {0.5, 0.6}});
  ASSERT_TRUE(beta.ok());
  OEstimateOptions opt;
  opt.propagate = false;
  auto oe = ComputeOEstimate(groups, *beta, opt);
  ASSERT_TRUE(oe.ok());
  EXPECT_EQ(oe->dead_items, 1u);
  EXPECT_TRUE(oe->contradiction);
  EXPECT_NEAR(oe->expected_cracks, 0.5, 1e-12);  // only item 0: 1/2
}

TEST(OEstimateTest, RestrictedSumsOnlyIncludedItems) {
  auto table = BigMartTable();
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto beta = MakePointValuedBelief(*table);
  ASSERT_TRUE(beta.ok());
  OEstimateOptions opt;
  opt.propagate = false;
  // Only the singleton-group items 1 (f=.4) and 4 (f=.3).
  std::vector<bool> include = {false, true, false, false, true, false};
  auto oe = ComputeOEstimateRestricted(groups, *beta, include, opt);
  ASSERT_TRUE(oe.ok());
  EXPECT_NEAR(oe->expected_cracks, 2.0, 1e-12);
  std::vector<bool> bad(3, true);
  EXPECT_TRUE(ComputeOEstimateRestricted(groups, *beta, bad, opt)
                  .status().IsInvalidArgument());
}

TEST(OEstimateTest, MonotonicityLemma8) {
  // Wider intervals => smaller OE (without propagation, per Lemma 8).
  Rng rng(3);
  auto profile = FrequencyProfile::Create(
      1000, {{10, 3}, {50, 2}, {200, 4}, {400, 1}, {700, 2}});
  ASSERT_TRUE(profile.ok());
  auto table = FrequencyTable::FromSupports(profile->ItemSupports(), 1000);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);

  OEstimateOptions opt;
  opt.propagate = false;
  double prev = 1e18;
  for (double delta : {0.0, 0.01, 0.05, 0.1, 0.3, 1.0}) {
    auto beta = MakeCompliantIntervalBelief(*table, delta);
    ASSERT_TRUE(beta.ok());
    auto oe = ComputeOEstimate(groups, *beta, opt);
    ASSERT_TRUE(oe.ok());
    EXPECT_LE(oe->expected_cracks, prev + 1e-12) << "delta=" << delta;
    prev = oe->expected_cracks;
  }
}

// -------------------------------------------------------------- AlphaSweep

TEST(AlphaSweepTest, EndpointsAndMonotonicity) {
  auto profile = FrequencyProfile::Create(
      500, {{5, 2}, {20, 3}, {80, 1}, {150, 2}, {300, 2}});
  ASSERT_TRUE(profile.ok());
  auto table = FrequencyTable::FromSupports(profile->ItemSupports(), 500);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto base = MakeCompliantIntervalBelief(*table, groups.MedianGap());
  ASSERT_TRUE(base.ok());

  auto sweep = AlphaCompliancySweep::Create(*table, *base, 5, 99);
  ASSERT_TRUE(sweep.ok());

  auto at_zero = sweep->AverageOEstimate(groups, 0.0);
  ASSERT_TRUE(at_zero.ok());
  EXPECT_NEAR(*at_zero, 0.0, 1e-12);

  auto full = ComputeOEstimate(groups, *base);
  auto at_one = sweep->AverageOEstimate(groups, 1.0);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(at_one.ok());
  EXPECT_NEAR(*at_one, full->expected_cracks, 1e-9);

  double prev = -1.0;
  for (double alpha : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto avg = sweep->AverageOEstimate(groups, alpha);
    ASSERT_TRUE(avg.ok());
    EXPECT_GE(*avg, prev - 1e-9) << "alpha=" << alpha;
    prev = *avg;
  }
}

TEST(AlphaSweepTest, BeliefAtProducesRequestedCompliance) {
  auto table = BigMartTable();
  ASSERT_TRUE(table.ok());
  auto base = MakeCompliantIntervalBelief(*table, 0.05);
  ASSERT_TRUE(base.ok());
  auto sweep = AlphaCompliancySweep::Create(*table, *base, 3, 5);
  ASSERT_TRUE(sweep.ok());
  auto ab = sweep->BeliefAt(0, 0.5);
  ASSERT_TRUE(ab.ok());
  auto measured = ab->belief.ComplianceFraction(*table);
  ASSERT_TRUE(measured.ok());
  EXPECT_NEAR(*measured, 0.5, 1e-12);
  // Nested: items compliant at 0.3 are compliant at 0.8.
  auto lo = sweep->BeliefAt(1, 0.3);
  auto hi = sweep->BeliefAt(1, 0.8);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  for (size_t x = 0; x < 6; ++x) {
    if (lo->compliant_mask[x]) {
      EXPECT_TRUE(hi->compliant_mask[x]);
    }
  }
  // A run index past the sweep is an error, not UB.
  EXPECT_TRUE(sweep->BeliefAt(3, 0.5).status().IsOutOfRange());
}

TEST(AlphaSweepTest, ValidatesInputs) {
  auto table = BigMartTable();
  ASSERT_TRUE(table.ok());
  auto base = MakeCompliantIntervalBelief(*table, 0.05);
  ASSERT_TRUE(base.ok());
  EXPECT_TRUE(AlphaCompliancySweep::Create(*table, *base, 0, 1)
                  .status().IsInvalidArgument());
  auto bad = BeliefFunction::Create(
      std::vector<BeliefInterval>(6, BeliefInterval{0.95, 1.0}));
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(AlphaCompliancySweep::Create(*table, *bad, 3, 1)
                  .status().IsFailedPrecondition());
}

// ------------------------------------------------------------------ Recipe

TEST(RecipeTest, DisclosesWhenGroupsWithinTolerance) {
  // 3 groups, 30 items, tolerance 0.2 -> budget 6 >= g=3: disclose.
  std::vector<ProfileGroup> pg = {{10, 10}, {50, 10}, {90, 10}};
  auto profile = FrequencyProfile::Create(100, pg);
  ASSERT_TRUE(profile.ok());
  auto table = FrequencyTable::FromSupports(profile->ItemSupports(), 100);
  ASSERT_TRUE(table.ok());
  RecipeOptions opt;
  opt.tolerance = 0.2;
  auto result = AssessRisk(*table, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->decision, RecipeDecision::kDiscloseAtPointValued);
  EXPECT_EQ(result->num_groups, 3u);
  EXPECT_DOUBLE_EQ(result->alpha_max, 1.0);
  EXPECT_FALSE(result->Summary().empty());
}

TEST(RecipeTest, AlphaBoundWhenFullComplianceTooRisky) {
  // All singleton groups: point-valued cracks everything; with small
  // tolerance the recipe must fall through to the alpha search.
  std::vector<ProfileGroup> pg;
  for (SupportCount s = 1; s <= 20; ++s) pg.push_back({s * 40, 1});
  auto profile = FrequencyProfile::Create(1000, pg);
  ASSERT_TRUE(profile.ok());
  auto table = FrequencyTable::FromSupports(profile->ItemSupports(), 1000);
  ASSERT_TRUE(table.ok());
  RecipeOptions opt;
  opt.tolerance = 0.3;
  opt.exec.runs = 3;
  auto result = AssessRisk(*table, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->decision, RecipeDecision::kAlphaBound);
  EXPECT_GT(result->alpha_max, 0.0);
  EXPECT_LT(result->alpha_max, 1.0);
  // At alpha_max the average OE is within budget.
  auto base = MakeCompliantIntervalBelief(*table, result->delta_med);
  ASSERT_TRUE(base.ok());
  auto sweep = AlphaCompliancySweep::Create(*table, *base, 3,
                                            opt.exec.seed);
  ASSERT_TRUE(sweep.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto at_max = sweep->AverageOEstimate(groups, result->alpha_max);
  ASSERT_TRUE(at_max.ok());
  EXPECT_LE(*at_max, result->crack_budget + 1e-9);
}

TEST(RecipeTest, ValidatesOptions) {
  auto table = BigMartTable();
  ASSERT_TRUE(table.ok());
  RecipeOptions opt;
  opt.tolerance = 0.0;
  EXPECT_TRUE(AssessRisk(*table, opt).status().IsInvalidArgument());
  opt.tolerance = 0.1;
  opt.exec.runs = 0;
  EXPECT_TRUE(AssessRisk(*table, opt).status().IsInvalidArgument());
}

TEST(RecipeTest, DecisionToString) {
  EXPECT_STREQ(ToString(RecipeDecision::kDiscloseAtPointValued),
               "DiscloseAtPointValued");
  EXPECT_STREQ(ToString(RecipeDecision::kDiscloseAtInterval),
               "DiscloseAtInterval");
  EXPECT_STREQ(ToString(RecipeDecision::kAlphaBound), "AlphaBound");
}

// -------------------------------------------------------------- Similarity

TEST(SimilarityTest, CurveShapeOnSyntheticData) {
  Rng rng(13);
  auto profile = FrequencyProfile::Create(
      2000, {{20, 5}, {100, 3}, {300, 3}, {700, 2}, {1200, 2}});
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());

  SimilarityOptions opt;
  opt.sample_fractions = {0.1, 0.5, 0.9};
  opt.samples_per_fraction = 5;
  auto curve = SimilarityBySampling(*db, opt);
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->size(), 3u);
  for (const auto& point : *curve) {
    EXPECT_GE(point.mean_alpha, 0.0);
    EXPECT_LE(point.mean_alpha, 1.0);
    EXPECT_GT(point.mean_groups, 0.0);
  }
  // Large samples are very similar data: compliancy should be high.
  EXPECT_GT(curve->back().mean_alpha, 0.6);
}

TEST(SimilarityTest, AverageGapSaturatesCompliancy) {
  // Section 7.4: with the sampled-average width, compliancy is near 1
  // regardless of sample size.
  Rng rng(17);
  auto profile = FrequencyProfile::Create(
      2000, {{20, 5}, {100, 3}, {300, 3}, {700, 2}, {1900, 1}});
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());
  SimilarityOptions opt;
  opt.sample_fractions = {0.1, 0.5};
  opt.samples_per_fraction = 5;
  opt.use_average_gap = true;
  auto curve = SimilarityBySampling(*db, opt);
  ASSERT_TRUE(curve.ok());
  for (const auto& point : *curve) {
    EXPECT_GT(point.mean_alpha, 0.85) << "p=" << point.sample_fraction;
  }
}

TEST(SimilarityTest, ValidatesOptions) {
  Database db(2);
  ASSERT_TRUE(db.AddTransaction({0}).ok());
  SimilarityOptions opt;
  opt.samples_per_fraction = 0;
  EXPECT_TRUE(SimilarityBySampling(db, opt).status().IsInvalidArgument());
  opt = SimilarityOptions{};
  opt.sample_fractions = {};
  EXPECT_TRUE(SimilarityBySampling(db, opt).status().IsInvalidArgument());
  opt = SimilarityOptions{};
  opt.sample_fractions = {1.5};
  EXPECT_TRUE(SimilarityBySampling(db, opt).status().IsInvalidArgument());
}

// -------------------------------------------------------------- RiskReport

TEST(RiskReportTest, EndToEndOnSyntheticData) {
  Rng rng(19);
  auto profile = FrequencyProfile::Create(
      1500, {{15, 4}, {90, 2}, {250, 3}, {600, 2}, {1000, 1}});
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());

  RiskReportOptions opt;
  opt.similarity.sample_fractions = {0.2, 0.8};
  opt.similarity.samples_per_fraction = 3;
  auto report = BuildRiskReport(*db, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_items, 12u);
  EXPECT_EQ(report->num_transactions, 1500u);
  EXPECT_EQ(report->num_groups, 5u);
  EXPECT_DOUBLE_EQ(report->ignorant_expected_cracks, 1.0);
  EXPECT_DOUBLE_EQ(report->point_valued_expected_cracks, 5.0);
  std::string text = report->ToText();
  EXPECT_NE(text.find("Disclosure Risk Report"), std::string::npos);
  EXPECT_NE(text.find("Recipe (Fig. 8) decision"), std::string::npos);
  EXPECT_NE(text.find("Similarity by sampling"), std::string::npos);
}

TEST(RiskReportTest, MarkdownRendering) {
  Rng rng(29);
  auto profile = FrequencyProfile::Create(300, {{30, 3}, {200, 3}});
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());
  RiskReportOptions opt;
  opt.similarity.sample_fractions = {0.5};
  opt.similarity.samples_per_fraction = 2;
  auto report = BuildRiskReport(*db, opt);
  ASSERT_TRUE(report.ok());
  std::string md = report->ToMarkdown();
  EXPECT_NE(md.find("## Disclosure risk report"), std::string::npos);
  EXPECT_NE(md.find("| items (n) | 6 |"), std::string::npos);
  EXPECT_NE(md.find("**Recipe decision (Fig. 8):**"), std::string::npos);
  EXPECT_NE(md.find("| sample % |"), std::string::npos);
  EXPECT_EQ(md.find("%%"), std::string::npos);
}

TEST(RiskReportTest, WithoutSimilarityCurve) {
  Rng rng(23);
  auto profile = FrequencyProfile::Create(300, {{30, 3}, {200, 3}});
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());
  RiskReportOptions opt;
  opt.include_similarity_curve = false;
  auto report = BuildRiskReport(*db, opt);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->similarity_curve.empty());
  EXPECT_EQ(report->ToText().find("Similarity by sampling"),
            std::string::npos);
}

}  // namespace
}  // namespace anonsafe
