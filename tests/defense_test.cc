#include <gtest/gtest.h>

#include "core/recipe.h"
#include "data/frequency.h"
#include "datagen/profile.h"
#include "defense/group_merge.h"
#include "defense/scheme.h"
#include "mining/miner.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

// The tests drive the defense through the registry, exactly as callers
// do since the free-function wrappers were retired.
Result<defense::DefensePlan> MergePlanBelowGap(const FrequencyTable& table,
                                               double gap) {
  defense::DefenseParams params;
  params.Set("gap", gap);
  return defense::DefenseScheme::Find("group_merge")->Plan(table, params);
}

Result<defense::DefensePlan> MergePlanToTolerance(const FrequencyTable& table,
                                                  double tolerance,
                                                  bool point_valued) {
  defense::DefenseParams params;
  params.Set("tolerance", tolerance);
  params.Set("point_valued", point_valued ? 1.0 : 0.0);
  return defense::DefenseScheme::Find("group_merge")->Plan(table, params);
}

// --------------------------------------------------- group_merge {gap}

TEST(MergeGroupsTest, ZeroGapIsIdentity) {
  auto table = FrequencyTable::FromSupports({1, 3, 7, 9}, 20);
  ASSERT_TRUE(table.ok());
  auto report = MergePlanBelowGap(*table, 0.0);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->groups_after, 4u);
  EXPECT_EQ(report->l1_distortion, 0u);
  EXPECT_EQ(report->new_supports, (std::vector<SupportCount>{1, 3, 7, 9}));
}

TEST(MergeGroupsTest, MergesCloseRuns) {
  // Supports 10, 11, 12 (gaps 0.01) and 40 (gap 0.28) over m=100.
  auto table = FrequencyTable::FromSupports({10, 11, 12, 40}, 100);
  ASSERT_TRUE(table.ok());
  auto report = MergePlanBelowGap(*table, 0.02);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->groups_before, 4u);
  EXPECT_EQ(report->groups_after, 2u);
  // Weighted median of {10, 11, 12} with unit sizes is 11.
  EXPECT_EQ(report->new_supports,
            (std::vector<SupportCount>{11, 11, 11, 40}));
  EXPECT_EQ(report->l1_distortion, 2u);  // |10-11| + |12-11|
}

TEST(MergeGroupsTest, WeightedMedianMinimizesL1) {
  // Sizes matter: supports {10 (x4 items), 20 (x1)} -> median is 10, not
  // 15: moving the single item is cheaper.
  auto table =
      FrequencyTable::FromSupports({10, 10, 10, 10, 20}, 100);
  ASSERT_TRUE(table.ok());
  auto report = MergePlanBelowGap(*table, 0.2);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->groups_after, 1u);
  EXPECT_EQ(report->new_supports,
            (std::vector<SupportCount>{10, 10, 10, 10, 10}));
  EXPECT_EQ(report->l1_distortion, 10u);
}

TEST(MergeGroupsTest, DistortionAccounting) {
  auto table = FrequencyTable::FromSupports({10, 12}, 100);
  ASSERT_TRUE(table.ok());
  auto report = MergePlanBelowGap(*table, 0.05);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->l1_distortion, 2u);  // 10 or 12 -> weighted median 10
  EXPECT_NEAR(report->relative_distortion, 2.0 / 22.0, 1e-12);
  EXPECT_TRUE(MergePlanBelowGap(*table, -1.0).status()
                  .IsInvalidArgument());
}

// --------------------------------------------- group_merge {tolerance}

TEST(DefendTest, AlreadySafeNeedsNoPerturbation) {
  // 3 groups, 30 items, tolerance 0.2: g = 3 <= 6 already.
  auto profile = FrequencyProfile::Create(
      100, {{10, 10}, {50, 10}, {90, 10}});
  ASSERT_TRUE(profile.ok());
  auto table = FrequencyTable::FromSupports(profile->ItemSupports(), 100);
  ASSERT_TRUE(table.ok());
  auto report = MergePlanToTolerance(*table, 0.2, /*point_valued=*/true);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->l1_distortion, 0u);
}

TEST(DefendTest, ReachesPointValuedBudget) {
  // 20 singleton groups; tolerance 0.25 -> budget 5 groups.
  std::vector<SupportCount> supports(20);
  for (size_t i = 0; i < 20; ++i) supports[i] = 10 + 5 * i;
  auto table = FrequencyTable::FromSupports(supports, 200);
  ASSERT_TRUE(table.ok());
  auto report = MergePlanToTolerance(*table, 0.25, /*point_valued=*/true);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->groups_after, 5u);
  EXPECT_GT(report->l1_distortion, 0u);
  // Verify against a fresh grouping of the defended supports.
  auto merged = FrequencyTable::FromSupports(report->new_supports, 200);
  ASSERT_TRUE(merged.ok());
  EXPECT_LE(FrequencyGroups::Build(*merged).num_groups(), 5u);
}

TEST(DefendTest, OEstimateCriterionIsLessAggressive) {
  std::vector<SupportCount> supports(40);
  for (size_t i = 0; i < 40; ++i) supports[i] = 5 + 7 * i;
  auto table = FrequencyTable::FromSupports(supports, 400);
  ASSERT_TRUE(table.ok());
  auto hard = MergePlanToTolerance(*table, 0.15, /*point_valued=*/true);
  auto soft = MergePlanToTolerance(*table, 0.15, /*point_valued=*/false);
  ASSERT_TRUE(hard.ok());
  ASSERT_TRUE(soft.ok());
  // The interval criterion is implied by the point-valued one, never the
  // other way around: distortion needed is no larger.
  EXPECT_LE(soft->l1_distortion, hard->l1_distortion);
}

TEST(DefendTest, TighterToleranceCostsMoreDistortion) {
  std::vector<SupportCount> supports(30);
  for (size_t i = 0; i < 30; ++i) supports[i] = 3 + 11 * i;
  auto table = FrequencyTable::FromSupports(supports, 500);
  ASSERT_TRUE(table.ok());
  uint64_t prev = 0;
  for (double tol : {0.5, 0.3, 0.15, 0.07}) {
    auto report = MergePlanToTolerance(*table, tol, /*point_valued=*/true);
    ASSERT_TRUE(report.ok()) << "tol=" << tol;
    EXPECT_GE(report->l1_distortion, prev) << "tol=" << tol;
    prev = report->l1_distortion;
  }
}

TEST(DefendTest, ValidatesTolerance) {
  auto table = FrequencyTable::FromSupports({5, 10}, 100);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(MergePlanToTolerance(*table, 0.0, false).status()
                  .IsInvalidArgument());
  // budget = 0.2 < 1 crack
  EXPECT_TRUE(MergePlanToTolerance(*table, 0.1, false).status()
                  .IsFailedPrecondition());
}

// ------------------------------------------------------ ApplySupportChanges

TEST(ApplyChangesTest, RealizesTargetsExactly) {
  Rng rng(5);
  auto profile = FrequencyProfile::Create(
      60, {{5, 3}, {20, 2}, {40, 2}});
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());
  std::vector<SupportCount> targets = {8, 8, 8, 18, 18, 40, 40};
  auto changed = ApplySupportChanges(*db, targets, &rng);
  ASSERT_TRUE(changed.ok());
  auto table = FrequencyTable::Compute(*changed);
  ASSERT_TRUE(table.ok());
  for (ItemId x = 0; x < 7; ++x) {
    EXPECT_EQ(table->support(x), targets[x]) << "item " << x;
  }
  for (const auto& t : changed->transactions()) EXPECT_FALSE(t.empty());
  EXPECT_EQ(changed->num_transactions(), db->num_transactions());
}

TEST(ApplyChangesTest, Validation) {
  Rng rng(5);
  Database db(2);
  ASSERT_TRUE(db.AddTransaction({0}).ok());
  ASSERT_TRUE(db.AddTransaction({0, 1}).ok());
  EXPECT_TRUE(ApplySupportChanges(db, {1}, &rng).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ApplySupportChanges(db, {5, 1}, &rng).status()
                  .IsInvalidArgument());
  // Lowering item 0 to zero would empty transaction 0.
  EXPECT_TRUE(ApplySupportChanges(db, {0, 1}, &rng).status()
                  .IsInvalidArgument());
  // No-op passes.
  auto same = ApplySupportChanges(db, {2, 1}, &rng);
  ASSERT_TRUE(same.ok());
}

// -------------------------------------------------------------- Integration

TEST(DefenseIntegrationTest, DefendedDatabasePassesTheRecipe) {
  Rng rng(17);
  // All-singleton profile: every item uniquely identified by frequency.
  std::vector<ProfileGroup> groups;
  for (size_t i = 0; i < 25; ++i) {
    groups.push_back({static_cast<SupportCount>(20 + 13 * i), 1});
  }
  auto profile = FrequencyProfile::Create(400, groups);
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());
  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());

  RecipeOptions recipe;
  recipe.tolerance = 0.2;
  auto before = AssessRisk(*table, recipe);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->decision, RecipeDecision::kAlphaBound);  // unsafe

  auto report = MergePlanToTolerance(*table, 0.2, /*point_valued=*/true);
  ASSERT_TRUE(report.ok());
  auto defended_db = defense::DefenseScheme::Find("group_merge")
                         ->Apply(*db, *report, &rng);
  ASSERT_TRUE(defended_db.ok());

  auto after = AssessRiskOnDatabase(*defended_db, recipe);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->decision, RecipeDecision::kDiscloseAtPointValued);
}

TEST(DefenseIntegrationTest, SmallPerturbationKeepsFrequentItems) {
  // Mining fidelity sanity: merging nearby groups shifts supports only by
  // small deltas, so the frequent-item set at a coarse threshold is
  // stable.
  Rng rng(23);
  std::vector<ProfileGroup> groups;
  for (size_t i = 0; i < 10; ++i) {
    groups.push_back({static_cast<SupportCount>(30 + 2 * i), 2});
  }
  groups.push_back({300, 3});
  auto profile = FrequencyProfile::Create(400, groups);
  ASSERT_TRUE(profile.ok());
  auto db = GenerateDatabase(*profile, &rng);
  ASSERT_TRUE(db.ok());
  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());

  auto report = MergePlanBelowGap(*table, 0.02);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->relative_distortion, 0.1);
  auto defended = ApplySupportChanges(*db, report->new_supports, &rng);
  ASSERT_TRUE(defended.ok());

  auto hot_before = FrequentItems(*db, 0.5);
  auto hot_after = FrequentItems(*defended, 0.5);
  ASSERT_TRUE(hot_before.ok());
  ASSERT_TRUE(hot_after.ok());
  EXPECT_EQ(*hot_before, *hot_after);  // the 300-support trio
}

}  // namespace
}  // namespace anonsafe
