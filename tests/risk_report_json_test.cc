#include "core/risk_report.h"

#include <gtest/gtest.h>

#include "data/database.h"

namespace anonsafe {
namespace {

Database SmallDb() {
  // 4 items over 10 transactions — two frequency groups, enough for the
  // recipe to produce a non-trivial α bound.
  std::vector<Transaction> txs = {{0, 1, 2}, {0, 1},    {1, 2, 3}, {0, 2, 3},
                                  {1, 3},    {0, 1, 3}, {2, 3},    {0, 3},
                                  {1, 2},    {0, 1, 2, 3}};
  auto db = Database::FromTransactions(4, std::move(txs));
  EXPECT_TRUE(db.ok());
  return *db;
}

TEST(RiskReportJsonTest, ToJsonCarriesSchemaVersion) {
  auto report = BuildRiskReport(SmallDb());
  ASSERT_TRUE(report.ok());
  json::Value doc = report->ToJson();
  ASSERT_TRUE(doc.is_object());
  auto version = doc.GetNumber("schema_version");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, static_cast<double>(kRiskReportSchemaVersion));
}

TEST(RiskReportJsonTest, RoundTrip) {
  auto report = BuildRiskReport(SmallDb());
  ASSERT_TRUE(report.ok());
  json::Value doc = report->ToJson();
  auto back = RiskReport::FromJson(doc);
  ASSERT_TRUE(back.ok()) << back.status().message();

  EXPECT_EQ(back->num_items, report->num_items);
  EXPECT_EQ(back->num_transactions, report->num_transactions);
  EXPECT_EQ(back->num_groups, report->num_groups);
  EXPECT_EQ(back->num_singleton_groups, report->num_singleton_groups);
  EXPECT_EQ(back->median_gap, report->median_gap);
  EXPECT_EQ(back->mean_gap, report->mean_gap);
  EXPECT_EQ(back->ignorant_expected_cracks,
            report->ignorant_expected_cracks);
  EXPECT_EQ(back->point_valued_expected_cracks,
            report->point_valued_expected_cracks);
  EXPECT_EQ(back->recipe.decision, report->recipe.decision);
  EXPECT_EQ(back->recipe.alpha_max, report->recipe.alpha_max);
  EXPECT_EQ(back->recipe.delta_med, report->recipe.delta_med);
  EXPECT_EQ(back->breaching_sample_fraction,
            report->breaching_sample_fraction);
  ASSERT_EQ(back->similarity_curve.size(), report->similarity_curve.size());
  for (size_t i = 0; i < back->similarity_curve.size(); ++i) {
    EXPECT_EQ(back->similarity_curve[i].sample_fraction,
              report->similarity_curve[i].sample_fraction);
    EXPECT_EQ(back->similarity_curve[i].mean_alpha,
              report->similarity_curve[i].mean_alpha);
  }

  // The strongest form: dump → parse → re-dump is byte-identical.
  EXPECT_EQ(back->ToJson().Dump(), doc.Dump());
}

TEST(RiskReportJsonTest, RoundTripSurvivesTextForm) {
  auto report = BuildRiskReport(SmallDb());
  ASSERT_TRUE(report.ok());
  const std::string text = report->ToJson().Dump();
  auto parsed = json::Value::Parse(text);
  ASSERT_TRUE(parsed.ok());
  auto back = RiskReport::FromJson(*parsed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ToJson().Dump(), text);
}

TEST(RiskReportJsonTest, RejectsWrongSchemaVersion) {
  auto report = BuildRiskReport(SmallDb());
  ASSERT_TRUE(report.ok());
  json::Value doc = report->ToJson();
  doc.Set("schema_version", json::Value(kRiskReportSchemaVersion + 1));
  auto back = RiskReport::FromJson(doc);
  EXPECT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsInvalidArgument());
}

TEST(RiskReportJsonTest, RejectsMissingSchemaVersionAndNonObjects) {
  EXPECT_FALSE(RiskReport::FromJson(json::Value()).ok());
  EXPECT_FALSE(RiskReport::FromJson(json::Value::Array()).ok());
  EXPECT_FALSE(RiskReport::FromJson(json::Value::Object()).ok());
}

TEST(RiskReportJsonTest, CurveOmittedWhenDisabled) {
  RiskReportOptions options;
  options.include_similarity_curve = false;
  auto report = BuildRiskReport(SmallDb(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->similarity_curve.empty());
  auto back = RiskReport::FromJson(report->ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->similarity_curve.empty());
}

}  // namespace
}  // namespace anonsafe
