// End-to-end integration tests: the full owner/hacker workflows at small
// scale, exercising the same code paths as the bench binaries (attack
// simulation in the anonymized id space, recipe + similarity + defense
// pipelines, permutation invariance of the decision metrics).

#include <gtest/gtest.h>

#include "anonymize/anonymizer.h"
#include "anonymize/crack.h"
#include "belief/builders.h"
#include "core/alpha_sweep.h"
#include "core/oestimate.h"
#include "core/recipe.h"
#include "core/risk_report.h"
#include "core/similarity.h"
#include "core/simulated.h"
#include "data/frequency.h"
#include "data/sampling.h"
#include "datagen/benchmark_profiles.h"
#include "defense/scheme.h"
#include "graph/matching_sampler.h"
#include "util/rng.h"

namespace anonsafe {
namespace {

// ---------------------------------------------------------------------
// The full consortium attack, asserted: a partner with a transaction
// sample attacks the released (permuted) database; their realized crack
// rate must match the owner's O-estimate prediction.
// ---------------------------------------------------------------------
TEST(EndToEndAttackTest, SampleBasedAttackMatchesPrediction) {
  Rng rng(2024);
  auto db = MakeBenchmarkDatabase(Benchmark::kChess, &rng, /*scale=*/0.4);
  ASSERT_TRUE(db.ok());

  // Owner releases a randomly permuted copy.
  Anonymizer truth = Anonymizer::Random(db->num_items(), &rng);
  auto released = truth.AnonymizeDatabase(*db);
  ASSERT_TRUE(released.ok());

  // Partner holds a 30% sample and builds its belief function.
  auto partner_data = SampleFraction(*db, 0.30, &rng);
  ASSERT_TRUE(partner_data.ok());
  auto partner_belief = MakeBeliefFromSample(*partner_data);
  ASSERT_TRUE(partner_belief.ok());

  // Attack frame: re-index the belief into the released id space (the
  // identity-surrogate convention; see consortium_attack example).
  std::vector<BeliefInterval> reindexed(db->num_items());
  for (ItemId x = 0; x < db->num_items(); ++x) {
    reindexed[truth.Anonymize(x)] = partner_belief->interval(x);
  }
  auto attack_belief = BeliefFunction::Create(std::move(reindexed));
  ASSERT_TRUE(attack_belief.ok());

  auto released_table = FrequencyTable::Compute(*released);
  ASSERT_TRUE(released_table.ok());
  FrequencyGroups observed = FrequencyGroups::Build(*released_table);

  SamplerOptions sampler_options;
  sampler_options.exec.seed = 5;
  sampler_options.num_samples = 300;
  sampler_options.thinning_sweeps = 5;
  auto sampler =
      MatchingSampler::Create(observed, *attack_belief, sampler_options);
  ASSERT_TRUE(sampler.ok());
  std::vector<size_t> counts = sampler->SampleCrackCounts();
  double attack_mean = 0.0;
  for (size_t c : counts) attack_mean += static_cast<double>(c);
  attack_mean /= static_cast<double>(counts.size());

  auto mask = attack_belief->ComplianceMask(*released_table);
  ASSERT_TRUE(mask.ok());
  auto prediction =
      ComputeOEstimateRestricted(observed, *attack_belief, *mask);
  ASSERT_TRUE(prediction.ok());

  // OE and the simulated attack agree within 25% (+1 crack slack).
  EXPECT_NEAR(attack_mean, prediction->expected_cracks,
              0.25 * prediction->expected_cracks + 1.0);
}

// ---------------------------------------------------------------------
// Permutation invariance of every decision metric: assessing the raw
// database and an anonymized copy must produce identical numbers.
// ---------------------------------------------------------------------
TEST(EndToEndInvarianceTest, RecipeInvariantUnderAnonymization) {
  Rng rng(7);
  auto db = MakeBenchmarkDatabase(Benchmark::kMushroom, &rng, 0.2);
  ASSERT_TRUE(db.ok());
  Anonymizer mapping = Anonymizer::Random(db->num_items(), &rng);
  auto anon_db = mapping.AnonymizeDatabase(*db);
  ASSERT_TRUE(anon_db.ok());

  RecipeOptions options;
  options.tolerance = 0.1;
  auto original = AssessRiskOnDatabase(*db, options);
  auto anonymized = AssessRiskOnDatabase(*anon_db, options);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(anonymized.ok());
  EXPECT_EQ(original->decision, anonymized->decision);
  EXPECT_EQ(original->num_groups, anonymized->num_groups);
  EXPECT_DOUBLE_EQ(original->delta_med, anonymized->delta_med);
  EXPECT_DOUBLE_EQ(original->interval_oe, anonymized->interval_oe);
  // alpha_max involves randomized subsets over item ids; the *identity*
  // of non-compliant items differs under permutation but the averaged
  // estimate concentrates: bounds must agree closely.
  EXPECT_NEAR(original->alpha_max, anonymized->alpha_max, 0.08);
}

// ---------------------------------------------------------------------
// Owner pipeline: report -> defense -> report, on a risky stand-in.
// ---------------------------------------------------------------------
TEST(EndToEndPipelineTest, ReportDefendReport) {
  Rng rng(99);
  auto db = MakeBenchmarkDatabase(Benchmark::kChess, &rng, 0.4);
  ASSERT_TRUE(db.ok());

  RiskReportOptions report_options;
  report_options.recipe.tolerance = 0.15;
  report_options.similarity.sample_fractions = {0.2, 0.6};
  report_options.similarity.samples_per_fraction = 3;
  auto before = BuildRiskReport(*db, report_options);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->recipe.decision, RecipeDecision::kAlphaBound);

  auto table = FrequencyTable::Compute(*db);
  ASSERT_TRUE(table.ok());
  const defense::DefenseScheme* scheme =
      defense::DefenseScheme::Find("group_merge");
  defense::DefenseParams defense;
  defense.Set("tolerance", 0.15);
  defense.Set("point_valued", 1.0);
  auto plan = scheme->Plan(*table, defense);
  ASSERT_TRUE(plan.ok());
  auto defended = scheme->Apply(*db, *plan, &rng);
  ASSERT_TRUE(defended.ok());

  auto after = BuildRiskReport(*defended, report_options);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->recipe.decision, RecipeDecision::kDiscloseAtPointValued);
  EXPECT_LT(after->num_groups, before->num_groups);
  // The rendered report is complete and self-consistent.
  std::string text = after->ToText();
  EXPECT_NE(text.find("DiscloseAtPointValued"), std::string::npos);
}

// ---------------------------------------------------------------------
// Small-scale Figure 10: OE within a few percent of the simulation on
// two benchmark stand-ins.
// ---------------------------------------------------------------------
class SmallFig10Test : public ::testing::TestWithParam<Benchmark> {};

TEST_P(SmallFig10Test, OEstimateTracksSimulation) {
  Rng rng(11);
  auto profile = MakeBenchmarkProfile(GetParam(), &rng);
  ASSERT_TRUE(profile.ok());
  auto scaled = profile->Scaled(0.25);
  ASSERT_TRUE(scaled.ok());
  auto table = FrequencyTable::FromSupports(scaled->ItemSupports(),
                                            scaled->num_transactions());
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto belief = MakeCompliantIntervalBelief(*table, groups.MedianGap());
  ASSERT_TRUE(belief.ok());

  auto oe = ComputeOEstimate(groups, *belief);
  ASSERT_TRUE(oe.ok());
  SimulationOptions sim;
  sim.exec.runs = 3;
  sim.sampler.num_samples = 300;
  sim.sampler.thinning_sweeps = 5;
  sim.exec.seed = 13;
  auto simulated = SimulateExpectedCracks(groups, *belief, sim);
  ASSERT_TRUE(simulated.ok());
  EXPECT_NEAR(oe->expected_cracks, simulated->mean,
              0.10 * simulated->mean + 1.0)
      << GetBenchmarkSpec(GetParam()).name;
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, SmallFig10Test,
                         ::testing::Values(Benchmark::kChess,
                                           Benchmark::kMushroom),
                         [](const ::testing::TestParamInfo<Benchmark>& i) {
                           return GetBenchmarkSpec(i.param).name;
                         });

// ---------------------------------------------------------------------
// Alpha sweep monotone & anchored on a stand-in (the Fig. 11 machinery).
// ---------------------------------------------------------------------
TEST(EndToEndAlphaTest, SweepMonotoneOnBenchmarkStandIn) {
  Rng rng(17);
  auto profile = MakeBenchmarkProfile(Benchmark::kChess, &rng);
  ASSERT_TRUE(profile.ok());
  auto table = FrequencyTable::FromSupports(profile->ItemSupports(),
                                            profile->num_transactions());
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  auto base = MakeCompliantIntervalBelief(*table, groups.MedianGap());
  ASSERT_TRUE(base.ok());
  auto sweep = AlphaCompliancySweep::Create(*table, *base, 5, 3);
  ASSERT_TRUE(sweep.ok());
  double prev = -1.0;
  for (double alpha = 0.0; alpha <= 1.0001; alpha += 0.1) {
    auto value = sweep->AverageOEstimate(groups, alpha);
    ASSERT_TRUE(value.ok());
    EXPECT_GE(*value, prev - 1e-9) << "alpha=" << alpha;
    prev = *value;
  }
}

// ---------------------------------------------------------------------
// Similarity curve is sane on a stand-in: alphas in range; large samples
// at least as compliant as the recipe's alpha_max would require to warn.
// ---------------------------------------------------------------------
TEST(EndToEndSimilarityTest, CurveBehavesOnStandIn) {
  Rng rng(23);
  auto db = MakeBenchmarkDatabase(Benchmark::kMushroom, &rng, 0.25);
  ASSERT_TRUE(db.ok());
  SimilarityOptions options;
  options.sample_fractions = {0.1, 0.4, 0.8};
  options.samples_per_fraction = 4;
  auto curve = SimilarityBySampling(*db, options);
  ASSERT_TRUE(curve.ok());
  for (const auto& point : *curve) {
    EXPECT_GE(point.mean_alpha, 0.0);
    EXPECT_LE(point.mean_alpha, 1.0);
    EXPECT_GT(point.mean_delta, 0.0);
  }
  // MUSHROOM-like data: sampling compliancy is substantial even at 10%.
  EXPECT_GT(curve->front().mean_alpha, 0.2);
}

}  // namespace
}  // namespace anonsafe
