// The adversary registry: params round-trips, spec parsing, the three
// built-in models' Bind semantics (interval parity with the historical
// belief builder, probabilistic weights, exact-support point pins), the
// recipe integration (weighted models only on the OE path), RiskReport
// provenance, and the canned datagen scenarios.

#include "adversary/adversary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "adversary/exact_support.h"
#include "belief/builders.h"
#include "core/oestimate.h"
#include "core/recipe.h"
#include "core/risk_report.h"
#include "data/database.h"
#include "data/frequency.h"
#include "datagen/adversary_scenarios.h"
#include "util/rng.h"

namespace anonsafe {
namespace adversary {
namespace {

Result<FrequencyTable> MakeTable() {
  // Supports 10, 11, 12 (tight run), 40, 41 and 80 over m = 100: six
  // groups with small gaps at the rare end.
  return FrequencyTable::FromSupports({10, 11, 12, 40, 41, 80}, 100);
}

// ----------------------------------------------------------------- Params

TEST(AdversaryParamsTest, SetFindGetToString) {
  AdversaryParams p;
  p.Set("span", 2.0);
  p.Set("sigma", 1.5);
  p.Set("span", 3.0);  // replaces in place, keeps insertion order
  ASSERT_NE(p.Find("span"), nullptr);
  EXPECT_EQ(*p.Find("span"), 3.0);
  EXPECT_EQ(p.Find("nope"), nullptr);
  EXPECT_EQ(p.GetOr("sigma", 9.0), 1.5);
  EXPECT_EQ(p.GetOr("nope", 9.0), 9.0);
  auto got = p.Get("sigma");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 1.5);
  EXPECT_TRUE(p.Get("nope").status().IsInvalidArgument());
  EXPECT_EQ(p.ToString(), "span=3,sigma=1.5");
}

TEST(AdversaryParamsTest, JsonRoundTrip) {
  AdversaryParams p;
  p.Set("k", 4.0);
  p.Set("sigma", 0.25);
  auto back = AdversaryParams::FromJson(p.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->values, p.values);
  EXPECT_EQ(back->ToJson().Dump(), p.ToJson().Dump());
  // Empty params render as an empty object and round-trip too.
  AdversaryParams empty;
  auto empty_back = AdversaryParams::FromJson(empty.ToJson());
  ASSERT_TRUE(empty_back.ok());
  EXPECT_TRUE(empty_back->values.empty());
}

// --------------------------------------------------------------- Registry

TEST(AdversaryRegistryTest, FixedOrderAndLookup) {
  const auto& all = Adversary::All();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_STREQ(all[0]->name(), "interval");
  EXPECT_STREQ(all[1]->name(), "probabilistic");
  EXPECT_STREQ(all[2]->name(), "exact_support");
  for (const Adversary* a : all) {
    EXPECT_EQ(Adversary::Find(a->name()), a);
  }
  EXPECT_EQ(Adversary::Find("laplace"), nullptr);
}

TEST(AdversaryRegistryTest, DescriptionsMatchCapabilities) {
  AdversaryDescription interval = Adversary::Find("interval")->Describe();
  EXPECT_FALSE(interval.weighted);
  EXPECT_TRUE(interval.supports_exact);
  EXPECT_EQ(interval.params, (std::vector<std::string>{}));

  AdversaryDescription prob = Adversary::Find("probabilistic")->Describe();
  EXPECT_TRUE(prob.weighted);
  EXPECT_FALSE(prob.supports_exact);
  EXPECT_EQ(prob.params, (std::vector<std::string>{"span", "sigma"}));

  AdversaryDescription exact = Adversary::Find("exact_support")->Describe();
  EXPECT_FALSE(exact.weighted);
  EXPECT_TRUE(exact.supports_exact);
  EXPECT_EQ(exact.params, (std::vector<std::string>{"k"}));

  // The JSON surface used by server_info carries all of it.
  json::Value doc = prob.ToJson();
  EXPECT_EQ(doc.GetString("name").value_or(""), "probabilistic");
  EXPECT_TRUE(doc.Find("weighted")->AsBool());
  EXPECT_EQ(doc.Find("params")->items().size(), 2u);
}

TEST(AdversaryRegistryTest, UnknownParameterRejected) {
  for (const Adversary* a : Adversary::All()) {
    AdversaryParams p;
    p.Set("bogus", 1.0);
    Status status = a->ValidateParams(p);
    ASSERT_FALSE(status.ok()) << a->name();
    EXPECT_TRUE(status.IsInvalidArgument()) << a->name();
    EXPECT_NE(status.message().find("bogus"), std::string::npos);
  }
}

// ------------------------------------------------------------ Spec parsing

TEST(AdversarySpecTest, ParsesNameAndParams) {
  auto bare = ParseAdversarySpec("interval");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->name, "interval");
  EXPECT_TRUE(bare->params.values.empty());
  EXPECT_EQ(bare->ToString(), "interval");

  auto full = ParseAdversarySpec("probabilistic:span=3,sigma=0.5");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->name, "probabilistic");
  EXPECT_EQ(full->params.GetOr("span", 0.0), 3.0);
  EXPECT_EQ(full->params.GetOr("sigma", 0.0), 0.5);
  EXPECT_EQ(full->ToString(), "probabilistic:span=3,sigma=0.5");
}

TEST(AdversarySpecTest, RejectsBadSpecs) {
  EXPECT_TRUE(ParseAdversarySpec("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseAdversarySpec("laplace").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseAdversarySpec("interval:bogus=1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseAdversarySpec("probabilistic:span")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseAdversarySpec("probabilistic:span=x")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseAdversarySpec("probabilistic:sigma=-1")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseAdversarySpec("exact_support:k=0")
                  .status()
                  .IsInvalidArgument());
}

// ------------------------------------------------------- IntervalAdversary

TEST(IntervalAdversaryTest, BindMatchesCompliantIntervalBelief) {
  auto table = MakeTable();
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  const double delta = groups.MedianGap();

  auto model = Adversary::Find("interval")->Bind(*table, groups, delta, {});
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->weighted());
  EXPECT_EQ(model->SpecString(), "interval");

  auto legacy = MakeCompliantIntervalBelief(*table, delta);
  ASSERT_TRUE(legacy.ok());
  ASSERT_EQ(model->belief.num_items(), legacy->num_items());
  for (ItemId x = 0; x < legacy->num_items(); ++x) {
    EXPECT_EQ(model->belief.interval(x).lo, legacy->interval(x).lo) << x;
    EXPECT_EQ(model->belief.interval(x).hi, legacy->interval(x).hi) << x;
  }

  // And the model O-estimate is bit-identical to the historical one.
  auto via_model = ComputeOEstimateForModel(groups, *model);
  auto via_belief = ComputeOEstimate(groups, *legacy);
  ASSERT_TRUE(via_model.ok());
  ASSERT_TRUE(via_belief.ok());
  EXPECT_EQ(via_model->expected_cracks, via_belief->expected_cracks);
}

// -------------------------------------------------- ProbabilisticAdversary

TEST(ProbabilisticAdversaryTest, WeightWindowsCoverStabRanges) {
  auto table = MakeTable();
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  AdversaryParams params;
  params.Set("span", 2.0);
  params.Set("sigma", 1.0);
  auto model =
      Adversary::Find("probabilistic")->Bind(*table, groups, 0.0, params);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->weighted());
  ASSERT_EQ(model->weights.size(), table->num_items());
  EXPECT_EQ(model->SpecString(), "probabilistic:span=2,sigma=1");

  for (ItemId x = 0; x < table->num_items(); ++x) {
    const ItemWeight& iw = model->weights[x];
    const size_t g = groups.group_of_item(x);
    const size_t lo = g >= 2 ? g - 2 : 0;
    const size_t hi = std::min(groups.num_groups() - 1, g + 2);
    EXPECT_EQ(iw.lo_group, lo) << x;
    ASSERT_EQ(iw.w.size(), hi - lo + 1) << x;
    // The window is anchored on the true group with peak weight 1.
    EXPECT_EQ(iw.true_weight, 1.0) << x;
    for (double w : iw.w) {
      EXPECT_GT(w, 0.0);
      EXPECT_LE(w, 1.0);
    }
    // The structural interval spans exactly the window's frequencies.
    EXPECT_EQ(model->belief.interval(x).lo, groups.group_frequency(lo));
    EXPECT_EQ(model->belief.interval(x).hi, groups.group_frequency(hi));
  }
}

TEST(ProbabilisticAdversaryTest, FlatWeightsReduceToUniformOEstimate) {
  auto table = MakeTable();
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  AdversaryParams params;
  params.Set("span", 2.0);
  params.Set("sigma", 1e9);  // effectively uniform over the window
  auto model =
      Adversary::Find("probabilistic")->Bind(*table, groups, 0.0, params);
  ASSERT_TRUE(model.ok());

  auto weighted = ComputeOEstimateForModel(groups, *model);
  ASSERT_TRUE(weighted.ok());
  // Same structural belief, uniform weights: the weighted outdegree
  // collapses to the paper's 1/O_x.
  auto uniform = ComputeOEstimate(groups, model->belief);
  ASSERT_TRUE(uniform.ok());
  EXPECT_NEAR(weighted->expected_cracks, uniform->expected_cracks, 1e-9);
}

TEST(ProbabilisticAdversaryTest, TighterSigmaRaisesRisk) {
  auto table = MakeTable();
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  double prev = 0.0;
  // Concentrating mass on the true group monotonically raises the
  // weighted crack probability of every item.
  for (double sigma : {4.0, 1.0, 0.25}) {
    AdversaryParams params;
    params.Set("span", 2.0);
    params.Set("sigma", sigma);
    auto model =
        Adversary::Find("probabilistic")->Bind(*table, groups, 0.0, params);
    ASSERT_TRUE(model.ok());
    auto oe = ComputeOEstimateForModel(groups, *model);
    ASSERT_TRUE(oe.ok());
    EXPECT_GT(oe->expected_cracks, prev) << "sigma=" << sigma;
    prev = oe->expected_cracks;
  }
}

TEST(ProbabilisticAdversaryTest, RecipeAcceptsOnlyOEstimatorPath) {
  auto table = MakeTable();
  ASSERT_TRUE(table.ok());
  RecipeOptions options;
  options.adversary = "probabilistic";
  options.adversary_params.Set("span", 1.0);
  auto assessed = AssessRisk(*table, options);
  ASSERT_TRUE(assessed.ok());
  EXPECT_EQ(assessed->adversary, "probabilistic");
  EXPECT_EQ(assessed->adversary_params.ToString(), "span=1");

  for (EstimatorKind kind :
       {EstimatorKind::kAuto, EstimatorKind::kExact, EstimatorKind::kSampler}) {
    RecipeOptions rejected = options;
    rejected.estimator = kind;
    EXPECT_TRUE(AssessRisk(*table, rejected).status().IsUnimplemented());
  }
}

// -------------------------------------------------- ExactSupportAdversary

TEST(ExactSupportAdversaryTest, SelectsRarestGroupsFirst) {
  // Group sizes 3 (support 5), 2 (support 20), 1 (support 60): the
  // adversary learns the most identifying supports first.
  auto table =
      FrequencyTable::FromSupports({5, 5, 5, 20, 20, 60}, 100);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  // Item 5 sits alone (group size 1), items 3/4 share (size 2), items
  // 0/1/2 share (size 3); ties break by item id.
  EXPECT_EQ(SelectExactSupportItems(groups, 3),
            (std::vector<ItemId>{5, 3, 4}));
  EXPECT_EQ(SelectExactSupportItems(groups, 99).size(), 6u);  // clamped
}

TEST(ExactSupportAdversaryTest, BindPinsKnownItemsOnly) {
  auto table = FrequencyTable::FromSupports({5, 5, 5, 20, 20, 60}, 100);
  ASSERT_TRUE(table.ok());
  FrequencyGroups groups = FrequencyGroups::Build(*table);
  AdversaryParams params;
  params.Set("k", 2.0);
  auto model =
      Adversary::Find("exact_support")->Bind(*table, groups, 0.0, params);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->weighted());

  // Known: item 5 (singleton group) and item 3 (size-2 group).
  EXPECT_TRUE(model->belief.interval(5).IsPoint());
  EXPECT_EQ(model->belief.interval(5).lo, table->frequency(5));
  EXPECT_TRUE(model->belief.interval(3).IsPoint());
  // The rest are ignorant.
  for (ItemId x : {0u, 1u, 2u, 4u}) {
    EXPECT_EQ(model->belief.interval(x).lo, 0.0) << x;
    EXPECT_EQ(model->belief.interval(x).hi, 1.0) << x;
  }
}

TEST(ExactSupportAdversaryTest, RecipeRiskGrowsWithK) {
  auto table = MakeTable();
  ASSERT_TRUE(table.ok());
  double prev = -1.0;
  for (double k : {1.0, 3.0, 6.0}) {
    RecipeOptions options;
    options.adversary = "exact_support";
    options.adversary_params.Set("k", k);
    auto assessed = AssessRisk(*table, options);
    ASSERT_TRUE(assessed.ok()) << "k=" << k;
    EXPECT_GE(assessed->interval_oe, prev) << "k=" << k;
    prev = assessed->interval_oe;
  }
}

TEST(ExactSupportAdversaryTest, ConstrainedAttackOnTinyInstance) {
  // 4 items over supports {6,7,6,7}: two frequency groups of two. The
  // adversary pins items 0 and 1 (point intervals); items 2 and 3 stay
  // fully ignorant, so 2·2·2 = 8 assignments are structurally possible.
  // The instance is deliberately symmetric — every candidate pair for
  // the pinned {0,1} has the same pair frequency 0.4 — so the pair
  // constraint prunes nothing and the exact expectation over the 8
  // matchings is (4+2+1+2+2+1+0+0)/8 = 1.5.
  auto db = Database::FromTransactions(
      4, {{0, 1, 2}, {0, 1}, {1, 2, 3}, {0, 2, 3}, {1, 3}, {0, 1, 3},
          {2, 3}, {0, 3}, {1, 2}, {0, 1, 2, 3}});
  ASSERT_TRUE(db.ok());
  AdversaryParams params;
  params.Set("k", 2.0);
  auto attack = RunExactSupportAttack(*db, params);
  ASSERT_TRUE(attack.ok()) << attack.status();
  EXPECT_EQ(attack->known_items, (std::vector<ItemId>{0, 1}));
  EXPECT_EQ(attack->distribution.num_matchings, 8u);
  ASSERT_EQ(attack->distribution.probability.size(), 5u);  // n + 1
  double total = 0.0;
  for (double p : attack->distribution.probability) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(attack->distribution.expected, 1.5, 1e-9);
}

TEST(ExactSupportAdversaryTest, AssessRiskForItemsRejectsNonInterval) {
  auto table = MakeTable();
  ASSERT_TRUE(table.ok());
  RecipeOptions options;
  options.adversary = "exact_support";
  std::vector<bool> interest(table->num_items(), false);
  interest[0] = true;
  auto result = AssessRiskForItems(*table, interest, options);
  EXPECT_TRUE(result.status().IsUnimplemented());
}

// ------------------------------------------------------ RiskReport JSON

TEST(AdversaryProvenanceTest, ReportJsonRoundTripsAdversary) {
  auto db = Database::FromTransactions(
      4, {{0, 1, 2}, {0, 1}, {1, 2, 3}, {0, 2, 3}, {1, 3}, {0, 1, 3},
          {2, 3}, {0, 3}, {1, 2}, {0, 1, 2, 3}});
  ASSERT_TRUE(db.ok());

  RiskReportOptions options;
  options.include_similarity_curve = false;
  options.recipe.adversary = "probabilistic";
  options.recipe.adversary_params.Set("span", 1.0);
  options.recipe.adversary_params.Set("sigma", 0.5);
  auto report = BuildRiskReport(*db, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->recipe.adversary, "probabilistic");

  json::Value doc = report->ToJson();
  const json::Value* recipe = doc.Find("recipe");
  ASSERT_NE(recipe, nullptr);
  EXPECT_EQ(recipe->GetString("adversary").value_or(""), "probabilistic");
  auto back = RiskReport::FromJson(doc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->recipe.adversary, "probabilistic");
  EXPECT_EQ(back->recipe.adversary_params.ToString(), "span=1,sigma=0.5");
  EXPECT_EQ(back->ToJson().Dump(), doc.Dump());
}

TEST(AdversaryProvenanceTest, DefaultIntervalKeepsHistoricalBytes) {
  auto db = Database::FromTransactions(
      4, {{0, 1, 2}, {0, 1}, {1, 2, 3}, {0, 2, 3}, {1, 3}, {0, 1, 3},
          {2, 3}, {0, 3}, {1, 2}, {0, 1, 2, 3}});
  ASSERT_TRUE(db.ok());
  RiskReportOptions options;
  options.include_similarity_curve = false;
  auto report = BuildRiskReport(*db, options);
  ASSERT_TRUE(report.ok());
  // The default adversary is pure provenance noise for existing readers:
  // the field is omitted entirely, so pre-adversary documents and new
  // default documents are the same bytes.
  json::Value doc = report->ToJson();
  const json::Value* recipe = doc.Find("recipe");
  ASSERT_NE(recipe, nullptr);
  EXPECT_EQ(recipe->Find("adversary"), nullptr);
  EXPECT_EQ(recipe->Find("adversary_params"), nullptr);
  auto back = RiskReport::FromJson(doc);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->recipe.adversary, "interval");
  EXPECT_TRUE(back->recipe.adversary_params.values.empty());
}

// ------------------------------------------------------------- Scenarios

TEST(AdversaryScenarioTest, ScenariosAreWellFormedAndReplayable) {
  const auto& all = AllAdversaryScenarios();
  ASSERT_EQ(all.size(), 4u);
  for (const AdversaryScenario& s : all) {
    auto found = FindAdversaryScenario(s.name);
    ASSERT_TRUE(found.ok()) << s.name;
    EXPECT_EQ(*found, &s);
    // Every scenario's spec parses against the real registry.
    auto spec = ParseAdversarySpec(s.adversary_spec);
    ASSERT_TRUE(spec.ok()) << s.name << ": " << spec.status();
    EXPECT_NE(Adversary::Find(spec->name), nullptr);
  }
  EXPECT_TRUE(FindAdversaryScenario("nope").status().IsInvalidArgument());
}

TEST(AdversaryScenarioTest, ScenarioDatabasesAreDeterministic) {
  auto scenario = FindAdversaryScenario("exact_support_chess");
  ASSERT_TRUE(scenario.ok());
  auto a = MakeScenarioDatabase(**scenario);
  auto b = MakeScenarioDatabase(**scenario);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->transactions(), b->transactions());
  EXPECT_GT(a->num_transactions(), 0u);
}

TEST(AdversaryScenarioTest, ScenariosAssessEndToEnd) {
  // Each canned scenario runs the full recipe under its adversary spec.
  for (const AdversaryScenario& s : AllAdversaryScenarios()) {
    auto db = MakeScenarioDatabase(s);
    ASSERT_TRUE(db.ok()) << s.name;
    auto table = FrequencyTable::Compute(*db);
    ASSERT_TRUE(table.ok()) << s.name;
    auto spec = ParseAdversarySpec(s.adversary_spec);
    ASSERT_TRUE(spec.ok()) << s.name;
    RecipeOptions options;
    options.adversary = spec->name;
    options.adversary_params = spec->params;
    auto assessed = AssessRisk(*table, options);
    ASSERT_TRUE(assessed.ok()) << s.name << ": " << assessed.status();
    EXPECT_EQ(assessed->adversary, spec->name) << s.name;
    EXPECT_GE(assessed->interval_oe, 0.0) << s.name;
  }
}

}  // namespace
}  // namespace adversary
}  // namespace anonsafe
